"""Tests for the table/figure regeneration harness (fast subsets; the
full regenerations run as benchmarks)."""

import pytest

from repro.evaluation.hierarchy_stats import dependence_test_stats
from repro.evaluation.speedup import speedup_table
from repro.evaluation.tables import (
    format_table,
    table1_suite,
    table2_transformations,
    table3_analysis,
)


class TestTable1:
    def test_rows_complete(self):
        rows = table1_suite()
        assert len(rows) == 10
        assert all(r.lines > 0 and r.procedures > 0 for r in rows)

    def test_contributors_noted_as_standins(self):
        rows = table1_suite()
        assert all("stand-in" in r.contributor for r in rows)


class TestTable2:
    def test_single_program(self):
        rows = table2_transformations(names=["boast"])
        row = rows[0]
        assert row.name == "boast"
        assert row.ped_parallel > row.auto_parallel
        assert "reduction" in row.actions


class TestTable3:
    def test_single_program_row(self):
        rows = table3_analysis(names=["arc3d"])
        row = rows[0]
        assert row.required["sections"]
        assert row.required["array_kill"]
        assert not row.needs_assertion

    def test_expectations_recorded(self):
        rows = table3_analysis(names=["pneoss"])
        assert rows[0].expected["reductions"] is True


class TestHierarchyStats:
    def test_cheap_tiers_dominate(self):
        stats = dependence_test_stats(names=["pneoss", "boast", "interior"])
        assert stats.total_classic > 10
        assert stats.cheap_fraction() >= 0.7

    def test_tests_run_counts_present(self):
        stats = dependence_test_stats(names=["pneoss"])
        assert stats.tests_run.get("siv", 0) > 0


class TestSpeedupTable:
    def test_row_shape(self):
        rows = speedup_table(names=["arc3d"], procs=(1, 4))
        assert rows[0].name == "arc3d"
        speeds = dict(rows[0].speedups)
        assert speeds[4] >= speeds[1] * 0.98


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0].startswith("a  ")
        assert "---" in lines[1]
        assert len(lines) == 4

    def test_deterministic(self):
        args = (["x"], [["1"], ["2"]])
        assert format_table(*args) == format_table(*args)


class TestFigures:
    def test_figure1_renders_every_program(self):
        from repro.evaluation.figures import figure1_window
        from repro.workloads import SUITE

        for name in SUITE:
            window = figure1_window(name)
            assert "ParaScope Editor" in window
            assert "== dependences" in window

    def test_figure2_sections(self):
        from repro.evaluation.figures import figure2_worked_examples

        sections = figure2_worked_examples()
        assert len(sections) == 4
        assert "UNSAFE" in sections[1]
