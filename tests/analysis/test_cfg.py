"""Unit tests for the statement-level CFG."""

import pytest

from repro.analysis.cfg import ENTRY, EXIT, build_cfg
from repro.fortran import parse_and_bind


def cfg_of(body, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    unit = parse_and_bind(src).units[0]
    return unit, build_cfg(unit)


class TestStraightLine:
    def test_sequential_edges(self):
        _, cfg = cfg_of("x = 1\ny = 2\nz = 3")
        assert cfg.succ[ENTRY] == {0}
        assert cfg.succ[0] == {1}
        assert cfg.succ[1] == {2}
        assert cfg.succ[2] == {EXIT}

    def test_preds_mirror_succs(self):
        _, cfg = cfg_of("x = 1\ny = 2")
        for a, succs in cfg.succ.items():
            for b in succs:
                assert a in cfg.pred[b]

    def test_empty_body(self):
        _, cfg = cfg_of("continue")
        assert cfg.succ[ENTRY] == {0}

    def test_stop_goes_to_exit(self):
        _, cfg = cfg_of("x = 1\nstop\ny = 2")
        assert EXIT in cfg.succ[1]
        assert 2 not in cfg.succ[1]

    def test_return_goes_to_exit(self):
        src = "      subroutine s\n      x = 1\n      return\n      end\n"
        unit = parse_and_bind(src).units[0]
        cfg = build_cfg(unit)
        assert EXIT in cfg.succ[1]


class TestDoLoop:
    def test_loop_edges(self):
        _, cfg = cfg_of("do i = 1, 3\nx = i\nend do\ny = 1")
        # header -> body, header -> after (zero trip)
        assert cfg.succ[0] == {1, 2}
        # last body stmt -> header (back edge)
        assert cfg.succ[1] == {0}

    def test_nested_loop_back_edges(self):
        _, cfg = cfg_of("do i = 1, 3\ndo j = 1, 3\nx = i\nend do\nend do")
        assert 1 in cfg.succ[0]  # outer -> inner header
        assert 2 in cfg.succ[1]  # inner -> body
        assert 1 in cfg.succ[2]  # body -> inner header
        assert 0 in cfg.succ[1]  # inner header -> outer header (exit)

    def test_empty_loop_body(self):
        _, cfg = cfg_of("do i = 1, 3\nend do\nx = 1")
        # header loops to itself and exits forward
        assert cfg.succ[0] == {0, 1}


class TestIf:
    def test_if_then_else_edges(self):
        _, cfg = cfg_of("if (x .gt. 0) then\ny = 1\nelse\ny = 2\nend if\nz = 3")
        assert cfg.succ[0] == {1, 2}
        assert cfg.succ[1] == {3}
        assert cfg.succ[2] == {3}

    def test_if_without_else_falls_through(self):
        _, cfg = cfg_of("if (x .gt. 0) then\ny = 1\nend if\nz = 3")
        assert cfg.succ[0] == {1, 2}

    def test_logical_if(self):
        _, cfg = cfg_of("if (x .gt. 0) y = 1\nz = 3")
        assert cfg.succ[0] == {1, 2}
        assert cfg.succ[1] == {2}


class TestGoto:
    def test_goto_forward(self):
        _, cfg = cfg_of("goto 10\nx = 1\n10 y = 2")
        assert cfg.succ[0] == {2}

    def test_goto_backward(self):
        _, cfg = cfg_of("10 x = x + 1\nif (x .lt. 3) goto 10\ny = 1")
        # logical IF's inner goto statement targets statement 0
        goto_sid = 2
        assert cfg.succ[goto_sid] == {0}

    def test_unresolved_goto_falls_through(self):
        _, cfg = cfg_of("goto 99\nx = 1")
        assert cfg.succ[0] == {1}


class TestDominance:
    def test_entry_dominates_all(self):
        _, cfg = cfg_of("x = 1\nif (x .gt. 0) then\ny = 1\nend if\nz = 2")
        dom = cfg.dominators()
        for n in cfg.stmts:
            assert ENTRY in dom[n]

    def test_branch_arms_not_dominating_join(self):
        _, cfg = cfg_of("if (x .gt. 0) then\ny = 1\nelse\ny = 2\nend if\nz = 2")
        dom = cfg.dominators()
        join = 3
        assert 1 not in dom[join]
        assert 2 not in dom[join]
        assert 0 in dom[join]

    def test_postdominators(self):
        _, cfg = cfg_of("if (x .gt. 0) then\ny = 1\nend if\nz = 2")
        pdom = cfg.postdominators()
        # The join postdominates the branch.
        assert 2 in pdom[0]
        # The arm does not postdominate the branch.
        assert 1 not in pdom[0]

    def test_reverse_postorder_starts_at_entry(self):
        _, cfg = cfg_of("x = 1\ny = 2")
        order = cfg.reverse_postorder()
        assert order[0] == ENTRY
        assert order.index(0) < order.index(1)
