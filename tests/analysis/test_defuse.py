"""Unit tests for defs/uses, reaching definitions and liveness."""

import pytest

from repro.analysis.cfg import ENTRY, build_cfg
from repro.analysis.defuse import (
    ConservativeEffects,
    compute_defuse,
    stmt_defs,
    stmt_uses,
)
from repro.fortran import parse_and_bind


def unit_of(body, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    return parse_and_bind(src).units[0]


class TestStmtDefsUses:
    def test_scalar_assign_must_def(self):
        u = unit_of("x = y + 1")
        must, may = stmt_defs(u.body[0], u.symtab)
        assert must == {"x"}
        assert may == {"x"}

    def test_array_assign_may_def_only(self):
        u = unit_of("a(i) = 0.0", "real a(10)")
        must, may = stmt_defs(u.body[0], u.symtab)
        assert must == set()
        assert may == {"a"}

    def test_uses_include_subscripts(self):
        u = unit_of("a(i+k) = b(j)", "real a(10), b(10)")
        uses = stmt_uses(u.body[0], u.symtab)
        assert {"i", "k", "j", "b"} <= uses
        assert "a" not in uses

    def test_do_header_defines_var(self):
        u = unit_of("do i = 1, n\nx = i\nend do")
        must, _ = stmt_defs(u.body[0], u.symtab)
        assert must == {"i"}

    def test_do_header_uses_bounds(self):
        u = unit_of("do i = j, n, k\nx = i\nend do")
        uses = stmt_uses(u.body[0], u.symtab)
        assert {"j", "n", "k"} <= uses

    def test_read_defines_items(self):
        u = unit_of("read (5, *) x, n")
        must, _ = stmt_defs(u.body[0], u.symtab)
        assert must == {"x", "n"}

    def test_write_uses_items(self):
        u = unit_of("write (6, *) x, y")
        uses = stmt_uses(u.body[0], u.symtab)
        assert {"x", "y"} <= uses

    def test_call_conservative_may_defs(self):
        u = unit_of("call foo(x, a)", "real a(5)\ncommon /c/ q")
        must, may = stmt_defs(u.body[0], u.symtab)
        assert must == set()
        assert {"x", "a", "q"} <= may

    def test_call_conservative_uses(self):
        u = unit_of("call foo(x)", "common /c/ q")
        uses = stmt_uses(u.body[0], u.symtab)
        assert {"x", "q"} <= uses

    def test_if_condition_uses(self):
        u = unit_of("if (p .gt. q) x = 1")
        uses = stmt_uses(u.body[0], u.symtab)
        assert {"p", "q"} <= uses


class TestReachingDefs:
    def test_straightline_chain(self):
        u = unit_of("x = 1\ny = x")
        du = compute_defuse(u)
        assert du.ud[1]["x"] == {0}

    def test_redefinition_kills(self):
        u = unit_of("x = 1\nx = 2\ny = x")
        du = compute_defuse(u)
        assert du.ud[2]["x"] == {1}

    def test_branch_merges_defs(self):
        u = unit_of(
            "if (p .gt. 0) then\nx = 1\nelse\nx = 2\nend if\ny = x"
        )
        du = compute_defuse(u)
        assert du.ud[3]["x"] == {1, 2}

    def test_entry_def_for_undefined(self):
        u = unit_of("y = x")
        du = compute_defuse(u)
        assert du.ud[0]["x"] == {ENTRY}

    def test_loop_carried_reach(self):
        u = unit_of("do i = 1, 3\ny = x\nx = y + 1\nend do")
        du = compute_defuse(u)
        # The use of x sees both the entry value and the loop's def.
        assert du.ud[1]["x"] == {ENTRY, 2}

    def test_array_defs_accumulate(self):
        u = unit_of("a(1) = 0.\na(2) = 0.\nx = a(i)", "real a(5)")
        du = compute_defuse(u)
        assert du.ud[2]["a"] == {ENTRY, 0, 1}

    def test_du_chains_inverse(self):
        u = unit_of("x = 1\ny = x\nz = x")
        du = compute_defuse(u)
        assert du.du[(0, "x")] == {1, 2}


class TestLiveness:
    def test_dead_after_last_use(self):
        u = unit_of("x = 1\ny = x\nz = 2")
        du = compute_defuse(u)
        assert "x" in du.live_in[1]
        assert "x" not in du.live_out[1]

    def test_live_through_loop(self):
        u = unit_of("s = 0.0\ndo i = 1, 3\ns = s + 1.0\nend do\ny = s")
        du = compute_defuse(u)
        assert "s" in du.live_out[2]  # live across iterations
        assert "s" in du.live_out[1]  # live out of the loop header

    def test_condition_vars_live(self):
        u = unit_of("if (p .gt. 0) then\nx = 1\nend if")
        du = compute_defuse(u)
        assert "p" in du.live_in[0]
