"""Unit and property tests for the Linear symbolic algebra."""

from fractions import Fraction

import hypothesis.strategies as st
import pytest
from hypothesis import given

from repro.analysis.symbolic import Linear, affine, linear_of_expr
from repro.fortran import parse_and_bind


def expr_of(text, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    src += f"      x = {text}\n      end\n"
    u = parse_and_bind(src).units[0]
    return u.body[0].expr, u.symtab


class TestLinearAlgebra:
    def test_constant(self):
        lin = Linear.constant(5)
        assert lin.is_constant
        assert lin.int_value() == 5

    def test_atom(self):
        lin = Linear.atom("n", 2)
        assert lin.coeff("n") == 2
        assert not lin.is_constant

    def test_zero_coeff_dropped(self):
        assert Linear.atom("n", 0) == Linear()

    def test_addition_merges(self):
        a = Linear.atom("n") + Linear.constant(1)
        b = Linear.atom("n", 2) + Linear.constant(3)
        total = a + b
        assert total.coeff("n") == 3
        assert total.const == 4

    def test_subtraction_cancels(self):
        a = Linear.atom("n") + Linear.constant(5)
        assert (a - a) == Linear()

    def test_scale(self):
        a = Linear.atom("n", 2) + Linear.constant(3)
        b = a.scale(Fraction(1, 2))
        assert b.coeff("n") == 1
        assert b.const == Fraction(3, 2)

    def test_neg(self):
        a = Linear.atom("n")
        assert (-a).coeff("n") == -1

    def test_drop_and_restrict(self):
        a = Linear.atom("i", 2) + Linear.atom("n") + Linear.constant(7)
        assert a.drop({"i"}).coeff("i") == 0
        assert a.drop({"i"}).const == 7
        assert a.restrict({"i"}).coeff("n") == 0
        assert a.restrict({"i"}).const == 0

    def test_equality_is_structural(self):
        assert Linear.atom("n") + Linear.atom("m") == Linear.atom("m") + Linear.atom("n")


@st.composite
def linears(draw):
    n = draw(st.integers(0, 3))
    lin = Linear.constant(draw(st.integers(-10, 10)))
    for _ in range(n):
        atom = draw(st.sampled_from(["i", "j", "n", "m"]))
        lin = lin + Linear.atom(atom, draw(st.integers(-5, 5)))
    return lin


class TestLinearProperties:
    @given(linears(), linears())
    def test_addition_commutes(self, a, b):
        assert a + b == b + a

    @given(linears(), linears(), linears())
    def test_addition_associates(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(linears())
    def test_sub_self_is_zero(self, a):
        assert a - a == Linear()

    @given(linears(), st.integers(-4, 4))
    def test_scale_distributes(self, a, k):
        assert a.scale(k) + a.scale(k) == a.scale(2 * k)

    @given(linears())
    def test_double_negation(self, a):
        assert -(-a) == a


class TestLinearOfExpr:
    def test_simple_affine(self):
        e, tab = expr_of("2*i + n - 1")
        lin = linear_of_expr(e, tab)
        assert lin.coeff("i") == 2
        assert lin.coeff("n") == 1
        assert lin.const == -1

    def test_parameter_resolution(self):
        e, tab = expr_of("n + 1", "integer n\nparameter (n = 10)")
        lin = linear_of_expr(e, tab)
        assert lin.int_value() == 11

    def test_env_overrides(self):
        e, tab = expr_of("k + 1")
        lin = linear_of_expr(e, tab, {"k": Linear.constant(4)})
        assert lin.int_value() == 5

    def test_nonlinear_becomes_opaque(self):
        e, tab = expr_of("n * m")
        lin = linear_of_expr(e, tab)
        atoms = lin.atoms()
        assert len(atoms) == 1 and atoms[0].startswith("@")

    def test_identical_opaque_terms_cancel(self):
        e1, tab = expr_of("n*m + 1")
        e2, _ = expr_of("n*m + 3")
        diff = linear_of_expr(e2, tab) - linear_of_expr(e1, tab)
        assert diff.int_value() == 2

    def test_division_by_constant_exact(self):
        e, tab = expr_of("(2*i + 4) / 2")
        lin = linear_of_expr(e, tab)
        assert lin.coeff("i") == 1
        assert lin.const == 2

    def test_inexact_division_opaque(self):
        e, tab = expr_of("i / 2")
        lin = linear_of_expr(e, tab)
        assert lin.atoms()[0].startswith("@")

    def test_power_one(self):
        e, tab = expr_of("i ** 1")
        assert linear_of_expr(e, tab).coeff("i") == 1

    def test_constant_power(self):
        e, tab = expr_of("2 ** 5")
        assert linear_of_expr(e, tab).int_value() == 32


class TestAffine:
    def test_splits_index_coeffs(self):
        e, tab = expr_of("2*i + 3*j + n")
        got = affine(e, ["i", "j"], tab)
        assert got is not None
        coeffs, rest = got
        assert coeffs == {"i": 2, "j": 3}
        assert rest.coeff("n") == 1

    def test_index_inside_nonlinear_rejected(self):
        e, tab = expr_of("i * j + 1")
        assert affine(e, ["i", "j"], tab) is None

    def test_index_inside_array_ref_rejected(self):
        e, tab = expr_of("ip(i)", "integer ip(10)")
        assert affine(e, ["i"], tab) is None

    def test_symbol_only_ok(self):
        e, tab = expr_of("n + 1")
        got = affine(e, ["i"], tab)
        assert got is not None
        coeffs, rest = got
        assert coeffs == {}
        assert rest.coeff("n") == 1

    def test_whole_word_mention_no_false_positive(self):
        # "ii" contains "i" but is a different variable.
        e, tab = expr_of("ip(ii) + 1", "integer ip(10)")
        got = affine(e, ["i"], tab)
        assert got is not None
