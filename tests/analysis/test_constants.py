"""Unit tests for constant propagation."""

import pytest

from repro.analysis.constants import eval_const, propagate_constants
from repro.fortran import parse_and_bind


def unit_of(body, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    return parse_and_bind(src).units[0]


class TestEvalConst:
    def expr(self, text, body_extra=""):
        u = unit_of(f"x = {text}")
        return u.body[0].expr

    def test_arith(self):
        assert eval_const(self.expr("2 + 3 * 4"), {}) == 14

    def test_env_lookup(self):
        assert eval_const(self.expr("n + 1"), {"n": 9}) == 10

    def test_unknown_is_none(self):
        assert eval_const(self.expr("n + 1"), {}) is None

    def test_integer_division_truncates(self):
        assert eval_const(self.expr("7 / 2"), {}) == 3
        assert eval_const(self.expr("(-7) / 2"), {}) == -3

    def test_division_by_zero_none(self):
        assert eval_const(self.expr("1 / 0"), {}) is None

    def test_relational(self):
        assert eval_const(self.expr("2 .lt. 3"), {}) is True

    def test_logical_ops(self):
        assert eval_const(self.expr(".true. .and. .false."), {}) is False

    def test_intrinsics(self):
        assert eval_const(self.expr("abs(-4)"), {}) == 4
        assert eval_const(self.expr("max(2, 7)"), {}) == 7
        assert eval_const(self.expr("mod(7, 3)"), {}) == 1


class TestPropagation:
    def test_parameter_seed(self):
        u = unit_of("x = n", "integer n\nparameter (n = 12)")
        cm = propagate_constants(u)
        assert cm.at(0)["n"] == 12

    def test_assignment_propagates(self):
        u = unit_of("k = 5\nx = k")
        cm = propagate_constants(u)
        assert cm.at(1)["k"] == 5

    def test_chained_folding(self):
        u = unit_of("k = 5\nm = k * 2\nx = m")
        cm = propagate_constants(u)
        assert cm.at(2)["m"] == 10

    def test_branch_agreement(self):
        u = unit_of("if (p .gt. 0) then\nk = 4\nelse\nk = 4\nend if\nx = k")
        cm = propagate_constants(u)
        assert cm.at(3).get("k") == 4

    def test_branch_disagreement(self):
        u = unit_of("if (p .gt. 0) then\nk = 4\nelse\nk = 5\nend if\nx = k")
        cm = propagate_constants(u)
        assert "k" not in cm.at(3)

    def test_loop_var_not_constant(self):
        u = unit_of("do i = 1, 3\nx = i\nend do")
        cm = propagate_constants(u)
        assert "i" not in cm.at(1)

    def test_redefinition_in_loop_not_constant(self):
        u = unit_of("k = 1\ndo i = 1, 3\nk = k + 1\nend do\nx = k")
        cm = propagate_constants(u)
        assert "k" not in cm.at(3)

    def test_constant_survives_loop(self):
        u = unit_of("k = 7\ndo i = 1, 3\nx = k\nend do")
        cm = propagate_constants(u)
        assert cm.at(2).get("k") == 7

    def test_call_clobbers_actual(self):
        u = unit_of("k = 7\ncall foo(k)\nx = k")
        cm = propagate_constants(u)
        assert "k" not in cm.at(2)

    def test_call_does_not_clobber_parameter(self):
        u = unit_of("call foo(n)\nx = n", "integer n\nparameter (n = 3)")
        cm = propagate_constants(u)
        assert cm.at(1).get("n") == 3

    def test_read_clobbers(self):
        u = unit_of("k = 7\nread (5, *) k\nx = k")
        cm = propagate_constants(u)
        assert "k" not in cm.at(2)

    def test_inherited_constants(self):
        src = "      subroutine s(n)\n      integer n\n      x = n\n      end\n"
        unit = parse_and_bind(src).units[0]
        cm = propagate_constants(unit, inherited={"n": 42})
        assert cm.at(0)["n"] == 42

    def test_linear_env(self):
        u = unit_of("k = 3\nx = k")
        cm = propagate_constants(u)
        env = cm.linear_env(1)
        assert env["k"].constant_value() == 3
