"""Unit tests for kill analysis, induction variables and reductions."""

import pytest

from repro.analysis.induction import auxiliary_inductions, induction_variables
from repro.analysis.kill import killed_scalars, privatizable_scalars, upward_exposed
from repro.analysis.reductions import find_reductions
from repro.fortran import parse_and_bind


def loop_of(body, decls="real a(100), b(100)"):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    unit = parse_and_bind(src).units[0]
    from repro.fortran import DoLoop, walk_statements

    loop = next(st for st in unit.body if isinstance(st, DoLoop))
    return loop, unit


class TestKill:
    def test_def_before_use_killed(self):
        loop, u = loop_of("do i = 1, 9\nt = a(i)\nb(i) = t\nend do")
        assert "t" in killed_scalars(loop, u.symtab)

    def test_use_before_def_not_killed(self):
        loop, u = loop_of("do i = 1, 9\nb(i) = t\nt = a(i)\nend do")
        assert "t" not in killed_scalars(loop, u.symtab)

    def test_conditional_def_not_killed(self):
        loop, u = loop_of(
            "do i = 1, 9\nif (a(i) .gt. 0.) then\nt = 1.\nend if\nb(i) = t\nend do"
        )
        assert "t" not in killed_scalars(loop, u.symtab)

    def test_def_on_both_branches_killed(self):
        loop, u = loop_of(
            "do i = 1, 9\nif (a(i) .gt. 0.) then\nt = 1.\nelse\nt = 2.\nend if\n"
            "b(i) = t\nend do"
        )
        assert "t" in killed_scalars(loop, u.symtab)

    def test_inner_loop_var_killed(self):
        loop, u = loop_of("do i = 1, 9\ndo j = 1, 9\nb(j) = a(j)\nend do\nend do")
        assert "j" in killed_scalars(loop, u.symtab)

    def test_accumulator_not_killed(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\nend do")
        assert "s" not in killed_scalars(loop, u.symtab)

    def test_goto_in_body_conservative(self):
        loop, u = loop_of(
            "do i = 1, 9\nt = a(i)\nif (t .gt. 0.) goto 10\nb(i) = t\n"
            "10 continue\nend do"
        )
        # Conservative bail-out: nothing is killed.
        assert killed_scalars(loop, u.symtab) == set()

    def test_upward_exposed_reports_reads(self):
        loop, u = loop_of("do i = 1, 9\nb(i) = t + u\nt = 1.\nend do")
        exposed = upward_exposed(loop, u.symtab)
        assert {"t", "u"} <= exposed

    def test_privatizable_lastvalue_flag(self):
        loop, u = loop_of(
            "do i = 1, 9\nt = a(i)\nb(i) = t\nend do\nx = t"
        )
        privs = privatizable_scalars(loop, u)
        by_name = {p.name: p for p in privs}
        assert "t" in by_name
        assert by_name["t"].needs_last_value

    def test_privatizable_dead_after_loop(self):
        loop, u = loop_of("do i = 1, 9\nt = a(i)\nb(i) = t\nend do")
        privs = privatizable_scalars(loop, u)
        by_name = {p.name: p for p in privs}
        assert not by_name["t"].needs_last_value


class TestInduction:
    def test_basic_induction(self):
        loop, u = loop_of("do i = 1, 9\nb(i) = a(i)\nend do")
        ivs = induction_variables(loop, u.symtab)
        assert ivs[0].name == "i" and ivs[0].basic

    def test_auxiliary_recognised(self):
        loop, u = loop_of("k = 0\ndo i = 1, 9\nk = k + 2\nb(i) = a(k)\nend do")
        aux = auxiliary_inductions(loop, u.symtab)
        assert [iv.name for iv in aux] == ["k"]
        assert str(aux[0].step) == "2"

    def test_decrement_recognised(self):
        loop, u = loop_of("k = 9\ndo i = 1, 9\nk = k - 1\nb(i) = a(k)\nend do")
        aux = auxiliary_inductions(loop, u.symtab)
        assert [iv.name for iv in aux] == ["k"]

    def test_symbolic_invariant_step(self):
        loop, u = loop_of("do i = 1, 9\nk = k + m\nb(i) = a(k)\nend do")
        aux = auxiliary_inductions(loop, u.symtab)
        assert [iv.name for iv in aux] == ["k"]

    def test_variant_step_rejected(self):
        loop, u = loop_of("do i = 1, 9\nm = m + 1\nk = k + m\nend do")
        aux = auxiliary_inductions(loop, u.symtab)
        assert "k" not in [iv.name for iv in aux]

    def test_conditional_update_rejected(self):
        loop, u = loop_of(
            "do i = 1, 9\nif (a(i) .gt. 0.) then\nk = k + 1\nend if\nend do"
        )
        assert auxiliary_inductions(loop, u.symtab) == []

    def test_double_update_rejected(self):
        loop, u = loop_of("do i = 1, 9\nk = k + 1\nk = k + 2\nend do")
        assert auxiliary_inductions(loop, u.symtab) == []

    def test_non_unit_coefficient_rejected(self):
        loop, u = loop_of("do i = 1, 9\nk = 2 * k + 1\nend do")
        assert auxiliary_inductions(loop, u.symtab) == []


class TestReductions:
    def names(self, loop, u):
        return [(r.op, r.var) for r in find_reductions(loop, u.symtab)]

    def test_sum(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\nend do")
        assert ("+", "s") in self.names(loop, u)

    def test_sum_reversed_operands(self):
        loop, u = loop_of("do i = 1, 9\ns = a(i) + s\nend do")
        assert ("+", "s") in self.names(loop, u)

    def test_difference(self):
        loop, u = loop_of("do i = 1, 9\ns = s - a(i)\nend do")
        assert ("+", "s") in self.names(loop, u)

    def test_product(self):
        loop, u = loop_of("do i = 1, 9\np = p * a(i)\nend do")
        assert ("*", "p") in self.names(loop, u)

    def test_intrinsic_max(self):
        loop, u = loop_of("do i = 1, 9\nm = max(m, a(i))\nend do")
        assert ("max", "m") in self.names(loop, u)

    def test_guarded_max(self):
        loop, u = loop_of("do i = 1, 9\nif (a(i) .gt. m) m = a(i)\nend do")
        assert ("max", "m") in self.names(loop, u)

    def test_guarded_min(self):
        loop, u = loop_of("do i = 1, 9\nif (a(i) .lt. m) m = a(i)\nend do")
        assert ("min", "m") in self.names(loop, u)

    def test_multiple_updates_same_op(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\ns = s + b(i)\nend do")
        got = self.names(loop, u)
        assert ("+", "s") in got

    def test_mixed_ops_rejected(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\ns = s * b(i)\nend do")
        assert self.names(loop, u) == []

    def test_other_use_rejected(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\nb(i) = s\nend do")
        assert self.names(loop, u) == []

    def test_operand_mentions_var_rejected(self):
        loop, u = loop_of("do i = 1, 9\ns = s + s * a(i)\nend do")
        assert self.names(loop, u) == []

    def test_multiple_reductions(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i)\np = p * b(i)\nend do")
        got = self.names(loop, u)
        assert ("+", "s") in got and ("*", "p") in got


class TestChainedReductions:
    def names(self, loop, u):
        return [(r.op, r.var) for r in find_reductions(loop, u.symtab)]

    def test_chained_sum(self):
        loop, u = loop_of("do i = 1, 9\ns = s + a(i) + b(i)\nend do")
        assert ("+", "s") in self.names(loop, u)

    def test_chained_mixed_signs(self):
        loop, u = loop_of("do i = 1, 9\ns = s - a(i) + b(i)\nend do")
        assert ("+", "s") in self.names(loop, u)

    def test_negated_var_not_reduction(self):
        # s = a(i) - s is NOT associative-accumulation shaped.
        loop, u = loop_of("do i = 1, 9\ns = a(i) - s\nend do")
        assert self.names(loop, u) == []

    def test_var_twice_rejected(self):
        loop, u = loop_of("do i = 1, 9\ns = s + s + a(i)\nend do")
        assert self.names(loop, u) == []

    def test_chained_product(self):
        loop, u = loop_of("do i = 1, 9\np = p * a(i) * 2.0\nend do")
        assert ("*", "p") in self.names(loop, u)

    def test_nested_loop_reduction_visible_at_outer(self):
        loop, u = loop_of(
            "do i = 1, 9\ndo j = 1, 9\ns = s + a(j) + b(i)\nend do\nend do",
        )
        assert ("+", "s") in self.names(loop, u)
