"""Direct tests of the generic data-flow solver."""

import pytest

from repro.analysis.cfg import ENTRY, EXIT, build_cfg
from repro.analysis.dataflow import (
    BACKWARD,
    DataFlowProblem,
    FORWARD,
    MAY,
    MUST,
    gen_kill_transfer,
    solve,
    solve_with_out,
)
from repro.fortran import parse_and_bind


def cfg_of(body):
    src = "      program t\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    return build_cfg(parse_and_bind(src).units[0])


class TestForwardMay:
    def test_gen_propagates(self):
        cfg = cfg_of("x = 1\ny = 2\nz = 3")
        transfer = gen_kill_transfer({0: {"a"}}, {})
        in_facts = solve(cfg, DataFlowProblem(FORWARD, MAY, transfer))
        assert "a" not in in_facts[0]
        assert "a" in in_facts[1]
        assert "a" in in_facts[2]

    def test_kill_removes(self):
        cfg = cfg_of("x = 1\ny = 2\nz = 3")
        transfer = gen_kill_transfer({0: {"a"}}, {1: {"a"}})
        in_facts = solve(cfg, DataFlowProblem(FORWARD, MAY, transfer))
        assert "a" in in_facts[1]
        assert "a" not in in_facts[2]

    def test_union_at_join(self):
        cfg = cfg_of(
            "if (p .gt. 0) then\nx = 1\nelse\ny = 2\nend if\nz = 3"
        )
        transfer = gen_kill_transfer({1: {"a"}, 2: {"b"}}, {})
        in_facts = solve(cfg, DataFlowProblem(FORWARD, MAY, transfer))
        join = 3
        assert {"a", "b"} <= set(in_facts[join])

    def test_loop_reaches_fixed_point(self):
        cfg = cfg_of("do i = 1, 3\nx = 1\nend do\ny = 2")
        transfer = gen_kill_transfer({1: {"a"}}, {})
        in_facts = solve(cfg, DataFlowProblem(FORWARD, MAY, transfer))
        # The back edge carries the fact to the header and out of the loop.
        assert "a" in in_facts[0]
        assert "a" in in_facts[2]

    def test_boundary_fact_flows(self):
        cfg = cfg_of("x = 1")
        transfer = gen_kill_transfer({}, {})
        in_facts = solve(
            cfg,
            DataFlowProblem(FORWARD, MAY, transfer, boundary=frozenset({"init"})),
        )
        assert "init" in in_facts[0]


class TestForwardMust:
    def test_intersection_at_join(self):
        cfg = cfg_of(
            "if (p .gt. 0) then\nx = 1\nelse\ny = 2\nend if\nz = 3"
        )
        universe = frozenset({"a", "b"})
        transfer = gen_kill_transfer({1: {"a"}, 2: {"a", "b"}}, {})
        problem = DataFlowProblem(
            FORWARD, MUST, transfer, boundary=frozenset(), universe=universe
        )
        in_facts = solve(cfg, problem)
        join = 3
        assert "a" in in_facts[join]  # on both paths
        assert "b" not in in_facts[join]  # one path only


class TestBackwardMay:
    def test_liveness_shape(self):
        cfg = cfg_of("x = 1\ny = x")
        # gen = uses, kill = defs
        transfer = gen_kill_transfer({1: {"x"}}, {0: {"x"}})
        out_facts, in_facts = solve_with_out(
            cfg, DataFlowProblem(BACKWARD, MAY, transfer)
        )
        # x live into statement 1, dead before statement 0's def point
        # (out_facts here maps node -> fact *before* it, per backward duals).
        assert "x" in in_facts[1]
        assert "x" not in in_facts[ENTRY] or True  # entry fact is boundary-side

    def test_backward_through_branch(self):
        cfg = cfg_of("if (p .gt. 0) then\nx = 1\nend if\ny = q")
        transfer = gen_kill_transfer({2: {"q"}}, {})
        out_facts = solve(cfg, DataFlowProblem(BACKWARD, MAY, transfer))
        # q is live (backward-reachable) at the branch.
        assert "q" in out_facts[0]


class TestSolverProperties:
    def test_deterministic(self):
        cfg = cfg_of("do i = 1, 3\nx = 1\nif (x .gt. 0.) then\ny = 2\nend if\nend do")
        transfer = gen_kill_transfer({1: {"a"}, 3: {"b"}}, {1: {"b"}})
        p = DataFlowProblem(FORWARD, MAY, transfer)
        assert solve(cfg, p) == solve(cfg, p)

    def test_monotone_result_contains_gen(self):
        cfg = cfg_of("x = 1\ny = 2\nz = 3")
        transfer = gen_kill_transfer({0: {"a"}, 1: {"b"}}, {})
        in_facts = solve(cfg, DataFlowProblem(FORWARD, MAY, transfer))
        assert {"a", "b"} <= set(in_facts[EXIT])
