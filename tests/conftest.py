"""Shared test configuration.

Set ``HYPOTHESIS_PROFILE=deep`` (or pass ``--hypothesis-profile=deep``)
for an extended property-test run — the configuration the soundness bugs
were hunted with.
"""

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "deep",
    max_examples=600,
    deadline=None,
    suppress_health_check=list(HealthCheck),
)
settings.register_profile("default", deadline=None)

settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
