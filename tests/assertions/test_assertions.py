"""Unit tests for the assertion facility (parsing and the oracle)."""

import math

import pytest

from repro.analysis.symbolic import Linear
from repro.assertions import AssertionDB, parse_assertion
from repro.assertions.facts import (
    AssertionSyntaxError,
    ConstantFact,
    DistinctFact,
    NonZeroFact,
    RangeFact,
    RelationFact,
)

INF = math.inf


class TestParsing:
    def test_distinct(self):
        fact = parse_assertion("distinct ip")
        assert isinstance(fact, DistinctFact)
        assert fact.name == "ip"

    def test_constant(self):
        fact = parse_assertion("n == 64")
        assert isinstance(fact, ConstantFact)
        assert fact.var == "n" and fact.value == 64

    def test_ge_relation(self):
        fact = parse_assertion("n >= 1")
        assert isinstance(fact, RelationFact) and not fact.strict

    def test_gt_relation(self):
        fact = parse_assertion("n > 0")
        assert isinstance(fact, RelationFact) and fact.strict

    def test_le_normalised(self):
        fact = parse_assertion("n <= 100")
        assert isinstance(fact, RelationFact)
        # normalised to 100 - n >= 0
        assert fact.lin.coeff("n") == -1

    def test_dotted_operators(self):
        fact = parse_assertion("m .ge. 2")
        assert isinstance(fact, RelationFact)

    def test_nonzero(self):
        fact = parse_assertion("k /= 0")
        assert isinstance(fact, NonZeroFact)

    def test_relation_between_variables(self):
        fact = parse_assertion("k > n")
        assert isinstance(fact, RelationFact)
        assert fact.lin.coeff("k") == 1 and fact.lin.coeff("n") == -1

    def test_expression_sides(self):
        fact = parse_assertion("2*n + 1 <= m")
        assert isinstance(fact, RelationFact)

    def test_empty_rejected(self):
        with pytest.raises(AssertionSyntaxError):
            parse_assertion("   ")

    def test_no_operator_rejected(self):
        with pytest.raises(AssertionSyntaxError):
            parse_assertion("hello world 3")

    def test_bad_distinct_rejected(self):
        with pytest.raises(AssertionSyntaxError):
            parse_assertion("distinct a b")


class TestOracle:
    def test_range_from_bounds(self):
        db = AssertionDB()
        db.add("n >= 10")
        db.add("n <= 20")
        assert db.range_of(Linear.atom("n")) == (10.0, 20.0)

    def test_range_of_expression(self):
        db = AssertionDB()
        db.add("n >= 10")
        lin = Linear.atom("n").scale(2) + Linear.constant(-5)
        lo, hi = db.range_of(lin)
        assert lo == 15.0 and hi == INF

    def test_range_of_difference(self):
        db = AssertionDB()
        db.add("k > n")
        lo, _ = db.range_of(Linear.atom("k") - Linear.atom("n"))
        assert lo >= 1.0

    def test_nonzero_from_fact(self):
        db = AssertionDB()
        db.add("k /= 0")
        assert db.nonzero(Linear.atom("k"))
        assert db.nonzero(Linear.atom("k").scale(3))

    def test_nonzero_from_range(self):
        db = AssertionDB()
        db.add("n > 5")
        assert db.nonzero(Linear.atom("n"))
        assert db.nonzero(Linear.atom("n") - Linear.constant(5))
        assert not db.nonzero(Linear.atom("n") - Linear.constant(7))

    def test_injective(self):
        db = AssertionDB()
        db.add("distinct ip")
        assert db.injective("ip")
        assert not db.injective("jp")

    def test_constants_exported(self):
        db = AssertionDB()
        db.add("n == 32")
        assert db.constants() == {"n": 32}
        assert db.range_of(Linear.atom("n")) == (32.0, 32.0)

    def test_unknown_atom_unbounded(self):
        db = AssertionDB()
        assert db.range_of(Linear.atom("zz")) == (-INF, INF)

    def test_remove_fact(self):
        db = AssertionDB()
        fact = db.add("n >= 10")
        db.remove(fact)
        assert db.range_of(Linear.atom("n")) == (-INF, INF)

    def test_clear(self):
        db = AssertionDB()
        db.add("distinct ip")
        db.clear()
        assert not db.injective("ip")

    def test_conflicting_facts_tighten_to_empty(self):
        db = AssertionDB()
        db.add("n >= 10")
        db.add("n <= 5")
        lo, hi = db.range_of(Linear.atom("n"))
        assert lo > hi  # empty interval: everything is provable (garbage in)

    def test_interval_arithmetic_multiple_atoms(self):
        db = AssertionDB()
        db.add("n >= 1")
        db.add("n <= 10")
        db.add("m >= 2")
        db.add("m <= 3")
        lin = Linear.atom("n") + Linear.atom("m").scale(-2)
        lo, hi = db.range_of(lin)
        assert lo == 1 - 6 and hi == 10 - 4
