"""Protocol v7 event-sourced session ops, driven straight through
``PedServer.execute`` (no sockets): ``session.log`` paging,
``session.replay`` time travel, ``session.restore`` crash recovery,
and their validation errors.
"""

import pytest

from repro.service import PedServer
from repro.service import protocol

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


def _ok(reply):
    assert reply["ok"], reply.get("error")
    return reply["result"]


def _err(reply):
    assert not reply["ok"], reply
    return reply["error"]


def _mutate(srv, session="s"):
    """Open a session and run a few journaled mutations."""

    _ok(srv.execute({"op": "open", "session": session, "source": SIMPLE}))
    _ok(
        srv.execute(
            {
                "op": "edit",
                "session": session,
                "start": 4,
                "end": 4,
                "text": "         a(i) = a(i-1) + i",
            }
        )
    )
    _ok(
        srv.execute(
            {"op": "assert", "session": session, "unit": "p", "text": "i > 0"}
        )
    )
    _ok(srv.execute({"op": "undo", "session": session}))


@pytest.fixture
def server(tmp_path):
    srv = PedServer(max_workers=2, cache_dir=tmp_path / "cache")
    yield srv
    srv.close()


@pytest.fixture
def storeless():
    srv = PedServer(max_workers=2)
    yield srv
    srv.close()


class TestSessionLog:
    def test_live_log_lists_records(self, server):
        _mutate(server)
        result = _ok(server.execute({"op": "session.log", "session": "s"}))
        assert result["origin"] == "live"
        assert result["total"] == result["count"] == len(result["records"])
        ops = [r["op"] for r in result["records"]]
        assert ops[0] == "edit"
        assert "undo" in ops

    def test_paging(self, server):
        _mutate(server)
        total = _ok(server.execute({"op": "session.log", "session": "s"}))[
            "total"
        ]
        page = _ok(
            server.execute(
                {"op": "session.log", "session": "s", "start": 1, "count": 1}
            )
        )
        assert page["total"] == total
        assert page["count"] == 1
        assert page["start"] == 1

    def test_disk_origin_after_close(self, server):
        _mutate(server)
        _ok(server.execute({"op": "close", "session": "s"}))
        result = _ok(server.execute({"op": "session.log", "session": "s"}))
        assert result["origin"] == "disk"
        assert result["total"] > 0

    def test_validation(self, server):
        _mutate(server)
        err = _err(
            server.execute({"op": "session.log", "session": "s", "start": -1})
        )
        assert err["type"] == protocol.BAD_REQUEST
        err = _err(
            server.execute(
                {"op": "session.log", "session": "s", "count": "many"}
            )
        )
        assert err["type"] == protocol.BAD_REQUEST

    def test_unknown_session(self, server):
        err = _err(server.execute({"op": "session.log", "session": "ghost"}))
        assert err["type"] == protocol.UNKNOWN_SESSION


class TestSessionReplay:
    def test_full_replay_matches_live_fingerprint(self, server):
        _mutate(server)
        live = _ok(server.execute({"op": "fingerprint", "session": "s"}))
        replayed = _ok(
            server.execute({"op": "session.replay", "session": "s"})
        )
        assert replayed["fingerprint"] == live["fingerprint"]
        assert replayed["origin"] == "live"

    def test_every_prefix_is_replayable(self, server):
        _mutate(server)
        total = _ok(server.execute({"op": "session.log", "session": "s"}))[
            "total"
        ]
        seen = set()
        for upto in range(total + 1):
            result = _ok(
                server.execute(
                    {"op": "session.replay", "session": "s", "upto": upto}
                )
            )
            assert result["records"] == upto
            seen.add(result["fingerprint"])
        # The edit genuinely changed the analysis along the way.
        assert len(seen) > 1

    def test_upto_validation(self, server):
        _mutate(server)
        for bad in (-1, 10_000, "three"):
            err = _err(
                server.execute(
                    {"op": "session.replay", "session": "s", "upto": bad}
                )
            )
            assert err["type"] == protocol.BAD_REQUEST

    def test_streams_progress_events(self, server):
        _mutate(server)
        events = []

        def emit(kind, data):
            events.append((kind, data))

        _ok(
            server.execute(
                {"op": "session.replay", "session": "s", "stream": True},
                emit=emit,
            )
        )
        replays = [
            d
            for k, d in events
            if k == protocol.EV_PROGRESS and d.get("phase") == "journal.replay"
        ]
        assert replays, "expected per-record journal.replay progress"
        assert [d["record"] for d in replays] == list(range(len(replays)))

    def test_bumps_replay_counter(self, server):
        _mutate(server)
        before = server.stats.counters.get("journal.replays", 0)
        _ok(server.execute({"op": "session.replay", "session": "s"}))
        assert server.stats.counters["journal.replays"] == before + 1


class TestSessionRestore:
    def test_restore_after_close(self, server):
        _mutate(server)
        live = _ok(server.execute({"op": "fingerprint", "session": "s"}))
        _ok(server.execute({"op": "close", "session": "s"}))
        restored = _ok(
            server.execute({"op": "session.restore", "session": "s"})
        )
        assert restored["fingerprint"] == live["fingerprint"]
        assert restored["undo_depth"] == 1  # edit + assert, undo consumed one
        assert server.stats.counters["journal.restores"] == 1
        # The session is queryable again...
        loops = _ok(
            server.execute({"op": "loops", "session": "s", "unit": "p"})
        )
        assert loops["loops"]
        # ...and keeps journaling: new mutations extend the same file.
        before = _ok(server.execute({"op": "session.log", "session": "s"}))[
            "total"
        ]
        _ok(server.execute({"op": "redo", "session": "s"}))
        _ok(server.execute({"op": "close", "session": "s"}))
        after = _ok(server.execute({"op": "session.log", "session": "s"}))
        assert after["origin"] == "disk"
        assert after["total"] == before + 1

    def test_restore_refuses_open_session_without_replace(self, server):
        _mutate(server)
        err = _err(server.execute({"op": "session.restore", "session": "s"}))
        assert err["type"] == protocol.SESSION_EXISTS
        replaced = _ok(
            server.execute(
                {"op": "session.restore", "session": "s", "replace": True}
            )
        )
        assert replaced["records"] > 0

    def test_restore_without_store_is_bad_request(self, storeless):
        err = _err(
            storeless.execute({"op": "session.restore", "session": "s"})
        )
        assert err["type"] == protocol.BAD_REQUEST
        assert "cache-dir" in err["message"]

    def test_restore_unknown_session(self, server):
        err = _err(
            server.execute({"op": "session.restore", "session": "ghost"})
        )
        assert err["type"] == protocol.UNKNOWN_SESSION


class TestStorelessServer:
    def test_mutations_still_work_without_store(self, storeless):
        _mutate(storeless)
        result = _ok(storeless.execute({"op": "session.log", "session": "s"}))
        assert result["origin"] == "live"
        # But nothing persists: close drops the history.
        _ok(storeless.execute({"op": "close", "session": "s"}))
        err = _err(storeless.execute({"op": "session.log", "session": "s"}))
        assert err["type"] == protocol.UNKNOWN_SESSION


def test_metrics_report_journal_counters(server):
    _mutate(server)
    _ok(server.execute({"op": "session.replay", "session": "s"}))
    metrics = _ok(server.execute({"op": "metrics"}))["metrics"]
    assert metrics["journal.records"] > 0
    assert metrics["journal.bytes"] > 0
    assert metrics["journal.replays"] >= 1
    assert "journal.restores" in metrics
    # Session-bound snapshots overlay the server-scoped journal counters.
    bound = _ok(server.execute({"op": "metrics", "session": "s"}))["metrics"]
    assert bound["journal.records"] == metrics["journal.records"]
