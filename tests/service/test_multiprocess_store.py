"""Concurrent-writer disk-cache integrity (satellite 3).

Two *real* subprocesses analyze overlapping programs against the same
``--cache-dir`` at the same time, racing writes to the same span /
unit-summary / shared-memo keys.  The content-addressed store plus
atomic renames plus the memo lease must deliver: zero corrupted records
(``disk.error`` stays 0 on a subsequent full read-back), no livelock
(both writers finish within the timeout), and a store a third engine
can warm-start from with fingerprints identical to a from-scratch
analysis.
"""

import os
import pickle
import subprocess
import sys
from pathlib import Path

from repro.incremental import AnalysisEngine
from repro.incremental.fingerprint import fingerprint_digest
from repro.service import build_engine
from repro.workloads.generator import generate_program

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

#: Subprocess body: analyze a program against a shared cache dir twice
#: (cold then warm), exercising span/usum/memo writes and the leased
#: memo read-merge-write against a live sibling process.
WRITER = """
import sys
from repro.service import build_engine
from repro.workloads.generator import generate_program

cache_dir, n = sys.argv[1], int(sys.argv[2])
source = generate_program(n_routines=n)
for _ in range(2):
    engine = build_engine(cache_dir=cache_dir)
    engine.analyze(source)
    engine.close()
print("ok")
"""


def _spawn_writer(cache_dir, n_routines):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", WRITER, str(cache_dir), str(n_routines)],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def test_two_subprocess_writers_no_corruption_no_livelock(tmp_path):
    cache_dir = tmp_path / "cache"
    # Same n_routines → byte-identical generated program → both
    # processes race the *same* span, usum and memo keys.
    a = _spawn_writer(cache_dir, 12)
    b = _spawn_writer(cache_dir, 12)
    out_a, err_a = a.communicate(timeout=300)
    out_b, err_b = b.communicate(timeout=300)
    assert a.returncode == 0, err_a
    assert b.returncode == 0, err_b
    assert "ok" in out_a and "ok" in out_b

    # No leftover lease: both processes released (or their records
    # expired and nothing is stuck).
    lease = cache_dir / "locks" / "memo.lease"
    if lease.exists():
        import json, time
        rec = json.loads(lease.read_bytes())
        assert rec["expires"] <= time.time() + 15  # bounded, not stuck

    # Every record in the store unpickles and validates: zero corrupted
    # records after the race.
    from repro.service.diskcache import FORMAT_VERSION, _MAGIC

    records = list(cache_dir.rglob("*.pkl"))
    assert records, "the writers must have populated the store"
    for path in records:
        rec = pickle.loads(path.read_bytes())
        assert rec["magic"] == _MAGIC
        assert rec["format"] == FORMAT_VERSION

    # A third engine warm-starts off the raced store with fingerprints
    # identical to a from-scratch analysis.
    source = generate_program(n_routines=12)
    third = build_engine(cache_dir=cache_dir)
    _, pa = third.analyze(source)
    assert third.stats.counter("disk.error") == 0
    assert third.stats.counter("disk.warm_start") >= 1
    _, pa_scratch = AnalysisEngine().analyze(source)
    assert fingerprint_digest(pa) == fingerprint_digest(pa_scratch)
    third.close()


def test_overlapping_programs_share_memo_across_processes(tmp_path):
    """Different programs racing one store still interleave cleanly,
    and a later engine absorbs the union of their memo deltas."""

    cache_dir = tmp_path / "cache"
    a = _spawn_writer(cache_dir, 10)
    b = _spawn_writer(cache_dir, 14)
    _, err_a = a.communicate(timeout=300)
    _, err_b = b.communicate(timeout=300)
    assert a.returncode == 0, err_a
    assert b.returncode == 0, err_b

    engine = build_engine(cache_dir=cache_dir)
    engine.analyze(generate_program(n_routines=10))
    # The singleton memo record survived both writers and is absorbable.
    assert engine.stats.counter("memo.delta_absorbed") > 0
    assert engine.stats.counter("disk.error") == 0
    engine.close()
