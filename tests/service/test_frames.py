"""v5 binary frames: codec round trips, abuse paths, negotiation.

Covers the satellite checklist end to end: length-prefixed frame
encode/decode with delta-encoded repeats, truncated frames, oversized
frames, mid-frame disconnects, and JSON↔binary negotiation (including
the fallback against a server that does not speak v5) — over both the
threaded TCP server and the asyncio fleet transport.
"""

import json
import socket
import struct
import threading

import pytest

from repro.fleet import AsyncTransport
from repro.service import PedClient, PedRequestError, PedServer, serve_tcp
from repro.service import protocol
from repro.service.protocol import (
    FrameDecoder,
    FrameEncoder,
    ProtocolError,
)

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


# ----------------------------------------------------------------------
# codec round trips
# ----------------------------------------------------------------------


def test_raw_frame_round_trip():
    enc, dec = FrameEncoder(), FrameDecoder()
    env = {"ok": True, "result": {"x": 1}}  # no id/session → unkeyed
    dec.feed(enc.encode(env, key=None))
    assert dec.next() == env
    assert dec.next() is None
    assert dec.pending() == 0


def test_keyed_stream_delta_encodes_repeats():
    """Successive envelopes of one stream shrink to their edit."""

    enc, dec = FrameEncoder(), FrameDecoder()
    rows = [f"row {i}: a(i) = a(i-1)" for i in range(200)]
    first = {"id": 1, "op": "pane", "session": "s", "rows": rows}
    frame1 = enc.encode(first, key="pane:s")
    rows2 = list(rows)
    rows2[17] = "row 17: a(i) = a(i+1)"
    second = {"id": 2, "op": "pane", "session": "s", "rows": rows2}
    frame2 = enc.encode(second, key="pane:s")
    # Baseline carries the whole body; the delta carries the edit.
    assert len(frame2) < len(frame1) / 10
    dec.feed(frame1)
    dec.feed(frame2)
    assert dec.next() == first
    assert dec.next() == second


def test_delta_falls_back_to_baseline_when_unprofitable():
    enc, dec = FrameEncoder(), FrameDecoder()
    a = {"id": 1, "op": "q", "session": "s", "v": "x" * 50}
    b = {"id": 2, "op": "q", "session": "s", "v": "y" * 50}
    dec.feed(enc.encode(a, key="k"))
    dec.feed(enc.encode(b, key="k"))  # nothing in common → baseline
    assert dec.next() == a
    assert dec.next() == b


def test_byte_split_feeding():
    """Frames reassemble regardless of how the stream fragments."""

    enc = FrameEncoder()
    envs = [
        {"id": i, "op": "loops", "session": "s", "n": i} for i in range(8)
    ]
    blob = b"".join(enc.encode(e, key="k") for e in envs)
    dec = FrameDecoder()
    out = []
    for i in range(0, len(blob), 7):
        dec.feed(blob[i : i + 7])
        while True:
            env = dec.next()
            if env is None:
                break
            out.append(env)
    assert out == envs


def test_truncated_frame_never_completes():
    enc, dec = FrameEncoder(), FrameDecoder()
    frame = enc.encode({"id": 1, "op": "ping"}, key=None)
    dec.feed(frame[: len(frame) - 3])  # disconnect mid-frame
    assert dec.next() is None
    assert dec.pending() > 0  # bytes parked, no crash, no envelope


def test_oversized_frame_is_rejected_then_skipped():
    dec = FrameDecoder(max_frame_bytes=64)
    big = b"\x00" + json.dumps({"id": 9, "op": "x", "pad": "z" * 200}).encode()
    frame = struct.pack(">I", len(big)) + big
    ok = FrameEncoder().encode({"id": 10, "op": "ping"}, key=None)
    dec.feed(frame + ok)
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.PAYLOAD_TOO_LARGE
    # The decoder skipped the oversized body; the next frame decodes.
    assert dec.next() == {"id": 10, "op": "ping"}


def test_oversized_frame_skip_spans_feeds():
    """The skip survives the oversized body arriving in later chunks."""

    dec = FrameDecoder(max_frame_bytes=64)
    body = b"\x00" + b"z" * 1000
    frame = struct.pack(">I", len(body)) + body
    dec.feed(frame[:100])
    with pytest.raises(ProtocolError):
        dec.next()
    dec.feed(frame[100:])  # rest of the bad body: swallowed
    assert dec.next() is None
    dec.feed(FrameEncoder().encode({"id": 1, "op": "ping"}, key=None))
    assert dec.next() == {"id": 1, "op": "ping"}


def test_bad_frames_raise_structured_errors():
    dec = FrameDecoder()

    def frame(payload: bytes) -> bytes:
        return struct.pack(">I", len(payload)) + payload

    dec.feed(frame(b"\x07junk"))
    with pytest.raises(ProtocolError):  # unknown kind
        dec.next()
    dec.feed(frame(b"\x00not json"))
    with pytest.raises(ProtocolError):  # bad JSON
        dec.next()
    dec.feed(frame(b"\x02" + struct.pack(">H", 1) + b"k" + b"\x00" * 8))
    with pytest.raises(ProtocolError):  # delta against unknown key
        dec.next()


def test_delta_checksum_mismatch_detected():
    enc = FrameEncoder()
    first = {"id": 1, "op": "q", "session": "s", "rows": ["a"] * 40}
    second = {"id": 2, "op": "q", "session": "s", "rows": ["a"] * 39 + ["b"]}
    f1 = enc.encode(first, key="k")
    f2 = bytearray(enc.encode(second, key="k"))
    assert f2[4] == protocol.FRAME_DELTA
    f2[8] ^= 0xFF  # corrupt the crc32
    dec = FrameDecoder()
    dec.feed(f1)
    dec.next()
    dec.feed(bytes(f2))
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert "checksum" in str(exc.value)


# ----------------------------------------------------------------------
# negotiation + end-to-end sessions, threaded and asyncio transports
# ----------------------------------------------------------------------


@pytest.fixture(params=["threaded", "asyncio"])
def server(request):
    srv = PedServer(max_workers=4)
    if request.param == "threaded":
        tcp = serve_tcp(srv)
        threading.Thread(
            target=tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        ).start()
        yield srv, tcp.server_address[1]
        tcp.shutdown()
        tcp.server_close()
    else:
        transport = AsyncTransport(srv)
        port = transport.start_background()
        yield srv, port
        transport.stop_background()
    srv.close()


def test_binary_session_end_to_end(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_frames() is True
        assert c.negotiate_frames() is True  # idempotent
        opened = c.request("open", session="s", source=SIMPLE)
        assert opened["units"] == ["p"]
        loops = c.request("loops", session="s", unit="p")["loops"]
        assert loops[0]["parallelizable"] is True
        c.request(
            "edit", session="s", start=4, end=4,
            text="         a(i) = i + 1",
        )
        loops = c.request("loops", session="s", unit="p")["loops"]
        assert loops[0]["parallelizable"] is True
        assert c.request("ping")["protocol"] == protocol.PROTOCOL_VERSION


def test_binary_streaming_events(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_frames() is True
        events = list(c.stream("open", session="s", source=SIMPLE))
        assert events[-1].kind == "result"
        kinds = {e.kind for e in events}
        assert "analysis.progress" in kinds
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)


def test_binary_saves_bytes_on_streamed_edit_session(server):
    """Acceptance criterion: a streamed edit session transfers fewer
    reply/event bytes over binary frames than over JSON lines."""

    _, port = server

    def run_session(binary: bool) -> int:
        with PedClient.connect(port=port) as c:
            if binary:
                assert c.negotiate_frames() is True
            sid = f"bin{binary}"
            c.request("open", session=sid, source=SIMPLE)
            for i in range(6):
                c.request(
                    "edit", session=sid, start=4, end=4,
                    text=f"         a(i) = i + {i}",
                )
                c.request("loops", session=sid, unit="p")
                c.request("deps", session=sid, unit="p")
            return c.bytes_received

    json_bytes = run_session(binary=False)
    bin_bytes = run_session(binary=True)
    assert bin_bytes < json_bytes, (bin_bytes, json_bytes)


def test_json_only_client_still_connects(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.request("ping")["pong"] is True
        c.request("open", session="plain", source=SIMPLE)
        assert c.request("loops", session="plain", unit="p")["loops"]


def test_json_and_binary_clients_coexist(server):
    _, port = server
    with PedClient.connect(port=port) as b, PedClient.connect(port=port) as j:
        assert b.negotiate_frames() is True
        b.request("open", session="b", source=SIMPLE)
        j.request("open", session="j", source=SIMPLE)
        assert b.request("loops", session="b", unit="p")["loops"]
        assert j.request("loops", session="j", unit="p")["loops"]


def test_bad_negotiation_mode_keeps_json(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        with pytest.raises(PedRequestError):
            c.request("frames", mode="gzip")
        # The connection stays on JSON lines and keeps working.
        assert c.request("ping")["pong"] is True


def test_mid_frame_disconnect_leaves_server_healthy(server):
    """A client that negotiates, sends half a frame and vanishes must
    not take the server (or other connections) down."""

    _, port = server
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    fh = sock.makefile("rb")
    sock.sendall(b'{"id": 1, "op": "frames", "mode": "binary"}\n')
    reply = json.loads(fh.readline())
    assert reply["ok"] is True and reply["result"]["frames"] == "binary"
    frame = FrameEncoder().encode({"id": 2, "op": "ping"}, key=None)
    sock.sendall(frame[: len(frame) // 2])
    sock.close()
    with PedClient.connect(port=port) as c:
        assert c.request("ping")["pong"] is True


def test_negotiation_falls_back_against_pre_v5_server():
    """An older server routes ``frames`` to its handler table and says
    ``unknown-op``; the client stays on JSON lines, connected."""

    def legacy(sock_server):
        conn, _ = sock_server.accept()
        rf = conn.makefile("rb")
        wf = conn.makefile("wb")
        for line in rf:
            req = json.loads(line)
            if req.get("op") == "ping":
                reply = {"id": req["id"], "ok": True,
                         "result": {"pong": True, "protocol": 4}}
            else:
                reply = {
                    "id": req["id"],
                    "ok": False,
                    "error": {
                        "type": "unknown-op",
                        "message": f"unknown op {req.get('op')!r}",
                    },
                }
            wf.write((json.dumps(reply) + "\n").encode())
            wf.flush()

    lsock = socket.create_server(("127.0.0.1", 0))
    port = lsock.getsockname()[1]
    threading.Thread(target=legacy, args=(lsock,), daemon=True).start()
    with PedClient.connect(port=port) as c:
        assert c.negotiate_frames() is False
        assert c.request("ping")["pong"] is True  # still JSON lines
    lsock.close()


def test_reply_keys_delta_pane_refreshes():
    """Replies of one (op, session) delta against each other — the
    server-side reply_delta_key path, asserted at the codec level."""

    enc, dec = FrameEncoder(), FrameDecoder()
    req = {"id": 1, "op": "loops", "session": "s"}
    key = protocol.reply_delta_key(req)
    assert key is not None
    body = {"id": 1, "ok": True, "result": {"loops": ["x"] * 60}}
    f1 = enc.encode(body, key=key)
    body2 = {"id": 2, "ok": True,
             "result": {"loops": ["x"] * 59 + ["y"]}}
    f2 = enc.encode(body2, key=key)
    assert len(f2) < len(f1) / 4
    dec.feed(f1 + f2)
    assert dec.next() == body
    assert dec.next() == body2
