"""End-to-end smoke test: a real ``python -m repro serve --stdio``
subprocess driven through the client.  This is the exact path CI's
server smoke step exercises."""

import os
import sys
from pathlib import Path

from repro.service import PedClient

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


def test_stdio_server_subprocess_round_trip(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    client = PedClient.spawn(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--stdio",
            "--cache-dir",
            str(tmp_path / "cache"),
        ],
        env=env,
    )
    try:
        assert client.request("ping", wait=60)["pong"] is True
        opened = client.request("open", session="s", source=SIMPLE, wait=60)
        assert opened["units"] == ["p"]
        loops = client.request("loops", session="s", unit="p", wait=60)
        assert loops["loops"][0]["parallelizable"] is True
        stats = client.request("stats", wait=60)
        assert "req.open" in stats["stages"]
        assert client.request("shutdown", wait=60)["shutting_down"] is True
    finally:
        client.close()
    assert client.process.returncode == 0
