"""Two ``python -m repro serve`` processes sharing one ``--cache-dir``.

The acceptance scenario of the multi-process shared store: two *real*
server processes run concurrently against the same cache directory; the
first populates it while the second absorbs the first's memo deltas
through the lease-coordinated singleton record
(``memo.delta_absorbed > 0`` in its metrics), analyses stay
fingerprint-identical across processes (and to the in-process serial
engine), and the streamed event ordering guarantees hold across the
process boundary.
"""

import os
import sys
from pathlib import Path

import pytest

from repro.incremental import AnalysisEngine
from repro.incremental.fingerprint import fingerprint_digest
from repro.service import PedClient
from repro.workloads.generator import generate_program

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")


def _spawn_server(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return PedClient.spawn(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--stdio",
            "--cache-dir",
            str(cache_dir),
        ],
        env=env,
    )


@pytest.fixture(scope="module")
def workload():
    return generate_program(n_routines=20)


def test_two_servers_share_store_and_exchange_memo_deltas(
    tmp_path, workload
):
    cache_dir = tmp_path / "cache"
    serial_digest = fingerprint_digest(
        AnalysisEngine().analyze(workload)[1]
    )

    first = _spawn_server(cache_dir)
    second = _spawn_server(cache_dir)
    try:
        assert first.request("ping", wait=60)["pong"] is True
        assert second.request("ping", wait=60)["pong"] is True

        # Process A populates the store (spans, summaries, memo record).
        first.request("open", session="a", source=workload, wait=300)
        fp_a = first.request("fingerprint", session="a", wait=60)
        metrics_a = first.request("metrics", wait=60)["metrics"]
        assert metrics_a["memo.delta_exported"] > 0

        # Process B — still running concurrently — opens the same
        # program with streaming: ordered events across the process
        # boundary, then absorbs A's memo deltas from the shared store.
        events = list(
            second.stream("open", session="b", source=workload, wait=300)
        )
        assert events[-1].kind == "result"
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert any(e.kind == "analysis.progress" for e in events)

        fp_b = second.request("fingerprint", session="b", wait=60)
        metrics_b = second.request("metrics", wait=60)["metrics"]
        assert metrics_b["memo.delta_absorbed"] > 0

        # Fingerprint parity across: serial in-process, server A,
        # server B warm off A's records.
        assert fp_a["fingerprint"] == serial_digest
        assert fp_b["fingerprint"] == serial_digest

        # The shared store really warmed B: its engine saw disk hits,
        # and no record was corrupted by the concurrent writers.
        assert metrics_b.get("disk.hit", 0) > 0
        assert metrics_b.get("disk.error", 0) == 0
        assert metrics_a.get("disk.error", 0) == 0

        assert first.request("shutdown", wait=60)["shutting_down"]
        assert second.request("shutdown", wait=60)["shutting_down"]
    finally:
        first.close()
        second.close()
    assert first.process.returncode == 0
    assert second.process.returncode == 0


def test_crossreuse_workload_across_processes(tmp_path):
    """A sibling program (half its routines shared) opened in a second
    process gets cross-program warm reuse through the shared store."""

    cache_dir = tmp_path / "cache"
    base = generate_program(n_routines=16)
    marker = "(x(i+1) - x(i-1))"
    parts = base.split("      subroutine upd")
    out = [parts[0]]
    for p in parts[1:]:
        if int(p.split("(")[0]) >= 8:
            p = p.replace(marker, "(x(i+2) - x(i-2))")
        out.append(p)
    sibling = "      subroutine upd".join(out)
    assert sibling != base

    first = _spawn_server(cache_dir)
    second = _spawn_server(cache_dir)
    try:
        first.request("open", session="base", source=base, wait=300)
        second.request("open", session="sib", source=sibling, wait=300)
        fp = second.request("fingerprint", session="sib", wait=60)
        metrics = second.request("metrics", wait=60)["metrics"]
        # Cross-process reuse: B absorbed A's memo (server-wide counter)
        # and warmed spans from the store despite a never-seen program
        # key (per-session engine counter).
        assert metrics["memo.delta_absorbed"] > 0
        assert metrics.get("disk.error", 0) == 0
        session_metrics = second.request(
            "metrics", session="sib", wait=60
        )["metrics"]
        assert session_metrics.get("disk.span_warm", 0) > 0

        scratch = fingerprint_digest(AnalysisEngine().analyze(sibling)[1])
        assert fp["fingerprint"] == scratch

        assert first.request("shutdown", wait=60)["shutting_down"]
        assert second.request("shutdown", wait=60)["shutting_down"]
    finally:
        first.close()
        second.close()
