"""Session-server protocol: concurrency, timeouts, cancellation, errors.

The server under test runs in-process over TCP on an ephemeral port;
clients are real :class:`PedClient` connections, so these tests cover
the full wire path (framing, correlation ids, out-of-order replies).
The stdio transport gets a separate subprocess smoke test.
"""

import threading
import time

import pytest

from repro.service import PedClient, PedRequestError, PedServer, serve_tcp
from repro.workloads import SUITE

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


@pytest.fixture
def server():
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield srv, tcp.server_address[1]
    tcp.shutdown()
    tcp.server_close()
    srv.close()


@pytest.fixture
def client(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        yield c


def test_ping(client):
    reply = client.request("ping")
    assert reply["pong"] is True
    assert reply["protocol"] == 7


def test_open_query_edit_lifecycle(client):
    opened = client.request("open", session="s", source=SIMPLE)
    assert opened["units"] == ["p"]
    loops = client.request("loops", session="s", unit="p")["loops"]
    assert loops[0]["parallelizable"] is True
    message = client.request(
        "edit", session="s", start=4, end=4, text="         a(i) = i + 1"
    )["message"]
    assert "replaced" in message
    assert "i + 1" in client.request("source", session="s")["source"]
    client.request("undo", session="s")
    assert "i + 1" not in client.request("source", session="s")["source"]
    assert client.request("close", session="s") == {"closed": "s"}
    assert client.request("list") == {"sessions": []}


def test_two_clients_interleave_on_different_sessions(server):
    """Requests from two clients against two sessions interleave: each
    session's operations stay serialized, the sessions themselves run
    concurrently, and every reply reaches the right client."""

    _, port = server
    with PedClient.connect(port=port) as c1, PedClient.connect(
        port=port
    ) as c2:
        c1.request("open", session="one", source=SUITE["onedim"].source)
        c2.request("open", session="two", source=SUITE["slab2d"].source)

        # Fire a batch of interleaved queries without waiting in between.
        pending = []
        for _ in range(5):
            pending.append(("one", c1.submit("loops", session="one", unit="build")))
            pending.append(("two", c2.submit("parallel_summary", session="two")))
            pending.append(("one", c1.submit("deps", session="one", unit="deposit")))
        for which, p in pending:
            result = p.result(30)
            if "loops" in result:
                assert result["unit"] == "build"
            if "units" in result:
                assert result["units"][0]["unit"]

        # Both sessions are intact and independent afterwards.
        assert c1.request("list")["sessions"] == ["one", "two"]
        one = c1.request("parallel_summary", session="one")
        two = c2.request("parallel_summary", session="two")
        assert {u["unit"] for u in one["units"]} != {
            u["unit"] for u in two["units"]
        }


def test_same_session_mutations_serialize(server):
    """Two clients hammering one session: per-session locking keeps the
    undo stack consistent (every edit fully applied then fully undone)."""

    _, port = server
    with PedClient.connect(port=port) as c1, PedClient.connect(
        port=port
    ) as c2:
        c1.request("open", session="s", source=SIMPLE)
        pending = []
        for i in range(6):
            client = c1 if i % 2 == 0 else c2
            pending.append(
                client.submit(
                    "edit",
                    session="s",
                    start=4,
                    end=4,
                    text=f"         a(i) = i + {i}",
                )
            )
        for p in pending:
            p.result(30)
        for _ in range(6):
            c1.request("undo", session="s")
        assert (
            c1.request("source", session="s")["source"].splitlines()[3]
            == "         a(i) = i"
        )


def test_request_timeout(client):
    with pytest.raises(PedRequestError) as err:
        client.request("sleep", seconds=5, timeout=0.2)
    assert err.value.type == "timeout"
    # The server is still healthy afterwards.
    assert client.request("ping")["pong"] is True


def test_cancellation_of_running_request(client):
    pending = client.submit("sleep", seconds=10)
    time.sleep(0.2)  # let it start
    pending.cancel()
    with pytest.raises(PedRequestError) as err:
        pending.result(5)
    assert err.value.type == "cancelled"


def test_structured_errors(client):
    with pytest.raises(PedRequestError) as err:
        client.request("loops", session="ghost")
    assert err.value.type == "unknown-session"

    client.request("open", session="dup", source=SIMPLE)
    with pytest.raises(PedRequestError) as err:
        client.request("open", session="dup", source=SIMPLE)
    assert err.value.type == "session-exists"

    with pytest.raises(PedRequestError) as err:
        client.request("frobnicate")
    assert err.value.type == "unknown-op"

    with pytest.raises(PedRequestError) as err:
        client.request("edit", session="dup", start=999, end=999, text="")
    assert err.value.type == "ped-error"

    # A ped-error leaves the session usable.
    assert client.request("loops", session="dup", unit="p")["loops"]


def test_bad_edit_rolls_back_session(client):
    client.request("open", session="s", source=SIMPLE)
    before = client.request("source", session="s")["source"]
    with pytest.raises(PedRequestError) as err:
        client.request(
            "edit", session="s", start=3, end=3, text="      do 10 i ="
        )
    assert err.value.type == "ped-error"
    assert "edit rejected" in err.value.message
    assert client.request("source", session="s")["source"] == before


def test_request_latency_metrics(server):
    srv, port = server
    with PedClient.connect(port=port) as c:
        c.request("ping")
        c.request("open", session="m", source=SIMPLE)
        c.request("loops", session="m", unit="p")
    snapshot = srv.stats.snapshot()
    for op in ("req.ping", "req.open", "req.loops"):
        assert op in snapshot["stages"], op
        assert snapshot["stages"][op]["runs"] >= 1
        assert snapshot["stages"][op]["seconds"] >= 0
    # Per-session engine stats are separately addressable.
    with PedClient.connect(port=port) as c:
        per_session = c.request("stats", session="m")
        assert per_session["stages"]["total"]["runs"] >= 1
