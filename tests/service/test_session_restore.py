"""Crash-safe session restore: SIGKILL a real server mid-session, start
a fresh one over the same cache dir, and get the session back.

This is the acceptance scenario for the durable journal: every
*acknowledged* mutation survives the kill (each append is flushed before
the reply leaves the server), so the restored session's analysis
fingerprint, program text and undo depth all match what the dead server
last confirmed.
"""

import os
import signal
import sys
from pathlib import Path

from repro.service import PedClient

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

SOURCE = (
    "      program main\n"
    "      real a(100), b(100)\n"
    "      call work(a, b, 100)\n"
    "      end\n"
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)


def _spawn_server(cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return PedClient.spawn(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--stdio",
            "--cache-dir",
            str(cache_dir),
        ],
        env=env,
    )


def test_sigkill_then_restore_from_journal(tmp_path):
    cache_dir = tmp_path / "cache"

    first = _spawn_server(cache_dir)
    proc = first.process
    try:
        first.request("open", session="work", source=SOURCE, wait=300)
        first.request(
            "edit",
            session="work",
            start=8,
            end=8,
            text="         a(i) = a(i) + 2.0",
            wait=60,
        )
        first.request(
            "assert", session="work", unit="work", text="n >= 1", wait=60
        )
        first.request("undo", session="work", wait=60)
        fp_before = first.request("fingerprint", session="work", wait=60)
        log_before = first.session_log("work", wait=60)
        assert log_before["origin"] == "live"
    finally:
        # No goodbye: the server dies with the session open and the
        # journal file's fd still held.
        proc.kill()  # SIGKILL
        proc.wait(timeout=10)
        try:
            first.close()
        except Exception:
            pass

    second = _spawn_server(cache_dir)
    try:
        restored = second.session_restore("work", wait=300)
        assert restored["records"] == log_before["total"]
        assert restored["fingerprint"] == fp_before["fingerprint"]
        assert restored["undo_depth"] == 1
        assert restored["redo_depth"] == 1

        # Time travel still works from the restored journal...
        replayed = second.session_replay("work", wait=300)
        assert replayed["fingerprint"] == fp_before["fingerprint"]

        # ...and so do new mutations, which keep extending the journal.
        redone = second.request("redo", session="work", wait=60)
        assert "redone" in redone["message"]
        log_after = second.session_log("work", wait=60)
        assert log_after["total"] == log_before["total"] + 1
        assert log_after["records"][-1]["op"] == "redo"
    finally:
        second.close()


def test_sigkill_mid_request_leaves_replayable_journal(tmp_path):
    """Even a kill with no quiesce leaves a loadable journal: the loader
    drops at most a truncated trailing record."""

    cache_dir = tmp_path / "cache"
    first = _spawn_server(cache_dir)
    proc = first.process
    try:
        first.request("open", session="w", source=SOURCE, wait=300)
        for i in range(3):
            first.request(
                "edit",
                session="w",
                start=8,
                end=8,
                text=f"         a(i) = a(i) + {i + 2}.0",
                wait=60,
            )
    finally:
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=10)
        try:
            first.close()
        except Exception:
            pass

    second = _spawn_server(cache_dir)
    try:
        log = second.session_log("w", wait=60)
        assert log["origin"] == "disk"
        assert [r["op"] for r in log["records"]] == ["edit"] * 3
        restored = second.session_restore("w", wait=300)
        assert restored["records"] == 3
    finally:
        second.close()
