"""Disk-cache robustness: every corruption mode degrades to a miss.

The store's contract — a cold analysis is always an acceptable outcome;
a crash or a stale result never is.  Each test plants a specific failure
(truncation, version skew, mis-filed record, garbage bytes) and checks
for a logged warning plus a clean miss, with the poisoned file removed.
"""

import logging
import pickle

import pytest

from repro.service import DiskCache, FORMAT_VERSION


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache", max_bytes=1024 * 1024)


def test_round_trip(cache):
    assert cache.put("span", "abc123", {"value": [1, 2, 3]})
    assert cache.get("span", "abc123") == {"value": [1, 2, 3]}
    assert cache.contains("span", "abc123")


def test_missing_entry_is_a_miss(cache):
    assert cache.get("span", "deadbeef") is None


def test_truncated_record_is_a_logged_miss(cache, caplog):
    cache.put("span", "abc123", {"value": "x" * 1000})
    path = cache._path("span", "abc123")
    blob = path.read_bytes()
    path.write_bytes(blob[: len(blob) // 2])
    with caplog.at_level(logging.WARNING):
        assert cache.get("span", "abc123") is None
    assert any("invalid cache entry" in r.message for r in caplog.records)
    assert not path.exists()  # poisoned file removed
    assert cache.get("span", "abc123") is None  # stays a plain miss


def test_wrong_format_version_is_a_logged_miss(cache, caplog):
    cache.put("span", "abc123", {"value": 1})
    path = cache._path("span", "abc123")
    record = pickle.loads(path.read_bytes())
    record["format"] = FORMAT_VERSION + 1
    path.write_bytes(pickle.dumps(record))
    with caplog.at_level(logging.WARNING):
        assert cache.get("span", "abc123") is None
    assert any("format version" in r.message for r in caplog.records)
    assert not path.exists()


def test_misfiled_record_is_a_logged_miss(cache, caplog):
    """A record under the wrong digest (or kind) must never be served."""

    cache.put("span", "abc123", {"value": 1})
    right = cache._path("span", "abc123")
    wrong = cache._path("span", "def456")
    wrong.parent.mkdir(parents=True, exist_ok=True)
    wrong.write_bytes(right.read_bytes())
    with caplog.at_level(logging.WARNING):
        assert cache.get("span", "def456") is None
    assert any("invalid cache entry" in r.message for r in caplog.records)
    # The correctly-filed copy still works.
    assert cache.get("span", "abc123") == {"value": 1}
    # Kind mismatch likewise reads as a miss.
    kinded = cache._path("prog", "abc123")
    kinded.parent.mkdir(parents=True, exist_ok=True)
    kinded.write_bytes(right.read_bytes())
    assert cache.get("prog", "abc123") is None


def test_garbage_bytes_are_a_logged_miss(cache, caplog):
    path = cache._path("span", "abc123")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"this is not a pickle")
    with caplog.at_level(logging.WARNING):
        assert cache.get("span", "abc123") is None
    assert any("falls back to cold" in r.message for r in caplog.records)


def test_non_record_pickle_is_a_miss(cache, caplog):
    path = cache._path("span", "abc123")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(pickle.dumps(["not", "a", "record"]))
    with caplog.at_level(logging.WARNING):
        assert cache.get("span", "abc123") is None


def test_lru_eviction_keeps_recent_entries(tmp_path):
    import os

    from repro.incremental.stats import EngineStats

    stats = EngineStats()
    payload = "x" * 4000
    cache = DiskCache(tmp_path / "c", max_bytes=10**9, stats=stats)
    for i in range(8):
        key = f"{i:02d}" + "0" * 38
        cache.put("span", key, payload)
        # mtime granularity can swallow ordering on fast filesystems;
        # force distinct, increasing timestamps.
        os.utime(cache._path("span", key), (1_000_000 + i, 1_000_000 + i))
    cache.max_bytes = 20_000
    cache._evict()
    kept = [
        i
        for i in range(8)
        if cache.contains("span", f"{i:02d}" + "0" * 38)
    ]
    assert stats.counter("disk.evict") > 0
    assert kept, "eviction must not empty the cache"
    # The survivors are exactly the most recently written entries.
    assert kept == list(range(8 - len(kept), 8))


def test_hit_refreshes_recency(tmp_path):
    import os

    cache = DiskCache(tmp_path / "c", max_bytes=14_000)
    payload = "x" * 4000
    keys = [f"{i:02d}" + "0" * 38 for i in range(3)]
    for i, key in enumerate(keys):
        cache.put("span", key, payload)
        os.utime(cache._path("span", key), (1_000_000 + i,) * 2)
    # Touch the oldest; a later eviction should spare it.
    assert cache.get("span", keys[0]) == payload
    cache.put("span", "ff" + "0" * 38, payload)
    assert cache.contains("span", keys[0])


def test_counters_feed_stats(tmp_path):
    from repro.incremental.stats import EngineStats

    stats = EngineStats()
    cache = DiskCache(tmp_path / "c", stats=stats)
    cache.put("span", "abc", 1)
    cache.get("span", "abc")
    cache.get("span", "missing")
    assert stats.counter("disk.write") == 1
    assert stats.counter("disk.hit") == 1
    assert stats.counter("disk.miss") == 1


def test_v2_format_memo_record_falls_back_cold(cache, caplog):
    """A shared-memo record written by the previous (v2) format must be
    a logged miss — not a crash, not stale memo shapes — when read by
    the current format."""

    from repro.service.persist import MEMO_KEY, MEMO_KIND, PersistentStore

    store = PersistentStore(cache)
    assert store.save_memo({("ctx", "pair"): ("verdict",)})
    path = cache._path(MEMO_KIND, MEMO_KEY)
    record = pickle.loads(path.read_bytes())
    record["format"] = FORMAT_VERSION - 1  # i.e. a leftover v2 cache
    path.write_bytes(pickle.dumps(record))

    with caplog.at_level(logging.WARNING):
        assert store.load_memo() is None  # cold, no crash
    assert any("format version" in r.message for r in caplog.records)
    assert not path.exists()  # the stale record was discarded

    # The store recovers: a fresh save round-trips under the new format.
    assert store.save_memo({("ctx", "pair"): ("verdict",)})
    assert store.load_memo() == {("ctx", "pair"): ("verdict",)}
