"""Warm-start persistence: reopened programs hit the disk cache.

Three contracts under test: a warm reopen is fingerprint-identical to a
cold analysis and runs as a pure cache walk; per-span records warm up
*partially* overlapping programs but are rejected (with a warning) when
the unit-kind map changed; and corrupting the store never breaks an
analysis — it just makes it cold again.
"""

import logging

import pytest

from repro.incremental import AnalysisEngine, program_fingerprint
from repro.service import build_engine
from repro.workloads import SUITE

SOURCE = SUITE["onedim"].source


def _engine(tmp_path):
    return build_engine(cache_dir=tmp_path / "cache")


def test_warm_reopen_is_identical_and_all_hits(tmp_path):
    ref = AnalysisEngine().analyze(SOURCE)[1]
    cold = _engine(tmp_path)
    _, pa_cold = cold.analyze(SOURCE)
    assert program_fingerprint(pa_cold) == program_fingerprint(ref)

    warm = _engine(tmp_path)
    _, pa_warm = warm.analyze(SOURCE)
    assert program_fingerprint(pa_warm) == program_fingerprint(ref)
    assert warm.stats.counter("disk.warm_start") == 1
    for stage in ("parse", "modref", "kill", "sections", "dependence"):
        assert warm.stats.stage(stage).misses == 0, stage
        assert warm.stats.stage(stage).hits > 0, stage


def test_warm_session_stays_interactive(tmp_path):
    """A warm-started engine supports the whole session lifecycle."""

    from repro.editor.session import PedSession

    cold = PedSession(SOURCE, engine=_engine(tmp_path))
    cold_fp = program_fingerprint(cold.analysis)

    warm = PedSession(SOURCE, engine=_engine(tmp_path))
    assert warm.engine.stats.counter("disk.warm_start") == 1
    assert program_fingerprint(warm.analysis) == cold_fp
    warm.edit(2, 2, "      integer i, n")
    warm.undo()
    assert program_fingerprint(warm.analysis) == cold_fp


def test_span_records_warm_partial_overlap(tmp_path):
    """An edited program reuses the untouched spans from disk."""

    cold = _engine(tmp_path)
    cold.analyze(SOURCE)

    edited = SOURCE.replace("1.0 + 0.01 * i", "1.0 + 0.02 * i")
    assert edited != SOURCE
    warm = _engine(tmp_path)
    _, pa = warm.analyze(edited)
    # Not an exact program match — no whole-program warm start ...
    assert warm.stats.counter("disk.warm_start") == 0
    # ... but every unedited span loads from its disk record: the only
    # parse-stage *work* is the edited span, and even that counts as a
    # miss while the untouched spans were disk hits.
    assert warm.stats.counter("disk.hit") > 0
    ref = AnalysisEngine().analyze(edited)[1]
    assert program_fingerprint(pa) == program_fingerprint(ref)


def test_span_records_rejected_when_unit_kinds_change(tmp_path, caplog):
    """Name resolution depends on the program's unit-kind map, so a span
    record from a program with a different map must be discarded."""

    base = (
        "      program main\n"
        "      real x(10), f\n"
        "      do i = 1, 10\n"
        "         x(i) = f(i)\n"
        "      enddo\n"
        "      end\n"
    )
    func = (
        "      function f(i)\n"
        "      f = i * 2.0\n"
        "      end\n"
    )
    cold = _engine(tmp_path)
    cold.analyze(base + func)  # f is a program unit: f(i) is a call

    warm = _engine(tmp_path)
    with caplog.at_level(logging.WARNING):
        _, pa = warm.analyze(base)  # f is gone: f(i) is an array ref
    assert warm.stats.counter("disk.span_rejected") > 0
    assert any(
        "different unit-kind map" in r.message for r in caplog.records
    )
    ref = AnalysisEngine().analyze(base)[1]
    assert program_fingerprint(pa) == program_fingerprint(ref)


def test_corrupt_store_degrades_to_cold(tmp_path, caplog):
    cold = _engine(tmp_path)
    cold.analyze(SOURCE)
    # Trash every record on disk.
    for path in (tmp_path / "cache").rglob("*.pkl"):
        path.write_bytes(b"garbage")
    warm = _engine(tmp_path)
    with caplog.at_level(logging.WARNING):
        _, pa = warm.analyze(SOURCE)
    assert warm.stats.counter("disk.warm_start") == 0
    assert warm.stats.counter("disk.error") > 0
    ref = AnalysisEngine().analyze(SOURCE)[1]
    assert program_fingerprint(pa) == program_fingerprint(ref)


def test_assertions_enter_the_program_key(tmp_path):
    """Same source, different assertions: no false warm start."""

    cold = _engine(tmp_path)
    cold.analyze(SOURCE)
    warm = _engine(tmp_path)
    _, pa = warm.analyze(SOURCE, assertions={"deposit": ["n >= 1"]})
    assert warm.stats.counter("disk.warm_start") == 0
    ref = AnalysisEngine().analyze(
        SOURCE, assertions={"deposit": ["n >= 1"]}
    )[1]
    assert program_fingerprint(pa) == program_fingerprint(ref)


def test_features_enter_the_program_key(tmp_path):
    from repro.interproc.program import FeatureSet

    cold = _engine(tmp_path)
    cold.analyze(SOURCE)
    warm = build_engine(
        features=FeatureSet.minimal(), cache_dir=tmp_path / "cache"
    )
    _, pa = warm.analyze(SOURCE)
    assert warm.stats.counter("disk.warm_start") == 0
    ref = AnalysisEngine(features=FeatureSet.minimal()).analyze(SOURCE)[1]
    assert program_fingerprint(pa) == program_fingerprint(ref)


def test_parallel_and_persistent_compose(tmp_path):
    """jobs=2 plus a store: still fingerprint-identical, still warm."""

    cold = build_engine(jobs=2, cache_dir=tmp_path / "cache")
    try:
        _, pa_cold = cold.analyze(SOURCE)
    finally:
        cold.close()
    warm = build_engine(jobs=2, cache_dir=tmp_path / "cache")
    try:
        _, pa_warm = warm.analyze(SOURCE)
    finally:
        warm.close()
    assert warm.stats.counter("disk.warm_start") == 1
    ref = AnalysisEngine().analyze(SOURCE)[1]
    assert program_fingerprint(pa_cold) == program_fingerprint(ref)
    assert program_fingerprint(pa_warm) == program_fingerprint(ref)
