"""Client connect retry: bounded backoff, typed failure, late servers.

Satellite behavior: :meth:`PedClient.connect` retries transient
connection failures with exponential backoff + jitter, raises the typed
:class:`ServerUnavailableError` (never a raw ``OSError``) when the
budget is exhausted, and stays fail-fast by default so tests and
interactive tools never sit in a retry loop they didn't ask for.
"""

import socket
import threading
import time

import pytest

from repro.fleet import AsyncTransport
from repro.service import (
    PedClient,
    PedRequestError,
    PedServer,
    ServerUnavailableError,
)


def _free_port() -> int:
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


def test_default_is_fail_fast():
    port = _free_port()  # nothing listening
    start = time.monotonic()
    with pytest.raises(ServerUnavailableError) as err:
        PedClient.connect(port=port)
    assert time.monotonic() - start < 2.0
    assert err.value.attempts == 1
    assert err.value.type == "connection"
    assert str(port) in err.value.message


def test_retry_budget_is_bounded_and_typed():
    port = _free_port()
    start = time.monotonic()
    with pytest.raises(ServerUnavailableError) as err:
        PedClient.connect(port=port, retries=2, backoff=0.01, jitter=0.0)
    elapsed = time.monotonic() - start
    assert err.value.attempts == 3
    # 0.01 + 0.02 of backoff plus connect overhead; bounded, not a hang.
    assert elapsed < 5.0
    assert isinstance(err.value, PedRequestError)


def test_retry_wins_when_server_arrives_late():
    """A server that comes up between attempts gets the connection —
    the fleet-restart scenario the router leans on."""

    srv = PedServer(max_workers=2)
    transport = AsyncTransport(srv)
    port = _free_port()
    transport.port = port

    def come_up_late():
        time.sleep(0.3)
        transport.start_background()

    starter = threading.Thread(target=come_up_late)
    starter.start()
    try:
        client = PedClient.connect(
            port=port, retries=8, backoff=0.1, jitter=0.1
        )
        with client:
            assert client.request("ping", wait=30)["pong"] is True
    finally:
        starter.join()
        transport.stop_background()
        srv.close()


def test_send_failure_raises_typed_error():
    """A submit on a connection whose server vanished surfaces as
    ``connection``-typed errors, not raw socket exceptions."""

    srv = PedServer(max_workers=2)
    transport = AsyncTransport(srv)
    port = transport.start_background()
    client = PedClient.connect(port=port)
    assert client.request("ping", wait=30)["pong"] is True
    transport.stop_background()
    srv.close()
    time.sleep(0.1)
    with pytest.raises(PedRequestError) as err:
        # The first sends may land in kernel buffers; keep writing
        # until the broken pipe surfaces (typed, never a raw OSError).
        for _ in range(100):
            client.submit("ping")
            time.sleep(0.02)
    assert err.value.type == "connection"
    assert isinstance(err.value, ServerUnavailableError)
    client.close()
