"""Corpus batch and pipeline-graph ops over the real wire.

Server in-process on an ephemeral TCP port, real :class:`PedClient`
connections — the same rig as ``test_server.py`` — exercising the v3
ops: ``corpus.submit`` (sync + streamed + background), ``corpus.status``,
``corpus.query`` (cached aggregates), ``graph.describe`` /
``graph.last`` / ``graph.plan``, and the typed
:class:`UnsupportedOpError` the client raises for ``unknown-op``.
"""

import threading
import time

import pytest

from repro.service import (
    PedClient,
    PedRequestError,
    PedServer,
    UnsupportedOpError,
    serve_tcp,
)
from repro.workloads.generator import generate_program

PROGRAMS = [
    {
        "name": f"p{i}",
        "source": generate_program(
            n_routines=2, n_fields=2, grid=8, steps=2 + i
        ),
    }
    for i in range(3)
]

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


@pytest.fixture
def server():
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield srv, tcp.server_address[1]
    tcp.shutdown()
    tcp.server_close()
    srv.close()


@pytest.fixture
def client(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        yield c


def test_submit_wait_runs_whole_batch(client):
    # NB: the raw ``wait`` field must go through corpus_submit (or
    # submit()): request()'s own ``wait`` kwarg is the client timeout.
    result = client.corpus_submit(
        [(p["name"], p["source"]) for p in PROGRAMS], job="j1", wait=True
    )
    assert result["job"] == "j1"
    assert result["complete"] is True
    assert result["done"] == result["total"] == len(PROGRAMS)
    assert result["errors"] == 0


def test_streaming_submit_emits_one_event_per_program(client):
    events = []
    result = None
    for ev in client.stream(
        "corpus.submit", programs=PROGRAMS, job="j2", wait=120.0
    ):
        if ev.kind == "result":
            result = ev.data
        else:
            events.append(ev)
    assert result["complete"] is True
    progress = [
        e for e in events if e.data.get("phase") == "corpus.program"
    ]
    assert [e.data["program"] for e in progress] == [
        p["name"] for p in PROGRAMS
    ]
    assert [e.data["done"] for e in progress] == [1, 2, 3]
    # Protocol ordering: all events precede the terminal reply.
    seqs = [e.seq for e in progress]
    assert seqs == sorted(seqs)


def test_background_submit_then_status_polls_to_done(client):
    result = client.request("corpus.submit", programs=PROGRAMS, job="j3")
    assert result["started"] is True
    deadline = time.monotonic() + 120
    while time.monotonic() < deadline:
        status = client.request("corpus.status", job="j3")
        if status["complete"]:
            break
        time.sleep(0.1)
    assert status["complete"] is True
    assert status["errors"] == 0


def test_query_aggregates_and_caching(client):
    client.corpus_submit(
        {p["name"]: p["source"] for p in PROGRAMS}, job="j4", wait=True
    )
    first = client.corpus_query("j4", "obstacles")
    again = client.corpus_query("j4", "obstacles")
    assert first["cached"] is False
    assert again["cached"] is True
    assert first["value"] == again["value"]
    assert first["complete"] is True
    summary = client.corpus_query("j4", "summary")["value"]
    assert summary["programs"] == len(PROGRAMS)
    assert summary["loops"] > 0
    tiers = client.corpus_query("j4", "tiers")["value"]
    assert sum(tiers["tiers"].values()) == tiers["pairs"]


def test_extending_a_job_invalidates_cached_aggregates(client):
    pairs = [(p["name"], p["source"]) for p in PROGRAMS]
    client.corpus_submit(pairs[:2], job="j5", wait=True)
    assert client.corpus_query("j5", "summary")["cached"] is False
    client.corpus_submit(pairs[2:], job="j5", wait=True)
    fresh = client.corpus_query("j5", "summary")
    assert fresh["cached"] is False
    assert fresh["value"]["programs"] == len(PROGRAMS)


def test_corpus_errors_are_bad_request(client):
    with pytest.raises(PedRequestError) as err:
        client.request("corpus.status", job="nope")
    assert err.value.type == "bad-request"
    client.corpus_submit(
        [(p["name"], p["source"]) for p in PROGRAMS[:1]],
        job="j6",
        wait=True,
    )
    with pytest.raises(PedRequestError, match="unknown aggregate"):
        client.request("corpus.query", job="j6", aggregate="nope")


def test_unknown_op_raises_typed_error(client):
    with pytest.raises(UnsupportedOpError) as err:
        client.request("corpus.frobnicate", job="x")
    assert err.value.op == "corpus.frobnicate"
    assert err.value.type == "unknown-op"
    assert isinstance(err.value, PedRequestError)


def test_graph_describe(client):
    result = client.request("graph.describe")
    assert result["graph"]["schedule"] == [
        "split",
        "parse",
        "callgraph",
        "modref",
        "kill",
        "sections",
        "ipconst",
        "dependence",
    ]
    assert {n["name"] for n in result["aggregates"]} == {
        "agg.summary",
        "agg.obstacles",
        "agg.tiers",
        "agg.transforms",
    }


def test_graph_last_shows_dependence_entry_after_assert(client):
    client.request("open", session="s", source=SIMPLE)
    assert client.request("graph.last", session="s")["entry"] == "split"
    client.request("assert", session="s", unit="p", text="i >= 1")
    report = client.request("graph.last", session="s")
    assert report["entry"] == "dependence"
    states = {r["node"]: r["state"] for r in report["nodes"]}
    assert states["parse"] == "hit"
    assert states["dependence"] == "recomputed"


def test_graph_plan(client):
    client.request("open", session="s2", source=SIMPLE)
    plan = client.request(
        "graph.plan", session="s2", changed=["assertions"]
    )
    assert plan == {"entry": "dependence", "invalidated": ["dependence"]}
    with pytest.raises(PedRequestError) as err:
        client.request("graph.plan", session="s2", changed=["nope"])
    assert err.value.type == "bad-request"
