"""Durable journal files: header stamping, crash-tolerant loads, and the
stats plumbing the ``journal.*`` metrics feed on.
"""

import json

import pytest

from repro.incremental.engine import EngineStats
from repro.service.persist import (
    JOURNAL_FORMAT_VERSION,
    JOURNAL_MAGIC,
    JournalFile,
    PersistentStore,
)


@pytest.fixture
def jfile(tmp_path):
    return JournalFile(tmp_path / "sess.jsonl", "demo", stats=EngineStats())


def _records(jfile, n=3):
    jfile.reset("      program p\n      end\n")
    for i in range(n):
        jfile.append({"op": "select", "args": {"loop": i}})
    jfile.close()


def test_reset_append_load_round_trip(jfile):
    _records(jfile)
    wire = jfile.load()
    assert wire is not None
    assert wire["base"] == "      program p\n      end\n"
    assert [r["args"]["loop"] for r in wire["records"]] == [0, 1, 2]
    assert wire["version"] == 1


def test_header_carries_format_stamp(jfile):
    _records(jfile, n=0)
    header = json.loads(jfile.path.read_text().splitlines()[0])
    assert header["magic"] == JOURNAL_MAGIC
    assert header["format"] == JOURNAL_FORMAT_VERSION
    assert header["session"] == "demo"


def test_reset_truncates_previous_history(jfile):
    _records(jfile, n=3)
    jfile.reset("      program q\n      end\n")
    jfile.close()
    wire = jfile.load()
    assert wire["records"] == []
    assert "program q" in wire["base"]


def test_open_append_keeps_existing_records(jfile):
    _records(jfile, n=2)
    jfile.open_append()
    jfile.append({"op": "undo", "args": {}})
    jfile.close()
    wire = jfile.load()
    assert [r["op"] for r in wire["records"]] == ["select", "select", "undo"]


def test_missing_file_loads_none(tmp_path):
    assert JournalFile(tmp_path / "nope.jsonl", "demo").load() is None


def test_truncated_tail_is_dropped_rest_kept(jfile):
    _records(jfile, n=3)
    # Simulate a SIGKILL mid-append: a half-written final line.
    with open(jfile.path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "undo", "ar')
    wire = jfile.load()
    assert wire is not None
    assert len(wire["records"]) == 3


def test_corrupt_header_falls_back_cold(jfile):
    _records(jfile)
    lines = jfile.path.read_text().splitlines()
    lines[0] = '{"magic": "not-a-journal"}'
    jfile.path.write_text("\n".join(lines) + "\n")
    assert jfile.load() is None


def test_format_version_mismatch_falls_back_cold(jfile):
    _records(jfile)
    lines = jfile.path.read_text().splitlines()
    header = json.loads(lines[0])
    header["format"] = JOURNAL_FORMAT_VERSION + 1
    lines[0] = json.dumps(header)
    jfile.path.write_text("\n".join(lines) + "\n")
    assert jfile.load() is None


def test_corrupt_mid_file_falls_back_cold(jfile):
    _records(jfile, n=3)
    lines = jfile.path.read_text().splitlines()
    lines[2] = "garbage not json"
    jfile.path.write_text("\n".join(lines) + "\n")
    assert jfile.load() is None


def test_empty_file_falls_back_cold(jfile):
    jfile.path.write_text("")
    assert jfile.load() is None


def test_append_bumps_journal_counters(jfile):
    _records(jfile, n=2)
    counters = jfile.stats.counters
    assert counters["journal.records"] == 2
    assert counters["journal.bytes"] > 0


def test_store_names_journals_by_session_digest(tmp_path):
    store = PersistentStore.at(tmp_path, stats=EngineStats())
    a = store.journal("alpha")
    b = store.journal("weird name / with: stuff")
    assert a.path != b.path
    assert a.path.parent == b.path.parent == store.cache.root / "journal"
    assert a.path.suffix == ".jsonl"
    # Same name always maps to the same file (restore finds it).
    assert store.journal("alpha").path == a.path
    b.reset("x\n")
    b.close()
    assert store.journal("weird name / with: stuff").load() is not None
