"""v6 adaptive compression + coalescing: codec, abuse paths, ladder.

Hostile-input coverage for the two new frame kinds (compressed,
multi-record), the adaptive ship-raw guards, the ``frames`` ->
``compress`` negotiation ladder on both transports, and the invisibility
bar: a compressed connection sees the identical event sequence and
fingerprint a raw JSON connection sees — serially and with ``jobs=2``.
"""

import json
import struct
import threading
import zlib

import pytest

from repro.fleet import AsyncTransport
from repro.service import PedClient, PedRequestError, PedServer, serve_tcp
from repro.service import protocol
from repro.service.protocol import (
    FrameDecoder,
    FrameEncoder,
    ProtocolError,
)

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


def _z(payload: bytes, zdict=None) -> bytes:
    co = zlib.compressobj(zdict=zdict) if zdict else zlib.compressobj()
    return co.compress(payload) + co.flush()


def _compressed_frame(inner: bytes, dict_key: bytes = b"") -> bytes:
    payload = (
        bytes([protocol.FRAME_COMPRESSED])
        + struct.pack(">H", len(dict_key))
        + dict_key
        + _z(inner)
    )
    return struct.pack(">I", len(payload)) + payload


def _multi_frame(subs) -> bytes:
    payload = bytearray([protocol.FRAME_MULTI])
    for sub in subs:
        payload += struct.pack(">I", len(sub)) + sub
    return struct.pack(">I", len(payload)) + bytes(payload)


def _compressing_encoder() -> FrameEncoder:
    enc = FrameEncoder()
    enc.compress = True
    return enc


# ----------------------------------------------------------------------
# codec round trips and adaptive guards
# ----------------------------------------------------------------------


def test_compressed_frame_round_trip_and_savings():
    enc, dec = _compressing_encoder(), FrameDecoder()
    env = {"id": 1, "op": "pane", "rows": ["a(i) = a(i-1)"] * 80}
    plain_len = len(FrameEncoder().encode(env, key=None))
    frame = enc.encode(env, key=None)
    assert frame[4] == protocol.FRAME_COMPRESSED
    assert len(frame) < plain_len / 2
    dec.feed(frame)
    assert dec.next() == env


def test_small_frames_ship_raw():
    """Below COMPRESS_MIN_BYTES the kind bit says raw — no guessing."""

    enc = _compressing_encoder()
    frame = enc.encode({"id": 1, "op": "ping"}, key=None)
    assert frame[4] == protocol.FRAME_RAW
    dec = FrameDecoder()
    dec.feed(frame)
    assert dec.next() == {"id": 1, "op": "ping"}


def test_trial_ratio_guard_ships_plain(monkeypatch):
    """When trial compression can't beat the ratio bar, the plain v5
    payload ships (kind bit intact), and still decodes."""

    monkeypatch.setattr(protocol, "COMPRESS_MAX_RATIO", 0.0)
    enc, dec = _compressing_encoder(), FrameDecoder()
    env = {"id": 1, "op": "pane", "rows": ["r"] * 300}
    frame = enc.encode(env, key=None)
    assert frame[4] == protocol.FRAME_RAW
    dec.feed(frame)
    assert dec.next() == env
    assert enc.frames_compressed == 0


def test_dictionary_seeded_from_delta_baseline():
    """The second keyed frame deflates against the first one's body —
    repeats across frames shrink like v5 deltas, but compressed."""

    enc, dec = _compressing_encoder(), FrameDecoder()
    rows = [f"row {i}: a(i) = a(i-1)" for i in range(120)]
    first = {"id": 1, "op": "pane", "session": "s", "rows": rows}
    second = {"id": 2, "op": "pane", "session": "s", "rows": rows[:-1] + ["x"]}
    f1 = enc.encode(first, key="pane:s")
    f2 = enc.encode(second, key="pane:s")
    assert len(f2) < len(f1) / 2  # dictionary hit
    dec.feed(f1 + f2)
    assert dec.next() == first
    assert dec.next() == second


def test_multi_frame_round_trip_batch():
    enc, dec = _compressing_encoder(), FrameDecoder()
    envs = [
        {"id": 1, "event": "analysis.progress", "seq": i, "data": {"n": i}}
        for i in range(10)
    ]
    frame = enc.encode_multi([dict(e) for e in envs])
    assert frame[4] in (protocol.FRAME_MULTI, protocol.FRAME_COMPRESSED)
    dec.feed(frame)
    batch = dec.next_batch()
    assert batch == envs
    assert dec.next() is None
    assert enc.coalesced_events == len(envs)


def test_multi_frame_byte_at_a_time():
    enc = _compressing_encoder()
    envs = [
        {"id": 1, "event": "analysis.progress", "seq": i, "data": {"n": i}}
        for i in range(8)
    ]
    blob = enc.encode_multi([dict(e) for e in envs]) + enc.encode(
        {"id": 1, "ok": True, "result": {}}, key=None
    )
    dec = FrameDecoder()
    out = []
    for i in range(len(blob)):
        dec.feed(blob[i : i + 1])
        while True:
            env = dec.next()
            if env is None:
                break
            out.append(env)
    assert out == envs + [{"id": 1, "ok": True, "result": {}}]


def test_compressed_frame_byte_at_a_time():
    enc = _compressing_encoder()
    env = {"id": 3, "op": "pane", "rows": ["same line"] * 90}
    blob = enc.encode(env, key="k")
    dec = FrameDecoder()
    out = []
    for i in range(len(blob)):
        dec.feed(blob[i : i + 1])
        env2 = dec.next()
        if env2 is not None:
            out.append(env2)
    assert out == [env]


# ----------------------------------------------------------------------
# hostile inputs
# ----------------------------------------------------------------------


def test_truncated_compressed_blob_rejected():
    inner = b"\x00" + json.dumps({"id": 1, "op": "x", "p": "y" * 300}).encode()
    good = _compressed_frame(inner)
    payload = good[4:-4]  # chop the deflate tail, keep framing valid
    bad = struct.pack(">I", len(payload)) + payload
    dec = FrameDecoder()
    dec.feed(bad)
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.BAD_REQUEST
    # The stream recovers: a later good frame decodes.
    dec.feed(FrameEncoder().encode({"id": 2, "op": "ping"}, key=None))
    assert dec.next() == {"id": 2, "op": "ping"}


def test_unknown_dictionary_id_rejected():
    inner = b"\x00" + json.dumps({"id": 1, "op": "x"}).encode()
    payload = (
        bytes([protocol.FRAME_COMPRESSED])
        + struct.pack(">H", 6)
        + b"ghost!"
        + _z(inner)
    )
    dec = FrameDecoder()
    dec.feed(struct.pack(">I", len(payload)) + payload)
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.BAD_REQUEST
    assert "dictionary" in str(exc.value)


def test_compressed_zip_bomb_capped():
    inner = b"\x00" + json.dumps({"id": 1, "pad": "z" * 100_000}).encode()
    frame = _compressed_frame(inner)
    assert len(frame) < 4096  # the bomb is small on the wire
    dec = FrameDecoder(max_frame_bytes=4096)
    dec.feed(frame)
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.PAYLOAD_TOO_LARGE


def test_nested_compressed_in_compressed_rejected():
    inner = _compressed_frame(b"\x00" + b"{}")[4:]  # kind-3 payload
    dec = FrameDecoder()
    dec.feed(_compressed_frame(inner))
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.BAD_REQUEST


def test_nested_multi_in_multi_rejected():
    sub = _multi_frame([b"\x00" + b"{}"])[4:]  # kind-4 payload
    dec = FrameDecoder()
    dec.feed(_multi_frame([sub]))
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.BAD_REQUEST


def test_empty_multi_frame_rejected():
    dec = FrameDecoder()
    dec.feed(_multi_frame([]))
    with pytest.raises(ProtocolError) as exc:
        dec.next()
    assert exc.value.type == protocol.BAD_REQUEST


def test_oversize_skip_spans_a_compressed_frame():
    """An oversized frame is skipped even when the *next* frame in the
    pipe is compressed — the skip is byte-counted, not kind-aware."""

    dec = FrameDecoder(max_frame_bytes=512)
    big = b"\x00" + json.dumps({"id": 9, "pad": "z" * 2000}).encode()
    oversized = struct.pack(">I", len(big)) + big
    enc = _compressing_encoder()
    good = enc.encode({"id": 10, "op": "pane", "rows": ["row"] * 60}, key=None)
    assert good[4] == protocol.FRAME_COMPRESSED
    blob = oversized + good
    # Feed in chunks so the skip must span feeds mid-compressed-frame.
    dec.feed(blob[:80])
    with pytest.raises(ProtocolError):
        dec.next()
    dec.feed(blob[80:])
    decoded = []
    while True:
        env = dec.next()
        if env is None:
            break
        decoded.append(env)
    assert decoded and decoded[-1]["id"] == 10


# ----------------------------------------------------------------------
# negotiation ladder + end-to-end invisibility, both transports
# ----------------------------------------------------------------------


@pytest.fixture(params=["threaded", "asyncio"])
def server(request):
    srv = PedServer(max_workers=4)
    if request.param == "threaded":
        tcp = serve_tcp(srv)
        threading.Thread(
            target=tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        ).start()
        yield srv, tcp.server_address[1]
        tcp.shutdown()
        tcp.server_close()
    else:
        transport = AsyncTransport(srv)
        port = transport.start_background()
        yield srv, port
        transport.stop_background()
    srv.close()


def test_compress_requires_frames_first(server):
    """The ladder is strict: ``compress`` on a JSON connection is a
    structured bad-request, and the connection stays usable."""

    _, port = server
    with PedClient.connect(port=port) as c:
        with pytest.raises(PedRequestError) as exc:
            c.request(protocol.COMPRESS_OP, mode="zlib")
        assert exc.value.type == protocol.BAD_REQUEST
        assert c.request("ping")["pong"] is True


def test_unknown_compression_mode_rejected(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_frames() is True
        with pytest.raises(PedRequestError) as exc:
            c.request(protocol.COMPRESS_OP, mode="lz4")
        assert exc.value.type == protocol.BAD_REQUEST
        assert c.request("ping")["pong"] is True


def test_negotiate_compression_idempotent(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_compression() is True
        assert c.negotiate_compression() is True
        opened = c.request("open", session="s", source=SIMPLE)
        assert opened["units"] == ["p"]


def test_compressed_session_parity(server):
    """Identical event sequences and fingerprints, raw vs compressed."""

    _, port = server

    def run(mode: str):
        events = []
        with PedClient.connect(port=port) as c:
            if mode == "compress":
                assert c.negotiate_compression() is True
            sid = f"par-{mode}"
            for ev in c.stream("open", session=sid, source=SIMPLE):
                if ev.kind != "result":
                    events.append(
                        (ev.kind, json.dumps(ev.data, sort_keys=True))
                    )
            for i in range(4):
                for ev in c.stream(
                    "edit", session=sid, start=4, end=4,
                    text=f"         a(i) = i + {i}",
                ):
                    if ev.kind != "result":
                        events.append(
                            (ev.kind, json.dumps(ev.data, sort_keys=True))
                        )
            fp = c.request("fingerprint", session=sid)
        return events, fp

    raw_events, raw_fp = run("json")
    z_events, z_fp = run("compress")
    assert z_events == raw_events
    assert z_fp == raw_fp


def test_compressed_stream_ordering(server):
    """Coalescing preserves order: seqs strictly increase and every
    event precedes the terminal reply's seq."""

    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_compression() is True
        events = list(c.stream("open", session="ord", source=SIMPLE))
    assert events[-1].kind == "result"
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert all(s < events[-1].seq for s in seqs[:-1])


def test_parity_with_parallel_jobs():
    """A jobs=2 server coalesces the same stream a serial one does."""

    def run(jobs: int):
        srv = PedServer(jobs=jobs, max_workers=4)
        tcp = serve_tcp(srv)
        threading.Thread(
            target=tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        ).start()
        try:
            with PedClient.connect(port=tcp.server_address[1]) as c:
                assert c.negotiate_compression() is True
                events = [
                    (ev.kind, json.dumps(ev.data, sort_keys=True))
                    for ev in c.stream("open", session="j", source=SIMPLE)
                    if ev.kind != "result"
                ]
                fp = c.request("fingerprint", session="j")
            return sorted(events), fp
        finally:
            tcp.shutdown()
            tcp.server_close()
            srv.close()

    serial_events, serial_fp = run(1)
    par_events, par_fp = run(2)
    assert par_fp == serial_fp
    assert par_events == serial_events


def test_net_counters_surface_in_metrics(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        assert c.negotiate_compression() is True
        c.request("open", session="m", source=SIMPLE)
        metrics = c.request("metrics", session="m")["metrics"]
    assert metrics["net.bytes_in"] > 0
    assert metrics["net.bytes_out"] > 0
    assert metrics["net.bytes_out_raw"] >= metrics["net.bytes_out"]
    assert 0 < metrics["net.compress_ratio"] <= 1.0
    assert "net.flushes" in metrics and metrics["net.flushes"] > 0
