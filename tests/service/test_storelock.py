"""Store leases: mutual exclusion, stale takeover, crash recovery.

Exercises the full lease state machine of
:mod:`repro.service.storelock` — free → held → stale — including the
crashed-holder path (an expired lease is taken over with a logged
warning, never a crash) and corrupt-record handling.
"""

import json
import os
import threading
import time

from repro.incremental.stats import EngineStats
from repro.service import DiskCache, StoreLease


def test_acquire_release_roundtrip(tmp_path):
    lease = StoreLease(tmp_path / "x.lease", holder="a")
    assert lease.acquire(timeout=1.0)
    assert lease.held
    assert (tmp_path / "x.lease").exists()
    lease.release()
    assert not lease.held
    assert not (tmp_path / "x.lease").exists()


def test_second_holder_waits_then_wins(tmp_path):
    path = tmp_path / "x.lease"
    first = StoreLease(path, holder="first")
    second = StoreLease(path, holder="second")
    assert first.acquire(timeout=1.0)
    won = []

    def contender():
        won.append(second.acquire(timeout=5.0))

    t = threading.Thread(target=contender)
    t.start()
    time.sleep(0.1)
    assert not won  # still blocked on the held lease
    first.release()
    t.join(timeout=5.0)
    assert won == [True]
    second.release()


def test_timeout_returns_false_and_counts(tmp_path):
    stats = EngineStats()
    path = tmp_path / "x.lease"
    first = StoreLease(path, holder="first", stats=stats)
    second = StoreLease(path, holder="second", stats=stats)
    assert first.acquire(timeout=1.0)
    assert second.acquire(timeout=0.1) is False
    assert stats.counter("lease.timeout") == 1
    assert stats.counter("lease.acquired") == 1
    first.release()


def test_stale_lease_is_taken_over(tmp_path, caplog):
    """A holder that died past its TTL is recovered from, with a logged
    warning — the crashed-holder requirement."""

    stats = EngineStats()
    path = tmp_path / "x.lease"
    # Simulate a crashed holder: a lease record whose expiry passed.
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(
        json.dumps(
            {"holder": "dead", "pid": 99999, "expires": time.time() - 5}
        ).encode()
    )
    lease = StoreLease(path, holder="alive", ttl=0.5, stats=stats)
    with caplog.at_level("WARNING"):
        assert lease.acquire(timeout=2.0)
    assert stats.counter("lease.takeover") == 1
    assert any("taking over lease" in r.message for r in caplog.records)
    lease.release()


def test_own_orphan_lease_taken_over_despite_live_ttl(tmp_path, caplog):
    """A lease carrying *our own* holder token but an unexpired TTL: a
    previous incarnation of this process orphaned it (the lease is not
    reentrant, so a live self-wait is impossible).  Holder-token
    comparison recovers it immediately; waiting out the TTL — or a
    pid-liveness check, since the pid is ours and very much alive —
    would stall every restart."""

    stats = EngineStats()
    path = tmp_path / "x.lease"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(
        json.dumps(
            {
                "holder": "me",
                "pid": os.getpid(),
                "expires": time.time() + 3600,
            }
        ).encode()
    )
    lease = StoreLease(path, holder="me", stats=stats)
    with caplog.at_level("WARNING"):
        start = time.monotonic()
        assert lease.acquire(timeout=30.0)
    assert time.monotonic() - start < 5.0, "takeover must not wait a TTL"
    assert stats.counter("lease.takeover") == 1
    assert any(
        "previous incarnation" in r.message for r in caplog.records
    )
    lease.release()


def test_same_pid_different_holder_is_respected(tmp_path):
    """The converse guard: a record with *our pid* but someone else's
    holder token (another thread of this process, or a pid-reusing
    sibling on another host) is legitimately held — pid alone proves
    nothing either way."""

    stats = EngineStats()
    path = tmp_path / "x.lease"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(
        json.dumps(
            {
                "holder": "someone-else",
                "pid": os.getpid(),
                "expires": time.time() + 3600,
            }
        ).encode()
    )
    lease = StoreLease(path, holder="me", stats=stats)
    assert lease.acquire(timeout=0.2) is False
    assert stats.counter("lease.takeover") == 0
    assert stats.counter("lease.timeout") == 1


def test_corrupt_record_treated_as_stale(tmp_path):
    path = tmp_path / "x.lease"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_bytes(b"\x00garbage not json\xff")
    lease = StoreLease(path, holder="alive", stats=EngineStats())
    assert lease.acquire(timeout=2.0)
    lease.release()


def test_renew_extends_only_unexpired_holder(tmp_path):
    path = tmp_path / "x.lease"
    lease = StoreLease(path, holder="a", ttl=5.0)
    assert lease.acquire(timeout=1.0)
    assert lease.renew()
    lease.release()
    # Not held: renew must refuse.
    assert lease.renew() is False


def test_expired_lease_cannot_renew(tmp_path):
    path = tmp_path / "x.lease"
    lease = StoreLease(path, holder="a", ttl=0.05)
    assert lease.acquire(timeout=1.0)
    time.sleep(0.1)  # let the TTL lapse
    assert lease.renew() is False
    assert not lease.held


def test_release_respects_takeover(tmp_path):
    """A holder whose lease was taken over must not unlink the new
    holder's record on release."""

    path = tmp_path / "x.lease"
    old = StoreLease(path, holder="old", ttl=0.05)
    assert old.acquire(timeout=1.0)
    time.sleep(0.1)
    new = StoreLease(path, holder="new", ttl=5.0)
    assert new.acquire(timeout=2.0)
    old.release()  # too late: the record belongs to "new" now
    assert path.exists()
    rec = json.loads(path.read_bytes())
    assert rec["holder"] == "new"
    new.release()


def test_context_manager(tmp_path):
    path = tmp_path / "x.lease"
    with StoreLease(path, holder="a") as lease:
        assert lease.held
    assert not path.exists()


def test_diskcache_lease_lives_outside_pkl_namespace(tmp_path):
    """Lease files sit under <root>/locks/ where the LRU eviction
    (which only walks .pkl files) can never reap them."""

    stats = EngineStats()
    cache = DiskCache(tmp_path, stats=stats)
    lease = cache.lease("memo", holder="h")
    assert lease.acquire(timeout=1.0)
    assert (tmp_path / "locks" / "memo.lease").exists()
    assert stats.counter("lease.acquired") == 1
    lease.release()


def test_threaded_mutual_exclusion(tmp_path):
    """N threads hammering one lease: the guarded counter never tears."""

    path = tmp_path / "x.lease"
    state = {"inside": 0, "max_inside": 0, "done": 0}
    guard = threading.Lock()

    def worker(i):
        lease = StoreLease(path, holder=f"w{i}", ttl=5.0)
        for _ in range(5):
            assert lease.acquire(timeout=30.0)
            with guard:
                state["inside"] += 1
                state["max_inside"] = max(
                    state["max_inside"], state["inside"]
                )
            time.sleep(0.002)
            with guard:
                state["inside"] -= 1
            lease.release()
        with guard:
            state["done"] += 1

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert state["done"] == 4
    assert state["max_inside"] == 1
