"""Streaming protocol: progress events, seq ordering, invalidation
broadcasts, metrics, and cross-mode fingerprint parity.

The headline acceptance tests of the event-driven service core:

* a streaming ``open`` of a 40-routine workload observes at least one
  ``analysis.progress`` event *before* the terminal result, with
  strictly increasing per-connection sequence ids;
* an edit in one session that dirties units another session holds
  produces an ``invalidation`` broadcast naming both;
* the analysis fingerprint is identical whether computed serially
  in-process or through a streamed server request;
* the server's ``metrics`` op and the CLI's merged metrics report the
  same key set.
"""

import threading

import pytest

from repro.incremental import AnalysisEngine
from repro.incremental.fingerprint import fingerprint_digest
from repro.service import PedClient, PedServer, serve_tcp
from repro.workloads.generator import generate_program

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


@pytest.fixture
def server():
    srv = PedServer(max_workers=4)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield srv, tcp.server_address[1]
    tcp.shutdown()
    tcp.server_close()
    srv.close()


@pytest.fixture
def client(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        yield c


@pytest.fixture(scope="module")
def workload40():
    return generate_program(n_routines=40)


def test_streamed_open_emits_progress_before_result(client, workload40):
    """The acceptance criterion: >= 1 analysis.progress before the
    terminal result on a 40-routine workload, strictly increasing seq."""

    events = list(client.stream("open", session="w", source=workload40))
    assert events[-1].kind == "result"
    progress = [e for e in events if e.kind == "analysis.progress"]
    assert len(progress) >= 1
    # Every event precedes the terminal reply in seq order, and the
    # whole stream is strictly increasing.
    seqs = [e.seq for e in events]
    assert all(isinstance(s, int) for s in seqs)
    assert seqs == sorted(seqs)
    assert len(set(seqs)) == len(seqs)
    assert max(s for s in seqs[:-1]) < events[-1].seq
    # The pipeline phases all surface, dependence once per unit.
    phases = [e.data.get("phase") for e in progress]
    assert "split" in phases
    assert "callgraph" in phases
    assert phases.count("dependence") == len(events[-1].data["units"])


def test_streamed_edit_emits_progress(client):
    client.request("open", session="s", source=SIMPLE)
    events = list(
        client.stream(
            "edit", session="s", start=4, end=4, text="         a(i) = i + 1"
        )
    )
    assert events[-1].kind == "result"
    assert any(e.kind == "analysis.progress" for e in events)


def test_callback_streaming_api(client):
    seen = []
    handle = client.submit(
        "open",
        session="cb",
        source=SIMPLE,
        stream=True,
        on_event=seen.append,
    )
    result = handle.result(30.0)
    assert result["units"] == ["p"]
    assert any(e.kind == "analysis.progress" for e in seen)


def test_unstreamed_request_gets_no_events(client):
    """Without "stream": true the reply is the only envelope — the
    pre-streaming protocol behaviour, unchanged."""

    seen = []
    token = client.add_event_listener(seen.append)
    try:
        client.request("open", session="plain", source=SIMPLE)
        assert client.request("loops", session="plain", unit="p")["loops"]
    finally:
        client.remove_event_listener(token)
    assert [e for e in seen if e.kind == "analysis.progress"] == []


def test_invalidation_broadcast_names_editor_and_holders(client):
    """An edit in session a dirties unit p, which session b also holds:
    every connection hears an invalidation broadcast naming both."""

    client.request("open", session="a", source=SIMPLE)
    client.request("open", session="b", source=SIMPLE)
    seen = []
    got_one = threading.Event()

    def listen(ev):
        if ev.kind == "invalidation":
            seen.append(ev)
            got_one.set()

    token = client.add_event_listener(listen)
    try:
        client.request(
            "edit", session="a", start=4, end=4,
            text="         a(i) = i + 2",
        )
        assert got_one.wait(timeout=10.0)
    finally:
        client.remove_event_listener(token)
    ev = seen[0]
    assert ev.request_id is None  # broadcast, not tied to a request
    assert ev.data["session"] == "a"
    assert ev.data["op"] == "edit"
    assert ev.data["units"] == ["p"]
    assert ev.data["holders"] == ["b"]


def test_no_invalidation_without_other_holders(client):
    """A lone session's edit dirties nobody else: no broadcast."""

    client.request("open", session="only", source=SIMPLE)
    seen = []
    token = client.add_event_listener(seen.append)
    try:
        client.request(
            "edit", session="only", start=4, end=4,
            text="         a(i) = i * 3",
        )
        client.request("ping")  # round-trip to flush any pending events
    finally:
        client.remove_event_listener(token)
    assert [e for e in seen if e.kind == "invalidation"] == []


def test_fingerprint_parity_serial_vs_streamed(client, workload40):
    """Mode parity: a streamed server analysis produces byte-identical
    fingerprints to the classic in-process serial engine."""

    _, pa = AnalysisEngine().analyze(workload40)
    serial_digest = fingerprint_digest(pa)

    events = list(client.stream("open", session="fp", source=workload40))
    assert events[-1].kind == "result"
    streamed = client.request("fingerprint", session="fp")["fingerprint"]
    assert streamed == serial_digest

    # Repeat without streaming on a second session: identical again.
    client.request("open", session="fp2", source=workload40)
    plain = client.request("fingerprint", session="fp2")["fingerprint"]
    assert plain == serial_digest


def test_metrics_op_matches_cli_key_set(client):
    """Satellite 2: the server metrics op and the stats CLI report the
    same merged key names."""

    from repro.editor import CommandInterpreter, PedSession

    client.request("open", session="m", source=SIMPLE)
    server_metrics = client.request("metrics")["metrics"]

    session = PedSession(SIMPLE)
    ped = CommandInterpreter(session)
    rendered = ped.execute("stats")
    for key in (
        "pool.workers",
        "pool.queue_depth",
        "memo.shared_hits",
        "memo.shared_misses",
        "memo.shared_hit_rate",
        "memo.entries",
        "memo.delta_absorbed",
        "memo.delta_exported",
        "pool.utilization",
    ):
        assert key in server_metrics
        assert key in rendered

    # Gauges reflect the live pool.
    assert server_metrics["pool.workers"] >= 1
    assert server_metrics["analyses"] >= 0


def test_per_session_metrics(client):
    client.request("open", session="ms", source=SIMPLE)
    metrics = client.request("metrics", session="ms")["metrics"]
    assert metrics["analyses"] >= 1
