"""Wire protocol: framing, envelopes, sequence ids, structured errors.

Half unit tests on :mod:`repro.service.protocol` itself, half wire-level
regression tests proving the transports answer *every* malformed input —
bad JSON, non-object payloads, unknown ops, oversized lines — through
the structured error envelope rather than dropping the line or the
connection.
"""

import json
import threading

import pytest

from repro.service import PedClient, PedRequestError, PedServer, serve_tcp
from repro.service import protocol

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


# ----------------------------------------------------------------------
# protocol unit tests
# ----------------------------------------------------------------------


def test_parse_request_roundtrip():
    req = protocol.parse_request('{"id": 1, "op": "ping"}')
    assert req == {"id": 1, "op": "ping"}


def test_parse_request_bad_json():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_request("{not json")
    assert exc.value.type == protocol.BAD_REQUEST
    assert exc.value.request_id is None


def test_parse_request_non_object():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_request('[1, 2, 3]')
    assert exc.value.type == protocol.BAD_REQUEST


def test_parse_request_oversized_recovers_id():
    line = json.dumps({"id": 42, "op": "open", "source": "x" * 256})
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_request(line, max_bytes=64)
    assert exc.value.type == protocol.PAYLOAD_TOO_LARGE
    assert exc.value.request_id == 42


def test_parse_request_oversized_unparsable_id():
    with pytest.raises(protocol.ProtocolError) as exc:
        protocol.parse_request("{broken" + "x" * 128, max_bytes=64)
    assert exc.value.type == protocol.PAYLOAD_TOO_LARGE
    assert exc.value.request_id is None


def test_sequencer_is_monotonic_across_threads():
    seq = protocol.Sequencer()
    out = []
    lock = threading.Lock()

    def take():
        for _ in range(200):
            n = seq.next()
            with lock:
                out.append(n)

    threads = [threading.Thread(target=take) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert sorted(out) == list(range(1, 801))


def test_envelope_shapes():
    ok = protocol.reply_ok(7, {"x": 1})
    err = protocol.reply_error(7, protocol.BAD_REQUEST, "nope")
    ev = protocol.event_envelope(7, protocol.EV_PROGRESS, {"phase": "split"})
    assert protocol.is_reply(ok) and not protocol.is_event(ok)
    assert protocol.is_reply(err) and not protocol.is_event(err)
    assert protocol.is_event(ev) and not protocol.is_reply(ev)
    assert json.loads(protocol.encode(ev))["event"] == "analysis.progress"


# ----------------------------------------------------------------------
# wire-level regression tests (real TCP transport)
# ----------------------------------------------------------------------


@pytest.fixture
def small_limit_server():
    srv = PedServer(max_workers=2, max_request_bytes=512)
    tcp = serve_tcp(srv)
    thread = threading.Thread(
        target=tcp.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    yield srv, tcp.server_address[1]
    tcp.shutdown()
    tcp.server_close()
    srv.close()


def _raw_exchange(port, lines):
    """Write raw lines, read one reply line per written line."""

    import socket

    with socket.create_connection(("127.0.0.1", port)) as sock:
        rfile = sock.makefile("r", encoding="utf-8")
        wfile = sock.makefile("w", encoding="utf-8")
        replies = []
        for line in lines:
            wfile.write(line + "\n")
            wfile.flush()
            replies.append(json.loads(rfile.readline()))
        return replies


def test_bad_json_line_gets_structured_error(small_limit_server):
    _, port = small_limit_server
    (reply,) = _raw_exchange(port, ["{this is not json"])
    assert reply["ok"] is False
    assert reply["error"]["type"] == "bad-request"
    assert reply["id"] is None
    assert isinstance(reply["seq"], int)


def test_non_object_request_gets_structured_error(small_limit_server):
    _, port = small_limit_server
    (reply,) = _raw_exchange(port, ['["not", "an", "object"]'])
    assert reply["ok"] is False
    assert reply["error"]["type"] == "bad-request"


def test_unknown_op_gets_structured_error(small_limit_server):
    _, port = small_limit_server
    (reply,) = _raw_exchange(
        port, [json.dumps({"id": 3, "op": "frobnicate"})]
    )
    assert reply["ok"] is False
    assert reply["id"] == 3
    assert reply["error"]["type"] == "unknown-op"


def test_oversized_request_gets_structured_error(small_limit_server):
    _, port = small_limit_server
    big = json.dumps({"id": 9, "op": "open", "session": "s",
                      "source": "x" * 4096})
    (reply,) = _raw_exchange(port, [big])
    assert reply["ok"] is False
    assert reply["id"] == 9
    assert reply["error"]["type"] == "payload-too-large"


def test_connection_survives_framing_errors(small_limit_server):
    """A framing error must not poison the stream: later good requests
    on the same connection still work, with increasing seq stamps."""

    _, port = small_limit_server
    replies = _raw_exchange(
        port,
        [
            "{broken",
            json.dumps({"id": 1, "op": "ping"}),
            "[]",
            json.dumps({"id": 2, "op": "ping"}),
        ],
    )
    assert [r["ok"] for r in replies] == [False, True, False, True]
    seqs = [r["seq"] for r in replies]
    assert seqs == sorted(seqs) and len(set(seqs)) == 4


def test_oversized_error_via_client(small_limit_server):
    """The PedClient surfaces payload-too-large as a PedRequestError."""

    _, port = small_limit_server
    with PedClient.connect(port=port) as client:
        with pytest.raises(PedRequestError) as exc:
            client.request("open", session="s", source="x" * 4096)
        assert exc.value.type == "payload-too-large"
        # The connection is still usable afterwards.
        assert client.request("ping")["pong"] is True
        assert (
            client.request("open", session="s", source=SIMPLE)["units"]
            == ["p"]
        )
