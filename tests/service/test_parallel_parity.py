"""Parallel execution must be bit-identical to serial.

The worker pool's contract: an engine with ``jobs >= 2`` produces the
same structural fingerprint as the serial engine for every program and
every edit sequence — parallelism is an implementation detail, never an
approximation.  One process pool is shared across the whole module
(spawning one per test would dominate runtime).
"""

import re

import pytest

from repro.incremental import AnalysisEngine, program_fingerprint
from repro.incremental.stats import EngineStats
from repro.service import WorkerPool, build_engine
from repro.workloads import SUITE

#: Programs spanning the interesting shapes: the biggest call graph
#: (spec77), a recursive-free chain and a flat one.
PROGRAMS = ("spec77", "onedim", "slab2d")


@pytest.fixture(scope="module")
def shared_pool():
    pool = WorkerPool(2, stats=EngineStats())
    yield pool
    pool.close()


def _edit_steps(source):
    lines = source.splitlines()
    steps = []
    for i, text in enumerate(lines):
        if (
            re.search(r"= .*[0-9]", text)
            and "do " not in text
            and "parameter" not in text
        ):
            tweaked = list(lines)
            tweaked[i] = text + " + 0.0"
            steps.append("\n".join(tweaked) + "\n")
            break
    mid = len(lines) // 2
    commented = list(lines)
    commented.insert(mid, "c service-layer probe")
    steps.append("\n".join(commented) + "\n")
    steps.append(source if source.endswith("\n") else source + "\n")
    return steps


@pytest.mark.parametrize("name", PROGRAMS)
def test_parallel_matches_serial_across_edits(name, shared_pool):
    source = SUITE[name].source
    serial = AnalysisEngine()
    parallel = AnalysisEngine(pool=shared_pool)
    for step in [source] + _edit_steps(source):
        _, pa_serial = serial.analyze(step)
        _, pa_parallel = parallel.analyze(step)
        assert program_fingerprint(pa_serial) == program_fingerprint(
            pa_parallel
        )


def test_parallel_matches_serial_with_assertions(shared_pool):
    source = SUITE["onedim"].source
    first_unit = "onedim"
    serial = AnalysisEngine()
    parallel = AnalysisEngine(pool=shared_pool)
    asserts = {first_unit: ["n >= 1"]}
    for a in (None, asserts, None):
        _, pa_s = serial.analyze(source, assertions=a)
        _, pa_p = parallel.analyze(source, assertions=a)
        assert program_fingerprint(pa_s) == program_fingerprint(pa_p)


def test_parallel_engine_reports_pool_counters(shared_pool):
    engine = AnalysisEngine(pool=shared_pool)
    engine.analyze(SUITE["onedim"].source)
    stats = shared_pool.stats
    assert stats.counter("pool.tasks") > 0
    assert stats.counter("pool.batches") > 0
    assert stats.counter("pool.wall_s") > 0
    assert 0 < stats.pool_utilization()


def test_parallel_session_edits_and_transforms(shared_pool):
    """A full session over a parallel engine behaves like a serial one."""

    from repro.editor.session import PedSession

    source = SUITE["onedim"].source
    serial = PedSession(source)
    parallel = PedSession(
        source, engine=AnalysisEngine(pool=shared_pool)
    )
    for s in (serial, parallel):
        s.select_unit("build")
        s.select_loop(0)
    assert serial.selected_info.parallelizable == (
        parallel.selected_info.parallelizable
    )
    msg_s = serial.edit(2, 2, "      integer i, n")
    msg_p = parallel.edit(2, 2, "      integer i, n")
    assert msg_s == msg_p
    assert program_fingerprint(serial.analysis) == program_fingerprint(
        parallel.analysis
    )


def test_parse_error_propagates_from_pool(shared_pool):
    """FortranError must cross the process boundary: the session's
    edit-rollback path depends on catching it."""

    from repro.editor.session import PedError, PedSession

    session = PedSession(
        SUITE["onedim"].source, engine=AnalysisEngine(pool=shared_pool)
    )
    fingerprint = program_fingerprint(session.analysis)
    with pytest.raises(PedError):
        session.edit(4, 4, "      do 10 i = ")  # malformed DO
    # Rolled back: analysis state identical to before the bad edit.
    assert program_fingerprint(session.analysis) == fingerprint


def test_build_engine_jobs_flag():
    engine = build_engine(jobs=2)
    try:
        assert engine.pool.parallel
        assert engine.pool.jobs == 2
        _, pa = engine.analyze(SUITE["slab2d"].source)
        ref = AnalysisEngine().analyze(SUITE["slab2d"].source)[1]
        assert program_fingerprint(pa) == program_fingerprint(ref)
    finally:
        engine.close()


def test_make_pool_selects_backend():
    from repro.service.pool import (
        ElasticWorkerPool,
        SerialPool,
        make_pool,
    )

    assert isinstance(make_pool(1), SerialPool)
    assert isinstance(make_pool(None), SerialPool)
    four = make_pool(4)
    assert type(four) is WorkerPool and four.jobs == 4
    auto = make_pool("auto")
    assert isinstance(auto, ElasticWorkerPool)
    assert auto.jobs == 2  # starts small, grows on demand
    assert 2 <= auto.cap <= ElasticWorkerPool.DEFAULT_CAP
    for p in (four, auto):
        p.close()


def test_elastic_resize_policy_is_deterministic():
    """Sizing depends only on the batch-width sequence: grow at once,
    shrink only after SHRINK_PATIENCE consecutive narrow batches."""

    from repro.service.pool import ElasticWorkerPool

    pool = ElasticWorkerPool(cap=6)
    assert (pool.jobs, pool.cap) == (2, 6)

    pool._resize(5)  # wide batch: grow immediately
    assert pool.jobs == 5
    pool._resize(40)  # the cap bounds growth deterministically
    assert pool.jobs == 6

    # Narrow batches (width <= jobs // 2) only shrink after patience.
    for _ in range(ElasticWorkerPool.SHRINK_PATIENCE - 1):
        pool._resize(2)
        assert pool.jobs == 6
    pool._resize(4)  # mid-width batch resets the narrow streak
    assert pool.jobs == 6 and pool._narrow_batches == 0
    for _ in range(ElasticWorkerPool.SHRINK_PATIENCE):
        pool._resize(2)
    assert pool.jobs == 2  # patience exhausted: shrink to target

    pool._resize(3)  # and it can grow right back
    assert pool.jobs == 3
    pool.close()


def test_elastic_pool_parity_and_workers_gauge():
    """``--jobs auto`` is still bit-identical to serial, and the engine
    can watch the pool's width through the ``pool.workers`` gauge."""

    from repro.service.pool import ElasticWorkerPool

    stats = EngineStats()
    pool = ElasticWorkerPool(cap=2, stats=stats)
    engine = AnalysisEngine(pool=pool, stats=stats)
    try:
        source = SUITE["slab2d"].source
        _, pa = engine.analyze(source)
        ref = AnalysisEngine().analyze(source)[1]
        assert program_fingerprint(pa) == program_fingerprint(ref)
        assert stats.counter("pool.workers") == pool.jobs
        assert stats.counter("pool.workers.peak") >= 2
    finally:
        pool.close()


def test_build_engine_jobs_auto():
    from repro.service.pool import ElasticWorkerPool

    engine = build_engine(jobs="auto")
    try:
        assert isinstance(engine.pool, ElasticWorkerPool)
    finally:
        engine.close()
