"""Integration tests over the synthetic suite: every program parses,
runs, and reproduces its paper story end to end."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.fortran import parse_and_bind
from repro.interproc import FeatureSet, analyze_program
from repro.perf import Interpreter
from repro.workloads import SUITE, get_program

ALL = sorted(SUITE)


class TestSuiteIntegrity:
    def test_ten_programs(self):
        assert len(SUITE) == 10

    def test_get_program(self):
        assert get_program("ARC3D").name == "arc3d"
        with pytest.raises(KeyError):
            get_program("nosuch")

    @pytest.mark.parametrize("name", ALL)
    def test_parses_and_binds(self, name):
        sf = parse_and_bind(SUITE[name].source)
        assert sf.units

    @pytest.mark.parametrize("name", ALL)
    def test_runs_deterministically(self, name):
        src = SUITE[name].source
        out1 = Interpreter(parse_and_bind(src)).run()
        out2 = Interpreter(parse_and_bind(src)).run()
        assert out1 == out2 and out1

    @pytest.mark.parametrize("name", ALL)
    def test_metadata_counts(self, name):
        prog = SUITE[name]
        sf = parse_and_bind(prog.source)
        assert prog.procedures == len(sf.units)
        assert prog.lines > 20

    @pytest.mark.parametrize("name", ALL)
    def test_has_script_and_targets(self, name):
        prog = SUITE[name]
        assert prog.script
        assert prog.target_loops


class TestPaperStories:
    """Each program's key loops: serial under the features the paper says
    are insufficient, parallel once the needed feature (or user action)
    is present."""

    def _verdicts(self, name, features):
        prog = SUITE[name]
        pa = analyze_program(parse_and_bind(prog.source), features)
        out = {}
        for unit, idx in prog.target_loops:
            ua = pa.unit(unit)
            info = ua.info_for(ua.loops[idx].loop)
            out[(unit, idx)] = info.parallelizable
        return out

    @pytest.mark.parametrize("name", ALL)
    def test_minimal_analysis_insufficient(self, name):
        # At least one key loop is serial under the naive baseline.
        verdicts = self._verdicts(name, FeatureSet.minimal())
        interesting = {
            k: v for k, v in verdicts.items() if k != ("init", 0)
        }
        assert not all(interesting.values()), verdicts

    @pytest.mark.parametrize(
        "name",
        [n for n in ALL if not SUITE[n].needs.get("assertions")],
    )
    def test_full_analysis_sufficient(self, name):
        verdicts = self._verdicts(name, FeatureSet())
        assert all(verdicts.values()), verdicts

    def test_onedim_needs_assertion(self):
        verdicts = self._verdicts("onedim", FeatureSet())
        assert not all(verdicts.values())

    @pytest.mark.parametrize("name", ALL)
    def test_scripted_session_reaches_outcome(self, name):
        prog = SUITE[name]
        session = PedSession(prog.source)
        ped = CommandInterpreter(session)
        outputs = ped.run_script(prog.script)
        errors = [o for o in outputs if o.startswith("error:")]
        assert not errors, errors
        for unit, idx in prog.target_loops:
            ua = session.analysis.unit(unit)
            loop = ua.loops[idx].loop
            info = ua.info_for(loop)
            assert info.parallelizable, (unit, idx, info.obstacles)

    @pytest.mark.parametrize("name", ALL)
    def test_session_preserves_semantics(self, name):
        prog = SUITE[name]
        reference = Interpreter(parse_and_bind(prog.source)).run()
        session = PedSession(prog.source)
        CommandInterpreter(session).run_script(prog.script)
        for order in ("forward", "reversed", "shuffled"):
            out = Interpreter(session.sf, doall_order=order).run()
            assert out == reference, (order, out, reference)


class TestFeatureLevers:
    """Spot checks of the per-program Table 3 levers."""

    def _parallel(self, name, features):
        prog = SUITE[name]
        pa = analyze_program(parse_and_bind(prog.source), features)
        unit, idx = prog.target_loops[0]
        ua = pa.unit(unit)
        return ua.info_for(ua.loops[idx].loop).parallelizable

    def test_spec77_sections_lever(self):
        assert self._parallel("spec77", FeatureSet())
        assert not self._parallel("spec77", FeatureSet(sections=False))

    def test_nxsns_scalar_kill_lever(self):
        assert self._parallel("nxsns", FeatureSet())
        assert not self._parallel("nxsns", FeatureSet(scalar_kill=False))

    def test_arc3d_array_kill_lever(self):
        assert self._parallel("arc3d", FeatureSet())
        assert not self._parallel("arc3d", FeatureSet(array_kill=False))

    def test_shear_constants_lever(self):
        assert self._parallel("shear", FeatureSet())
        assert not self._parallel("shear", FeatureSet(ip_constants=False))

    def test_interior_constants_or_assertion(self):
        assert self._parallel("interior", FeatureSet())
        assert not self._parallel("interior", FeatureSet(ip_constants=False))
        # The assertion substitutes for the missing analysis.
        session = PedSession(
            SUITE["interior"].source, features=FeatureSet(ip_constants=False)
        )
        session.select_unit("step")
        session.add_assertion("nn == 50")
        ua = session.analysis.unit("step")
        assert ua.info_for(ua.loops[0].loop).parallelizable

    def test_boast_reductions_lever(self):
        assert self._parallel("boast", FeatureSet())
        assert not self._parallel("boast", FeatureSet(reductions=False))

    def test_slab2d_combination(self):
        assert self._parallel("slab2d", FeatureSet())
        assert not self._parallel("slab2d", FeatureSet(array_kill=False))
        assert not self._parallel("slab2d", FeatureSet(reductions=False))
