"""Event-sourced session ops through the fleet router.

``session.log`` / ``session.replay`` / ``session.restore`` are
session-keyed, so the router forwards them to whichever shard owns the
session — the same consistent-hash route ``open`` took.  The bar:
journaling is invisible through the routed front end (same records,
same replay fingerprints as talking to a single server), and a restore
lands back on the owning shard.
"""

import pytest

from repro.fleet import AsyncTransport, FleetRouter
from repro.service import PedClient, PedServer

SOURCE = (
    "      program main\n"
    "      real a(100), b(100)\n"
    "      call work(a, b, 100)\n"
    "      end\n"
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

SESSIONS = [f"sess{i}" for i in range(4)]


@pytest.fixture
def fleet(tmp_path):
    """Two in-process shards (each with its own cache dir) behind a
    routed front end."""

    shards = []
    addrs = []
    for i in range(2):
        srv = PedServer(max_workers=4, cache_dir=tmp_path / f"shard{i}")
        transport = AsyncTransport(srv)
        port = transport.start_background()
        shards.append((srv, transport))
        addrs.append(f"127.0.0.1:{port}")
    router = FleetRouter(addrs, retries=1, backoff=0.01)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    yield [srv for srv, _ in shards], rport
    rtransport.stop_background()
    router.close()
    for srv, transport in shards:
        transport.stop_background()
        srv.close()


@pytest.fixture
def rclient(fleet):
    _, rport = fleet
    with PedClient.connect(port=rport) as c:
        yield c


def _mutate(client, name):
    client.request("open", session=name, source=SOURCE, wait=120)
    client.request(
        "edit",
        session=name,
        start=8,
        end=8,
        text="         a(i) = a(i) + 2.0",
        wait=60,
    )
    client.request("assert", session=name, unit="work", text="n >= 1", wait=60)
    client.request("undo", session=name, wait=60)


def test_journal_ops_route_to_owning_shard(fleet, rclient):
    shards, _ = fleet
    for name in SESSIONS:
        _mutate(rclient, name)

    # Every session landed on exactly one shard (spread depends on the
    # ring's ephemeral-port node names, so don't pin the split).
    placed = [len(srv.sessions) for srv in shards]
    assert sum(placed) == len(SESSIONS)

    for name in SESSIONS:
        log = rclient.session_log(name, wait=60)
        assert log["origin"] == "live"
        ops = [r["op"] for r in log["records"]]
        assert ops[-1] == "undo"
        fp = rclient.request("fingerprint", session=name, wait=60)
        replayed = rclient.session_replay(name, wait=120)
        assert replayed["fingerprint"] == fp["fingerprint"]
        assert replayed["total"] == log["total"]

    # Each shard only counted the replays it served.
    replay_counts = [
        srv.stats.counters.get("journal.replays", 0) for srv in shards
    ]
    assert sum(replay_counts) == len(SESSIONS)


def test_restore_through_router(fleet, rclient):
    shards, _ = fleet
    name = SESSIONS[0]
    _mutate(rclient, name)
    fp = rclient.request("fingerprint", session=name, wait=60)
    total = rclient.session_log(name, wait=60)["total"]

    rclient.request("close", session=name, wait=60)
    assert all(name not in srv.sessions for srv in shards)

    restored = rclient.session_restore(name, wait=120)
    assert restored["records"] == total
    assert restored["fingerprint"] == fp["fingerprint"]

    # The session is live again on exactly one shard — the owner.
    owners = [srv for srv in shards if name in srv.sessions]
    assert len(owners) == 1
    assert owners[0].stats.counters.get("journal.restores", 0) == 1

    # And usable through the router.
    summary = rclient.request("parallel_summary", session=name, wait=60)
    assert summary


def test_replay_prefix_parity_through_router(rclient):
    name = "prefix"
    _mutate(rclient, name)
    total = rclient.session_log(name, wait=60)["total"]
    fingerprints = [
        rclient.session_replay(name, upto=upto, wait=120)["fingerprint"]
        for upto in range(total + 1)
    ]
    # Full replay equals the live state; prefixes are deterministic.
    live = rclient.request("fingerprint", session=name, wait=60)["fingerprint"]
    assert fingerprints[-1] == live
    again = [
        rclient.session_replay(name, upto=upto, wait=120)["fingerprint"]
        for upto in range(total + 1)
    ]
    assert fingerprints == again
