"""Protocol error paths and ordering over the asyncio transport.

The same :class:`PedServer` that the threaded front end drives runs
behind :class:`AsyncTransport` here; every abuse a client can inflict —
oversized request lines, malformed JSON, unknown ops, disconnecting
mid-stream — must produce a structured error (or a clean teardown)
without killing the server or wedging other connections.
"""

import json
import socket
import threading
import time

import pytest

from repro.fleet import AsyncTransport
from repro.service import PedClient, PedRequestError, PedServer

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


@pytest.fixture
def server():
    srv = PedServer(max_workers=4, max_request_bytes=65536)
    transport = AsyncTransport(srv)
    port = transport.start_background()
    yield srv, port
    transport.stop_background()
    srv.close()


@pytest.fixture
def client(server):
    _, port = server
    with PedClient.connect(port=port) as c:
        yield c


def _raw(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=30)
    return sock, sock.makefile("r", encoding="utf-8")


def _roundtrip(sock, lines_fh, payload: bytes) -> dict:
    sock.sendall(payload)
    return json.loads(lines_fh.readline())


def test_ping_and_streamed_ordering(client):
    reply = client.request("ping")
    assert reply["pong"] is True

    events = list(client.stream("open", session="s", source=SIMPLE))
    assert events[-1].kind == "result"
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    loops = client.request("loops", session="s", unit="p")["loops"]
    assert loops[0]["parallelizable"] is True


def test_oversized_request_gets_structured_error(server):
    """A line over the limit (but under the id-recovery slack) answers
    ``payload-too-large`` carrying the request's own id, and the
    connection keeps serving."""

    _, port = server
    sock, fh = _raw(port)
    big = json.dumps(
        {"id": 7, "op": "open", "session": "x", "source": "z" * 70000}
    ).encode()
    reply = _roundtrip(sock, fh, big + b"\n")
    assert reply["ok"] is False
    assert reply["error"]["type"] == "payload-too-large"
    assert reply["id"] == 7

    reply = _roundtrip(sock, fh, b'{"id": 8, "op": "ping"}\n')
    assert reply["ok"] is True and reply["result"]["pong"] is True
    sock.close()


def test_hugely_oversized_line_is_discarded_not_buffered(server):
    """A line so large the server refuses to even assemble it (over
    limit + slack) is discarded in chunks — one error reply with a null
    id, bounded memory, connection still usable."""

    _, port = server
    sock, fh = _raw(port)
    sock.sendall(b"x" * (65536 + 64 * 1024 + 4096))
    reply = _roundtrip(sock, fh, b"\n")
    assert reply["ok"] is False
    assert reply["error"]["type"] == "payload-too-large"
    assert reply["id"] is None

    reply = _roundtrip(sock, fh, b'{"id": 1, "op": "ping"}\n')
    assert reply["ok"] is True
    sock.close()


def test_malformed_json_gets_structured_error(server):
    _, port = server
    sock, fh = _raw(port)
    reply = _roundtrip(sock, fh, b"this is not json\n")
    assert reply["ok"] is False
    assert reply["error"]["type"] == "bad-request"

    reply = _roundtrip(sock, fh, b'[1, 2, 3]\n')
    assert reply["ok"] is False
    assert reply["error"]["type"] == "bad-request"

    reply = _roundtrip(sock, fh, b'{"id": 2, "op": "ping"}\n')
    assert reply["ok"] is True
    sock.close()


def test_unknown_op_is_structured(client):
    with pytest.raises(PedRequestError) as err:
        client.request("definitely.not.an.op")
    assert err.value.type == "unknown-op"
    assert client.request("ping")["pong"] is True


def test_mid_stream_disconnect_does_not_kill_server(server):
    """A client that vanishes mid-stream tears down its connection
    only: in-flight work is cancelled server-side, other clients keep
    getting answers, and the connection gauge returns to them alone."""

    from repro.workloads.generator import generate_program

    srv, port = server
    victim = PedClient.connect(port=port)
    started = threading.Event()

    with PedClient.connect(port=port) as fresh:
        # A streamed analysis, then yank the socket once events flow —
        # the request is genuinely mid-stream when the connection dies.
        victim.submit(
            "open",
            session="victim",
            source=generate_program(n_routines=10),
            stream=True,
            on_event=lambda _ev: started.set(),
        )
        assert started.wait(timeout=30)
        victim.close()  # no goodbye in the protocol: socket just drops

        assert fresh.request("ping", wait=30)["pong"] is True
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            metrics = fresh.request("metrics", wait=30)["metrics"]
            if metrics["server.connections.open"] == 1:
                break
            time.sleep(0.05)
        assert metrics["server.connections.open"] == 1
        assert metrics["server.connections.peak"] >= 2
        assert metrics["server.uptime_s"] > 0


def test_concurrent_clients(server):
    _, port = server
    results = []
    errors = []

    def one(i):
        try:
            with PedClient.connect(port=port) as c:
                results.append(c.request("ping", wait=30)["pong"])
        except Exception as exc:  # noqa: BLE001 — collected for assert
            errors.append(exc)

    threads = [
        threading.Thread(target=one, args=(i,)) for i in range(16)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=30)
    assert not errors
    assert results == [True] * 16


def test_cancel_over_async_transport(client):
    pending = client.submit("sleep", seconds=30)
    client.request("cancel", target=pending.id)
    with pytest.raises(PedRequestError) as err:
        pending.result(10)
    assert err.value.type == "cancelled"
