"""Consistent-hash ring: determinism, preference walks, minimal movement."""

import pytest

from repro.fleet import HashRing

NODES = ["127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003"]
KEYS = [f"prog{i:03d}" for i in range(200)]


def test_assignment_is_deterministic_across_instances():
    """Two independently built rings (different insertion order) agree
    on every key — the property that lets router and bench processes
    reason about placement without coordination."""

    a = HashRing(NODES)
    b = HashRing(list(reversed(NODES)))
    for key in KEYS:
        assert a.node_for(key) == b.node_for(key)


def test_every_node_owns_some_keys():
    ring = HashRing(NODES)
    owners = {ring.node_for(k) for k in KEYS}
    assert owners == set(NODES)


def test_preference_starts_at_owner_and_covers_all_nodes():
    ring = HashRing(NODES)
    for key in KEYS[:50]:
        pref = ring.preference(key)
        assert pref[0] == ring.node_for(key)
        assert sorted(pref) == sorted(NODES)
        assert ring.preference(key, n=2) == pref[:2]


def test_removal_moves_only_the_dead_nodes_keys():
    ring = HashRing(NODES)
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove(NODES[0])
    for key in KEYS:
        after = ring.node_for(key)
        if before[key] != NODES[0]:
            # Keys not owned by the removed node must not move.
            assert after == before[key]
        else:
            assert after in NODES[1:]


def test_failover_target_matches_preference_walk():
    """The node a key lands on after its owner dies is exactly
    ``preference(key)[1]`` — the invariant the router's rehash relies
    on to find work a dead shard dropped."""

    ring = HashRing(NODES)
    for key in KEYS[:50]:
        pref = ring.preference(key)
        survivor = HashRing(NODES)
        survivor.remove(pref[0])
        assert survivor.node_for(key) == pref[1]


def test_partition_groups_by_owner():
    ring = HashRing(NODES)
    parts = ring.partition(KEYS)
    assert sorted(sum(parts.values(), [])) == sorted(KEYS)
    for node, keys in parts.items():
        for key in keys:
            assert ring.node_for(key) == node


def test_empty_ring_and_validation():
    ring = HashRing()
    assert ring.node_for("x") is None
    assert ring.preference("x") == []
    with pytest.raises(ValueError):
        ring.partition(["x"])
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_add_remove_roundtrip_restores_assignment():
    ring = HashRing(NODES)
    before = {k: ring.node_for(k) for k in KEYS}
    ring.remove(NODES[1])
    ring.add(NODES[1])
    assert {k: ring.node_for(k) for k in KEYS} == before
    assert len(ring) == 3
    assert NODES[1] in ring
