"""The shard router: transparent forwarding, fan-out merges, shard death.

Most tests run shards in-process behind :class:`AsyncTransport` (fast,
deterministic); the kill tests run a real ``python -m repro fleet
shard`` subprocess so death is a SIGKILL, not a polite drain.
"""

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.fleet import AsyncTransport, FleetRouter, MemoGossip
from repro.incremental.stats import EngineStats
from repro.interproc import FeatureSet
from repro.pipeline import CorpusRunner
from repro.service import PedClient, PedRequestError, PedServer
from repro.workloads.generator import generate_program

SRC_DIR = str(Path(__file__).resolve().parents[2] / "src")

AGG_NAMES = ("summary", "obstacles", "tiers", "transforms")


def _programs(n=8):
    return [
        (
            f"prog{i:02d}",
            generate_program(
                n_routines=2 + i % 3,
                n_fields=2,
                grid=8,
                steps=2 + i % 3,
            ),
        )
        for i in range(n)
    ]


@pytest.fixture
def fleet():
    """Two in-process shards behind a routed front end."""

    shards = []
    addrs = []
    for _ in range(2):
        srv = PedServer(max_workers=4)
        transport = AsyncTransport(srv)
        port = transport.start_background()
        shards.append((srv, transport))
        addrs.append(f"127.0.0.1:{port}")
    router = FleetRouter(addrs, retries=1, backoff=0.01)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    yield addrs, router, rport
    rtransport.stop_background()
    router.close()
    for srv, transport in shards:
        transport.stop_background()
        srv.close()


@pytest.fixture
def rclient(fleet):
    _, _, rport = fleet
    with PedClient.connect(port=rport) as c:
        yield c


def test_ping_reports_fleet(rclient):
    reply = rclient.request("ping")
    assert reply["pong"] is True
    assert reply["fleet"] == {"shards": 2, "dead": []}


def test_topology(rclient, fleet):
    addrs, _, _ = fleet
    topo = rclient.request("fleet.topology")
    assert sorted(topo["shards"]) == sorted(addrs)
    assert topo["dead"] == []


def test_session_ops_route_transparently(rclient):
    """Open/query/edit against the router behave exactly like a direct
    server connection — including streamed event ordering."""

    source = generate_program(n_routines=4)
    events = list(
        rclient.stream("open", session="s", source=source, wait=120)
    )
    assert events[-1].kind == "result"
    seqs = [e.seq for e in events]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    assert any(e.kind == "analysis.progress" for e in events)

    summary = rclient.request("parallel_summary", session="s", wait=60)
    assert sum(u["loops"] for u in summary["units"]) > 0
    assert rclient.request("close", session="s") == {"closed": "s"}


def test_unknown_op_passes_through(rclient):
    with pytest.raises(PedRequestError) as err:
        rclient.request("definitely.not.an.op", session="x")
    assert err.value.type == "unknown-op"


def test_corpus_fanout_matches_single_host(rclient):
    """The tentpole parity claim: a corpus routed across two shards
    produces byte-identical aggregates and per-program fingerprints to
    the same corpus on one host."""

    programs = _programs(8)
    reply = rclient.corpus_submit(programs, wait=True)
    assert reply["complete"] is True
    assert reply["total"] == 8 and reply["errors"] == 0
    assert reply["lost"] == []
    assert len(reply["shards"]) == 2, "partition should span both shards"
    job = reply["job"]

    runner = CorpusRunner(features=FeatureSet(), stats=EngineStats())
    local = runner.submit(programs)
    runner.run(local)

    for name in AGG_NAMES:
        fleet_value = rclient.corpus_query(job, name)["value"]
        local_value = runner.query(local, name)[0]
        assert json.dumps(fleet_value, sort_keys=True) == json.dumps(
            local_value, sort_keys=True
        ), name

    routed = rclient.request("corpus.results", job=job, wait=60)
    fleet_digests = {
        r["program"]: r["digest"] for r in routed["records"]
    }
    local_digests = {
        r["program"]: r["digest"] for r in local.result_records()
    }
    assert fleet_digests == local_digests


def test_corpus_status_merges(rclient):
    programs = _programs(4)
    job = rclient.corpus_submit(programs, wait=True)["job"]
    status = rclient.corpus_status(job)
    assert status["total"] == 4
    assert status["complete"] is True
    assert set(status["programs"]) == {name for name, _src in programs}


def test_streamed_corpus_renumbers_progress(rclient):
    """Per-shard progress events come back renumbered to fleet-wide
    ``done/total`` counts."""

    programs = _programs(6)
    events = list(
        rclient.stream(
            "corpus.submit",
            wait=300,
            programs=[
                {"name": name, "source": src} for name, src in programs
            ],
        )
    )
    assert events[-1].kind == "result"
    progress = [
        e.data
        for e in events
        if e.data.get("phase") == "corpus.program"
    ]
    assert len(progress) == 6
    assert [p["done"] for p in progress] == list(range(1, 7))
    assert all(p["total"] == 6 for p in progress)


def test_metrics_merge_sums_shards(rclient):
    rclient.request("open", session="m", source=generate_program(), wait=120)
    metrics = rclient.request("metrics", wait=60)["metrics"]
    assert metrics["fleet.shards"] == 2
    assert metrics["fleet.shards.reachable"] == 2
    assert metrics["fleet.shards.dead"] == 0
    assert metrics["router.forwarded"] >= 1
    assert metrics["server.connections.open"] == 1
    assert metrics["server.uptime_s"] > 0
    assert metrics["memo.entries"] > 0  # summed across shards


def test_memo_ops_fan_out(rclient):
    """memo.pull through the router unions both shards; memo.push
    reaches both."""

    rclient.request("open", session="warm", source=generate_program(), wait=120)
    pulled = rclient.request("memo.pull", wait=60)
    assert pulled["count"] > 0
    pushed = rclient.request(
        "memo.push", entries=pulled["entries"], wait=60
    )
    assert pushed["shards"] == 2
    # Idempotent: pushing what every shard now has absorbs nothing new.
    again = rclient.request(
        "memo.push", entries=pulled["entries"], wait=60
    )
    assert again["absorbed"] == 0


def test_gossip_propagates_memo_between_shards(fleet):
    """A memo warmed on one shard reaches the other within one gossip
    round, and a second round is a no-op (converged)."""

    addrs, _, _ = fleet
    source = generate_program(n_routines=4)
    with PedClient.connect(port=int(addrs[0].rsplit(":", 1)[1])) as direct:
        direct.request("open", session="g", source=source, wait=120)
        have = direct.request("memo.pull", wait=60)["count"]
    assert have > 0

    gossip = MemoGossip(addrs, interval=60)
    try:
        first = gossip.run_once()
        assert first["pushed"] > 0
        assert first["unreachable"] == []
        second = gossip.run_once()
        assert second["pushed"] == 0, "gossip should converge"
    finally:
        gossip.close()

    with PedClient.connect(port=int(addrs[1].rsplit(":", 1)[1])) as other:
        assert other.request("memo.pull", wait=60)["count"] >= have
        metrics = other.request("metrics", wait=60)["metrics"]
        assert metrics["memo.gossip_absorbed"] > 0


# ----------------------------------------------------------------------
# shard death
# ----------------------------------------------------------------------


def _spawn_shard(cache_dir=None):
    """A real shard subprocess on an ephemeral port; returns (proc, addr)."""

    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, "-m", "repro", "fleet", "shard"]
    if cache_dir:
        argv += ["--cache-dir", str(cache_dir)]
    proc = subprocess.Popen(
        argv,
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    line = proc.stderr.readline()
    match = re.search(r"listening on ([\d.]+):(\d+)", line)
    assert match, f"no listening banner from shard: {line!r}"
    return proc, f"{match.group(1)}:{match.group(2)}"


def test_dead_shard_rehashes_to_survivor():
    """Kill one of two shards: session and corpus work lands on the
    survivor (bounded retry + rehash), the reply completes with zero
    losses, and the dead shard is reported in ping."""

    doomed_proc, doomed = _spawn_shard()
    live_proc, live = _spawn_shard()
    router = FleetRouter([doomed, live], retries=1, backoff=0.01)
    try:
        transport = AsyncTransport(router)
        rport = transport.start_background()
        with PedClient.connect(port=rport) as client:
            assert client.request("ping")["fleet"]["dead"] == []
            doomed_proc.send_signal(signal.SIGKILL)
            doomed_proc.wait(timeout=10)

            programs = _programs(6)
            reply = client.corpus_submit(programs, wait=True)
            assert reply["complete"] is True
            assert reply["lost"] == []
            assert reply["errors"] == 0
            assert reply["shards"] == [live]

            # Sessions rehash too: whatever shard a key hashes to, the
            # open lands on the survivor.
            opened = client.request(
                "open", session="anywhere", source=generate_program(), wait=120
            )
            assert opened["session"] == "anywhere"
            assert client.request("ping")["fleet"]["dead"] == [doomed]
    finally:
        transport.stop_background()
        router.close()
        for proc in (doomed_proc, live_proc):
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


def test_kill_mid_corpus_retries_in_flight_programs():
    """SIGKILL a shard while its sub-batch is streaming results: the
    router rehashes the in-flight programs onto the survivor and the
    batch still completes — losses only if no candidate remains."""

    doomed_proc, doomed = _spawn_shard()
    live_proc, live = _spawn_shard()
    router = FleetRouter([doomed, live], retries=0, backoff=0.01)
    try:
        transport = AsyncTransport(router)
        rport = transport.start_background()
        programs = _programs(12)
        killed = threading.Event()

        with PedClient.connect(port=rport) as client:
            def on_event(ev):
                # First streamed progress: both sub-batches are in
                # flight — kill one shard under them.
                if not killed.is_set():
                    killed.set()
                    doomed_proc.send_signal(signal.SIGKILL)

            pending = client.submit(
                "corpus.submit",
                stream=True,
                on_event=on_event,
                programs=[
                    {"name": name, "source": src}
                    for name, src in programs
                ],
            )
            reply = pending.result(300)
            assert killed.is_set()
            assert reply["complete"] is True
            assert reply["total"] == 12
            assert reply["lost"] == []
            assert set(reply["programs"]) == {n for n, _s in programs}
            assert all(
                s in ("done", "error") for s in reply["programs"].values()
            )
            metrics = client.request("metrics", wait=60)["metrics"]
            assert metrics["router.rehash"] >= 1
    finally:
        transport.stop_background()
        router.close()
        for proc in (doomed_proc, live_proc):
            if proc.poll() is None:
                proc.kill()
            proc.wait(timeout=10)


def test_all_shards_dead_yields_lost_records():
    """With nowhere left to rehash, the submit still completes — every
    program becomes an explicit shard-lost error record."""

    proc, addr = _spawn_shard()
    router = FleetRouter([addr], retries=0, backoff=0.01)
    try:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
        reply = router.execute(
            {
                "id": 1,
                "op": "corpus.submit",
                "wait": True,
                "programs": [
                    {"name": name, "source": src}
                    for name, src in _programs(3)
                ],
            }
        )
        assert reply["ok"] is True
        result = reply["result"]
        assert result["complete"] is True
        assert sorted(result["lost"]) == ["prog00", "prog01", "prog02"]
        assert result["errors"] == 3

        results = router.execute(
            {"id": 2, "op": "corpus.results", "job": result["job"]}
        )["result"]
        assert results["count"] == 3
        assert all(
            r["error"].startswith("shard-lost") for r in results["records"]
        )

        # A routed session op with every shard dead: structured
        # shard-lost error, not a hang or a crash.
        failed = router.execute(
            {"id": 3, "op": "open", "session": "s", "source": "      end\n"}
        )
        assert failed["ok"] is False
        assert failed["error"]["type"] == "shard-lost"
    finally:
        router.close()
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
