"""Mixed-peer wire modes across the fleet: client <-> router <-> shards.

The v6 ladder is per-connection, so every hop combination must work and
agree byte-for-byte on what the client sees: a compressed client over
uncompressed shard hops, a raw JSON client over compressed shard hops,
and both ends compressed (where the router relays coalesced shard
bursts as single batch events).
"""

import threading

import pytest

from repro.fleet import AsyncTransport, FleetRouter
from repro.service import PedClient, PedServer

SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)
PROGRAMS = [{"name": f"p{i}", "source": SIMPLE} for i in range(6)]


def _build(wire: str):
    shards, addrs = [], []
    for _ in range(2):
        srv = PedServer(max_workers=2)
        transport = AsyncTransport(srv)
        port = transport.start_background()
        shards.append((srv, transport))
        addrs.append(f"127.0.0.1:{port}")
    router = FleetRouter(addrs, retries=1, backoff=0.01, wire=wire)
    rtransport = AsyncTransport(router)
    rport = rtransport.start_background()
    return shards, router, rtransport, rport


def _teardown(shards, router, rtransport):
    rtransport.stop_background()
    router.close()
    for srv, transport in shards:
        transport.stop_background()
        srv.close()


def _run(client_mode: str, wire: str):
    shards, router, rtransport, rport = _build(wire)
    try:
        events = []
        lock = threading.Lock()

        def on_event(ev):
            with lock:
                events.append(
                    (ev.data.get("program"), ev.data.get("done"),
                     ev.data.get("total"))
                )

        with PedClient.connect(port=rport) as client:
            if client_mode == "compress":
                assert client.negotiate_compression() is True
            handle = client.submit(
                "corpus.submit", programs=PROGRAMS, job="j", wait=True,
                stream=True, on_event=on_event,
            )
            reply = handle.result(120)
            value = client.request(
                "corpus.query", job="j", aggregate="summary", wait=60
            )["value"]
        progress = [e for e in events if e[0]]
        return {
            "reply": {k: reply[k]
                      for k in ("total", "done", "errors", "complete")},
            "value": value,
            "programs": sorted(p for p, _, _ in progress),
            "dones": sorted(d for _, d, _ in progress),
            "totals": sorted({t for _, _, t in progress}),
            "router_counters": dict(router.stats.counters),
        }
    finally:
        _teardown(shards, router, rtransport)


@pytest.mark.parametrize(
    "client_mode,wire",
    [
        ("json", "json"),
        ("compress", "json"),  # compressed client, uncompressed shards
        ("json", "compress"),  # raw client, compressed shard hops
        ("compress", "compress"),
    ],
)
def test_mixed_peer_fleet_parity(client_mode, wire):
    result = _run(client_mode, wire)
    assert result["reply"] == {
        "total": 6, "done": 6, "errors": 0, "complete": True,
    }
    # Fleet-wide renumbering survives every hop combination: each
    # program reported once, done counts 1..6, totals fleet-wide.
    assert result["programs"] == sorted(p["name"] for p in PROGRAMS)
    assert result["dones"] == [1, 2, 3, 4, 5, 6]
    assert result["totals"] == [6]
    counters = result["router_counters"]
    if wire == "compress":
        assert counters.get("router.wire_frames", 0) == 2
        assert counters.get("router.wire_compress", 0) == 2
    else:
        assert counters.get("router.wire_compress", 0) == 0


def test_all_modes_agree_on_aggregates():
    results = [
        _run(client_mode, wire)
        for client_mode, wire in [
            ("json", "json"), ("compress", "json"),
            ("json", "compress"), ("compress", "compress"),
        ]
    ]
    base = results[0]
    for other in results[1:]:
        assert other["value"] == base["value"]
        assert other["reply"] == base["reply"]
        assert other["programs"] == base["programs"]
