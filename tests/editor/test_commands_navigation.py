"""Unit tests for the command interpreter and navigation."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.editor.navigation import hottest_unparallelized, ranked_loops

SRC = """      program demo
      integer n
      parameter (n = 60)
      real a(n), b(n), s
      s = 0.0
      do i = 2, n
         a(i) = a(i-1) + 1.0
      end do
      do i = 1, n
         b(i) = a(i) * 2.0
         s = s + b(i)
      end do
      write (6, *) s
      end
"""


@pytest.fixture
def ped():
    return CommandInterpreter(PedSession(SRC))


class TestCommands:
    def test_units(self, ped):
        out = ped.execute("units")
        assert "demo" in out and "2 loop(s)" in out

    def test_unit_switch(self, ped):
        assert "error" in ped.execute("unit nosuch")
        assert ped.execute("unit demo") == "unit demo"

    def test_loops(self, ped):
        out = ped.execute("loops")
        assert "[0]" in out and "[1]" in out
        assert "serial" in out

    def test_select_and_deps(self, ped):
        ped.execute("select 0")
        out = ped.execute("deps")
        assert "true" in out and "a" in out

    def test_select_bad_index(self, ped):
        assert ped.execute("select 9").startswith("error:")

    def test_filter_command(self, ped):
        ped.execute("select 1")
        out = ped.execute("filter var=s carried")
        assert "var=s" in out
        deps = ped.execute("deps")
        assert "b" not in deps.split()

    def test_viewsrc_loops(self, ped):
        out = ped.execute("viewsrc loops")
        assert "loops" in out

    def test_mark_command(self, ped):
        ped.execute("select 1")
        deps_out = ped.execute("deps")
        dep_id = int(deps_out.split("#")[1].split()[0])
        out = ped.execute(f"mark {dep_id} rejected")
        assert "rejected" in out or "error" in out

    def test_mark_usage_error(self, ped):
        assert ped.execute("mark 1").startswith("error:")

    def test_assert_command(self, ped):
        out = ped.execute("assert n == 60")
        assert "assertion recorded" in out

    def test_classify_command(self, ped):
        ped.execute("select 1")
        out = ped.execute("classify s private")
        assert "reclassified" in out

    def test_advice_and_apply(self, ped):
        ped.execute("select 1")
        advice = ped.execute("advice parallelize")
        assert "applicable" in advice
        out = ped.execute("apply parallelize")
        assert "DOALL" in out

    def test_apply_unknown_transformation(self, ped):
        ped.execute("select 1")
        out = ped.execute("apply warpdrive")
        assert "error" in out

    def test_apply_with_arguments(self, ped):
        ped.execute("select 1")
        out = ped.execute("apply stripmine size=16")
        assert "blocks of 16" in out

    def test_edit_command(self, ped):
        out = ped.execute("edit 5 5 |       s = 1.0")
        assert "replaced" in out
        assert "s = 1.0" in ped.session.source

    def test_edit_usage_error(self, ped):
        assert ped.execute("edit 1").startswith("error:")

    def test_vars_command(self, ped):
        ped.execute("select 1")
        out = ped.execute("vars")
        assert "reduction" in out

    def test_show_command(self, ped):
        out = ped.execute("show")
        assert "ParaScope Editor" in out

    def test_summary_command(self, ped):
        out = ped.execute("summary")
        assert "demo" in out and "1/2" in out

    def test_undo_redo_commands(self, ped):
        ped.execute("select 1")
        ped.execute("apply parallelize")
        assert ped.execute("undo") == "undone"
        assert ped.execute("redo") == "redone"

    def test_unknown_command(self, ped):
        assert "unknown command" in ped.execute("bogus")

    def test_help(self, ped):
        out = ped.execute("help")
        assert "mark" in out and "assert" in out

    def test_run_script_collects_outputs(self, ped):
        outs = ped.run_script(["loops", "select 1", "deps"])
        assert len(outs) == 3

    def test_source_command_roundtrip(self, ped):
        out = ped.execute("source")
        assert "program demo" in out


class TestNavigation:
    def test_ranked_loops_order(self, ped):
        ranked = ranked_loops(ped.session)
        costs = [c for c, *_ in ranked]
        assert costs == sorted(costs, reverse=True)
        assert len(ranked) == 2

    def test_ranking_command(self, ped):
        out = ped.execute("ranking")
        assert "demo" in out

    def test_next_selects_hottest(self, ped):
        out = ped.execute("next")
        assert "selected loop" in out
        assert ped.session.loop_index is not None

    def test_hottest_skips_parallel(self, ped):
        ped.execute("select 1")
        ped.execute("apply parallelize")
        got = hottest_unparallelized(ped.session)
        assert got is not None
        _, _, idx, nest = got
        assert not nest.loop.parallel

    def test_all_covered_message(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 50)\n"
            "      real a(n)\n      do i = 1, n\n      a(i) = 1.0\n"
            "      end do\n      end\n"
        )
        ped = CommandInterpreter(PedSession(src))
        ped.execute("select 0")
        ped.execute("apply parallelize")
        out = ped.execute("next")
        assert "every loop" in out
