"""Tests for the Composition Editor (cross-procedure checking)."""

import pytest

from repro.editor.composition import check_composition
from repro.fortran import parse_and_bind


def issues_of(src):
    return check_composition(parse_and_bind(src))


class TestArgumentChecks:
    def test_clean_program_no_issues(self):
        src = (
            "      program t\n      real a(5)\n      call s(a, 5)\n      end\n"
            "      subroutine s(x, n)\n      integer n\n      real x(n)\n"
            "      x(1) = 0.\n      end\n"
        )
        assert issues_of(src) == []

    def test_arg_count_mismatch(self):
        src = (
            "      program t\n      call s(1, 2)\n      end\n"
            "      subroutine s(x)\n      x = 1.\n      end\n"
        )
        got = issues_of(src)
        assert len(got) == 1
        assert got[0].kind == "arg-count"
        assert "2 argument(s)" in got[0].message

    def test_type_mismatch_integer_for_real(self):
        src = (
            "      program t\n      integer k\n      k = 1\n      call s(k)\n      end\n"
            "      subroutine s(x)\n      real x\n      y = x\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "arg-type" for i in got)

    def test_literal_type_mismatch(self):
        src = (
            "      program t\n      call s(3)\n      end\n"
            "      subroutine s(x)\n      real x\n      y = x\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "arg-type" for i in got)

    def test_real_double_mixing_tolerated(self):
        src = (
            "      program t\n      double precision d\n      call s(d)\n      end\n"
            "      subroutine s(x)\n      real x\n      y = x\n      end\n"
        )
        assert not any(i.kind == "arg-type" for i in issues_of(src))

    def test_scalar_for_array_kind(self):
        src = (
            "      program t\n      x = 1.\n      call s(x)\n      end\n"
            "      subroutine s(a)\n      real a(10)\n      a(1) = 0.\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "arg-kind" and "scalar" in i.message for i in got)

    def test_array_for_scalar_kind(self):
        src = (
            "      program t\n      real a(5)\n      call s(a)\n      end\n"
            "      subroutine s(x)\n      real x\n      y = x\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "arg-kind" and "whole array" in i.message for i in got)

    def test_element_actual_for_array_formal_ok(self):
        src = (
            "      program t\n      real a(5, 5)\n      call s(a(1, 2))\n      end\n"
            "      subroutine s(x)\n      real x(5)\n      x(1) = 0.\n      end\n"
        )
        assert not any(i.kind == "arg-kind" for i in issues_of(src))

    def test_expression_for_array_formal_flagged(self):
        src = (
            "      program t\n      call s(1.0 + 2.0)\n      end\n"
            "      subroutine s(x)\n      real x(5)\n      x(1) = 0.\n      end\n"
        )
        got = issues_of(src)
        assert any("expression passed" in i.message for i in got)

    def test_function_reference_checked(self):
        src = (
            "      program t\n      y = f(1)\n      end\n"
            "      function f(x)\n      real x\n      f = x\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "arg-type" for i in got)


class TestCommonChecks:
    def test_member_count_mismatch(self):
        src = (
            "      program t\n      common /c/ a, b\n      end\n"
            "      subroutine s\n      common /c/ a\n      end\n"
        )
        got = issues_of(src)
        assert any(i.kind == "common-shape" for i in got)

    def test_member_kind_mismatch(self):
        src = (
            "      program t\n      real a(5)\n      common /c/ a, b\n      end\n"
            "      subroutine s\n      real a\n      common /c/ a, b\n      end\n"
        )
        got = issues_of(src)
        assert any("kinds differ" in i.message for i in got)

    def test_conforming_commons_clean(self):
        src = (
            "      program t\n      real a(5)\n      common /c/ a, b\n      end\n"
            "      subroutine s\n      real x(5)\n      common /c/ x, y\n      end\n"
        )
        assert issues_of(src) == []


class TestSuiteClean:
    def test_whole_suite_passes_composition(self):
        from repro.workloads import SUITE

        for prog in SUITE.values():
            got = issues_of(prog.source)
            assert got == [], (prog.name, [str(i) for i in got])


class TestCheckCommand:
    def test_command_reports(self):
        from repro.editor import CommandInterpreter, PedSession

        src = (
            "      program t\n      call s(1, 2)\n      end\n"
            "      subroutine s(x)\n      x = 1.\n      end\n"
        )
        ped = CommandInterpreter(PedSession(src))
        out = ped.execute("check")
        assert "arg-count" in out

    def test_command_clean(self):
        from repro.editor import CommandInterpreter, PedSession
        from repro.workloads import SUITE

        ped = CommandInterpreter(PedSession(SUITE["pneoss"].source))
        assert "no cross-procedure" in ped.execute("check")
