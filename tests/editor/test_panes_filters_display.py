"""Unit tests for panes, view filters, variable classification, display."""

import pytest

from repro.editor import (
    DependenceFilter,
    PedSession,
    SourceFilter,
    dependence_pane,
    loop_pane,
    render_window,
    source_pane,
    variable_pane,
)

SRC = """      program demo
      integer n
      parameter (n = 60)
      real a(n), b(n), s
      s = 0.0
      k = 0
      do i = 2, n
         a(i) = a(i-1) + 1.0
      end do
      do i = 1, n
         t = a(i) * 2.0
         b(i) = t
         s = s + b(i)
         k = k + 1
      end do
      write (6, *) s, k
      end
"""


@pytest.fixture
def session():
    s = PedSession(SRC)
    s.select_loop(1)
    return s


class TestDependenceFilter:
    def deps(self, session):
        return session.dependences()

    def test_default_hides_control(self, session):
        assert all(d.kind != "control" for d in self.deps(session))

    def test_filter_by_kind(self, session):
        session.dep_filter = DependenceFilter.parse("type=true")
        assert all(d.kind == "true" for d in self.deps(session))

    def test_filter_by_var(self, session):
        session.dep_filter = DependenceFilter.parse("var=s")
        got = self.deps(session)
        assert got and all(d.var == "s" for d in got)

    def test_filter_by_marking(self, session):
        session.dep_filter = DependenceFilter.parse("marking=pending")
        assert all(d.marking == "pending" for d in self.deps(session))

    def test_filter_carried(self, session):
        session.dep_filter = DependenceFilter.parse("carried")
        assert all(d.loop_carried for d in self.deps(session))

    def test_filter_independent(self, session):
        session.dep_filter = DependenceFilter.parse("independent")
        assert all(not d.loop_carried for d in self.deps(session))

    def test_filter_combination(self, session):
        session.dep_filter = DependenceFilter.parse("type=true,anti var=s carried")
        got = self.deps(session)
        assert all(
            d.var == "s" and d.kind in ("true", "anti") and d.loop_carried
            for d in got
        )

    def test_filter_reset_all(self):
        f = DependenceFilter.parse("var=s carried")
        f2 = DependenceFilter.parse("all")
        assert f2.var is None and not f2.carried_only

    def test_bad_token_raises(self):
        with pytest.raises(ValueError):
            DependenceFilter.parse("wibble=3")

    def test_describe(self):
        f = DependenceFilter.parse("type=true var=a carried")
        text = f.describe()
        assert "var=a" in text and "carried" in text


class TestSourceFilter:
    def test_loops_only(self, session):
        session.src_filter = SourceFilter(loops_only=True)
        rows = source_pane(session)
        assert rows
        assert all(
            r.text.strip().startswith(("do ", "end do")) for r in rows
        )

    def test_contains(self, session):
        session.src_filter = SourceFilter(contains="s = s")
        rows = source_pane(session)
        assert len(rows) == 1

    def test_all_lines_by_default(self, session):
        rows = source_pane(session)
        assert len(rows) == len([l for l in session.source.splitlines()])


class TestPanes:
    def test_source_pane_selection_highlight(self, session):
        rows = source_pane(session)
        selected = [r for r in rows if r.selected]
        texts = "\n".join(r.text for r in selected)
        assert "do i = 1, n" in texts
        assert "s = s + b(i)" in texts
        assert not any("a(i-1)" in r.text for r in selected)

    def test_loop_pane_rows(self, session):
        rows = loop_pane(session)
        assert len(rows) == 2
        assert "serial" in rows[0].verdict
        assert rows[1].verdict == "parallelizable"

    def test_loop_pane_doall_after_apply(self, session):
        session.apply("parallelize")
        rows = loop_pane(session)
        assert rows[1].verdict == "DOALL"

    def test_dependence_pane_sorted_true_first(self, session):
        rows = dependence_pane(session)
        kinds = [r.kind for r in rows]
        if "true" in kinds:
            assert kinds[0] == "true"

    def test_variable_pane_classifications(self, session):
        rows = {r.name: r for r in variable_pane(session)}
        assert rows["i"].classification == "index"
        assert rows["t"].classification == "private"
        assert rows["s"].classification == "reduction"
        assert rows["k"].classification in ("induction", "reduction")
        assert rows["a"].classification == "shared"

    def test_variable_pane_override_star(self, session):
        session.reclassify("t", "private")
        rows = {r.name: r for r in variable_pane(session)}
        assert rows["t"].user_override

    def test_variable_pane_empty_without_selection(self, session):
        session.loop_index = None
        assert variable_pane(session) == []


class TestDisplay:
    def test_window_sections_in_order(self, session):
        window = render_window(session)
        idx = [
            window.index("== source"),
            window.index("== loops"),
            window.index("== dependences"),
            window.index("== variables"),
        ]
        assert idx == sorted(idx)

    def test_window_width_bounded(self, session):
        window = render_window(session)
        assert all(len(line) <= 78 for line in window.splitlines())

    def test_window_deterministic(self, session):
        assert render_window(session) == render_window(session)

    def test_window_shows_doall_marker(self, session):
        session.apply("parallelize")
        window = render_window(session)
        assert "c$par doall" in window

    def test_window_scrolls_to_selection(self):
        # A long prelude pushes the loop past the first screenful.
        filler = "".join(f"      x{i} = {i}.0\n" for i in range(40))
        src = (
            "      program big\n      real a(50)\n"
            + filler
            + "      do i = 1, 50\n      a(i) = 1.0\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.select_loop(0)
        window = render_window(session)
        assert "do i = 1, 50" in window
        assert "earlier lines" in window
