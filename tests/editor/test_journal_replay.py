"""Event-sourcing invariants on a live session.

The core bar: the live session state IS a replay of its journal — at
*every* prefix, :func:`replay_journal` reproduces the same analysis
fingerprint, source text and selection the live session had when that
record was appended.  On top of that: interned snapshots share piece
strings, the snapshot cache evicts past its cap (bumping
``session.undo_evicted``) and falls back to journal replay
(``session.undo_replayed``) with identical results, and failed
mutations never journal.
"""

import pytest

from repro.editor import PedSession
from repro.editor.journal import replay_journal
from repro.incremental.fingerprint import fingerprint_digest
from repro.interproc import FeatureSet

SOURCE = (
    "      program main\n"
    "      real a(100), b(100)\n"
    "      call work(a, b, 100)\n"
    "      end\n"
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

FEATURES = FeatureSet(scalar_kill=False)


def _fingerprint(session):
    return fingerprint_digest(session.analysis)


def _drive(session):
    """A representative mutation sequence touching every record type."""

    session.select_unit("work")
    session.select_loop(1)
    session.reclassify("s", "private")
    session.edit(8, 8, "         a(i) = a(i) + 2.0")
    session.select_unit("work")
    session.add_assertion("n >= 1")
    session.select_loop(0)
    pending = sorted(
        (d for d in session.dependences() if d.marking == "pending"),
        key=lambda d: (d.var, d.kind, d.src_line, d.dst_line),
    )
    if pending:
        session.mark_dependence(pending[0].id, "rejected")
    session.undo()
    session.redo()


def test_replay_parity_at_every_prefix():
    live = PedSession(SOURCE, features=FEATURES)
    checkpoints = [(0, _fingerprint(live), live.source, live.undo_depth)]
    before = 0
    # Re-checkpoint after each journal growth step.
    for step in (
        lambda s: s.select_unit("work"),
        lambda s: s.select_loop(1),
        lambda s: s.reclassify("s", "private"),
        lambda s: s.edit(8, 8, "         a(i) = a(i) + 2.0"),
        lambda s: s.add_assertion("n >= 1"),
        lambda s: s.undo(),
        lambda s: s.redo(),
    ):
        step(live)
        after = len(live.journal)
        assert after > before, "every step must append at least one record"
        before = after
        checkpoints.append(
            (after, _fingerprint(live), live.source, live.undo_depth)
        )

    for position, digest, source, undo_depth in checkpoints:
        replayed = replay_journal(live.journal, position, features=FEATURES)
        assert _fingerprint(replayed) == digest, f"prefix {position} diverged"
        assert replayed.source == source
        assert replayed.undo_depth == undo_depth
        # The replayed session rebuilt the identical journal prefix.
        assert replayed.journal.records == live.journal.records[:position]
        replayed.close()
    live.close()


def test_replay_reproduces_selection_at_mutation_time():
    live = PedSession(SOURCE, features=FEATURES)
    live.select_unit("work")
    live.select_loop(1)
    live.reclassify("s", "private")
    replayed = replay_journal(live.journal, features=FEATURES)
    assert replayed.current_unit == "work"
    assert replayed.selected_loop is replayed.loops()[1].loop
    replayed.close()
    live.close()


def test_snapshots_intern_shared_unit_texts():
    session = PedSession(SOURCE, features=FEATURES)
    session.select_unit("work")
    session.add_assertion("n >= 1")
    session.edit(8, 8, "         a(i) = a(i) + 2.0")
    snaps = list(session._snapshots.values())
    assert len(snaps) >= 2
    # The untouched ``main`` unit's text is the same interned object in
    # every snapshot — bounded memory even at deep undo depths.
    shared = [
        piece
        for piece in snaps[0].pieces
        if "program main" in piece
    ]
    assert shared
    for snap in snaps[1:]:
        assert any(piece is shared[0] for piece in snap.pieces)
    # Snapshots still reassemble the exact source they captured.
    assert snaps[-1].source == session._snapshots[
        max(session._snapshots)
    ].source
    session.close()


def test_eviction_bumps_counter_and_undo_falls_back_to_replay():
    session = PedSession(SOURCE, features=FEATURES, max_snapshots=2)
    states = [(fingerprint_digest(session.analysis), session.source)]
    session.select_unit("work")
    for step, text in enumerate(
        (
            "         a(i) = a(i) + 2.0",
            "         a(i) = a(i) + 3.0",
            "         a(i) = a(i) + 4.0",
            "         a(i) = a(i) + 5.0",
        )
    ):
        session.edit(8, 8, text)
        states.append((fingerprint_digest(session.analysis), session.source))

    counters = session.engine.stats.counters
    assert counters.get("session.undo_evicted", 0) > 0
    assert len(session._snapshots) <= 2

    # Undo all the way past the evicted positions: each restore must
    # still land on the exact prior state, via replay when the snapshot
    # is gone.
    for expect in reversed(states[:-1]):
        session.undo()
        assert (fingerprint_digest(session.analysis), session.source) == expect
    assert counters.get("session.undo_replayed", 0) > 0

    # And forward again through redo.
    for expect in states[1:]:
        session.redo()
        assert (fingerprint_digest(session.analysis), session.source) == expect
    session.close()


def test_failed_mutation_does_not_journal():
    session = PedSession(SOURCE, features=FEATURES)
    session.select_unit("work")
    before = list(session.journal.records)
    depth = session.undo_depth
    with pytest.raises(Exception):
        session.edit(8, 8, "         this is not fortran (")
    assert session.journal.records == before
    assert session.undo_depth == depth
    # The session still works and journals the next good mutation.
    session.add_assertion("n >= 1")
    assert session.journal.records[-1].op == "assert"
    session.close()


def test_max_snapshots_floor_is_one():
    session = PedSession(SOURCE, max_snapshots=0)
    assert session._max_snapshots == 1
    session.close()
