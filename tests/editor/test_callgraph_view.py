"""Tests for the call-graph views (the users' 'big picture' request)."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.editor.callgraph_view import ascii_tree, to_dot
from repro.workloads import SUITE


@pytest.fixture(scope="module")
def session():
    return PedSession(SUITE["spec77"].source)


class TestAsciiTree:
    def test_rooted_at_main(self, session):
        tree = ascii_tree(session.analysis)
        first = tree.splitlines()[0]
        assert first.startswith("spec77")

    def test_indentation_reflects_depth(self, session):
        tree = ascii_tree(session.analysis)
        lines = tree.splitlines()
        gloop = next(l for l in lines if l.strip().startswith("gloop"))
        advecu = next(l for l in lines if l.strip().startswith("advecu"))
        assert len(advecu) - len(advecu.lstrip()) > len(gloop) - len(gloop.lstrip())

    def test_verdict_annotations(self, session):
        tree = ascii_tree(session.analysis)
        assert "parallelizable" in tree

    def test_recursion_marked(self):
        src = (
            "      program t\n      call even(4)\n      end\n"
            "      subroutine even(n)\n      integer n\n"
            "      if (n .gt. 0) call odd(n - 1)\n      end\n"
            "      subroutine odd(n)\n      integer n\n"
            "      if (n .gt. 0) call even(n - 1)\n      end\n"
        )
        tree = ascii_tree(PedSession(src).analysis)
        assert "(recursive)" in tree


class TestDot:
    def test_valid_structure(self, session):
        dot = to_dot(session.analysis)
        assert dot.startswith("digraph callgraph {")
        assert dot.rstrip().endswith("}")
        assert '"gloop" -> "advecu";' in dot

    def test_colors_by_verdict(self, session):
        dot = to_dot(session.analysis)
        assert "palegreen" in dot  # fully parallelizable units exist
        assert "lightgrey" in dot or "khaki" in dot or "lightcoral" in dot

    def test_edges_deduplicated(self, session):
        dot = to_dot(session.analysis)
        # gloop calls advecu once per field stage, but one edge suffices.
        assert dot.count('"gloop" -> "advecu";') == 1


class TestCommand:
    def test_callgraph_command(self, session):
        ped = CommandInterpreter(session)
        out = ped.execute("callgraph")
        assert "spec77" in out and "cycles" in out

    def test_callgraph_dot_command(self, session):
        ped = CommandInterpreter(session)
        assert "digraph" in ped.execute("callgraph dot")
