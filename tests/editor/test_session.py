"""Unit tests for PedSession: selection, mutation, undo, reanalysis."""

import pytest

from repro.editor.session import PedError, PedSession
from repro.interproc import FeatureSet

SRC = """      program demo
      integer n
      parameter (n = 60)
      real a(n), b(n), s
      s = 0.0
      do i = 2, n
         a(i) = a(i-1) + 1.0
      end do
      do i = 1, n
         b(i) = a(i) * 2.0
         s = s + b(i)
      end do
      write (6, *) s
      end
"""


@pytest.fixture
def session():
    return PedSession(SRC)


class TestSelection:
    def test_initial_unit(self, session):
        assert session.current_unit == "demo"

    def test_select_unknown_unit(self, session):
        with pytest.raises(PedError):
            session.select_unit("nosuch")

    def test_loops_listed(self, session):
        assert len(session.loops()) == 2

    def test_select_loop(self, session):
        session.select_loop(1)
        assert session.selected_loop is session.loops()[1].loop

    def test_select_out_of_range(self, session):
        with pytest.raises(PedError):
            session.select_loop(5)

    def test_selected_info(self, session):
        session.select_loop(0)
        info = session.selected_info
        assert not info.parallelizable

    def test_dependences_scoped_to_loop(self, session):
        session.select_loop(0)
        deps0 = session.dependences()
        session.select_loop(1)
        deps1 = session.dependences()
        vars0 = {d.var for d in deps0}
        vars1 = {d.var for d in deps1}
        assert "a" in vars0
        assert "s" in vars1


class TestMarking:
    def test_mark_pending_rejected(self, session):
        session.select_loop(1)
        pend = [d for d in session.dependences() if d.marking == "pending"]
        assert pend
        msg = session.mark_dependence(pend[0].id, "rejected")
        assert "rejected" in msg

    def test_marking_survives_reanalysis(self, session):
        session.select_loop(1)
        pend = [d for d in session.dependences() if d.marking == "pending"]
        dep = pend[0]
        key = (dep.kind, dep.var, dep.src_line, dep.dst_line)
        session.mark_dependence(dep.id, "rejected")
        session.reanalyze()
        session.select_loop(1)
        match = [
            d
            for d in session.dependences(unfiltered=True)
            if (d.kind, d.var, d.src_line, d.dst_line) == key
        ]
        assert match and match[0].marking == "rejected"

    def test_proven_cannot_be_rejected(self, session):
        session.select_loop(0)
        proven = [d for d in session.dependences() if d.marking == "proven"]
        assert proven
        with pytest.raises(PedError):
            session.mark_dependence(proven[0].id, "rejected")

    def test_rejecting_unlocks_parallelization(self):
        # A pending (symbolic) dependence the user knows is false.
        src = (
            "      program t\n      real a(50)\n      do i = 1, 20\n"
            "      a(i) = a(i + m) + 1.0\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.select_loop(0)
        assert not session.selected_info.parallelizable
        for dep in list(session.dependences()):
            if dep.marking == "pending" and dep.loop_carried:
                session.mark_dependence(dep.id, "rejected")
        assert session.selected_info.parallelizable


class TestAssertionsAndOverrides:
    def test_assertion_reanalyzes(self):
        src = (
            "      program t\n      real a(50)\n      integer ip(50)\n"
            "      do i = 1, 50\n      a(ip(i)) = a(ip(i)) + 1.0\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.select_loop(0)
        assert not session.selected_info.parallelizable
        session.add_assertion("distinct ip")
        session.select_loop(0)
        assert session.selected_info.parallelizable

    def test_bad_assertion_rejected(self, session):
        with pytest.raises(PedError):
            session.add_assertion("what even is this")

    def test_reclassify_private(self):
        src = (
            "      program t\n      real a(50), b(50)\n      do i = 1, 50\n"
            "      b(i) = t\n      t = a(i)\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.select_loop(0)
        assert not session.selected_info.parallelizable
        session.reclassify("t", "private")
        session.select_loop(0)
        assert session.selected_info.parallelizable

    def test_reclassify_requires_selection(self, session):
        session.loop_index = None
        with pytest.raises(PedError):
            session.reclassify("s", "private")


class TestTransformsAndEdit:
    def test_apply_parallelize(self, session):
        session.select_loop(1)
        msg = session.apply("parallelize")
        assert "DOALL" in msg
        assert "c$par doall" in session.source

    def test_apply_unsafe_raises_and_rolls_back(self, session):
        before = session.source
        session.select_loop(0)
        with pytest.raises(PedError):
            session.apply("parallelize")
        assert session.source == before

    def test_edit_replaces_lines(self, session):
        lines = session.source.splitlines()
        target = next(i for i, t in enumerate(lines, 1) if "s = 0.0" in t)
        session.edit(target, target, "      s = 1.0")
        assert "s = 1.0" in session.source

    def test_edit_syntax_error_rolled_back(self, session):
        before = session.source
        with pytest.raises(PedError):
            session.edit(5, 5, "      this is (((not fortran")
        assert session.source == before

    def test_edit_out_of_range(self, session):
        with pytest.raises(PedError):
            session.edit(999, 1000, "x = 1")


class TestUndoRedo:
    def test_undo_transformation(self, session):
        before = session.source
        session.select_loop(1)
        session.apply("parallelize")
        assert session.source != before
        session.undo()
        assert session.source == before

    def test_redo(self, session):
        session.select_loop(1)
        session.apply("parallelize")
        after = session.source
        session.undo()
        session.redo()
        assert session.source == after

    def test_undo_empty_raises(self, session):
        with pytest.raises(PedError):
            session.undo()

    def test_undo_assertion(self):
        src = (
            "      program t\n      real a(50)\n      integer ip(50)\n"
            "      do i = 1, 50\n      a(ip(i)) = a(ip(i)) + 1.0\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.add_assertion("distinct ip")
        session.undo()
        session.select_loop(0)
        assert not session.selected_info.parallelizable

    def test_new_action_clears_redo(self, session):
        session.select_loop(1)
        session.apply("parallelize")
        session.undo()
        session.select_loop(1)
        session.apply("privatize", var="i") if False else session.apply(
            "parallelize"
        )
        with pytest.raises(PedError):
            session.redo()


class TestFeatures:
    def test_minimal_features_conservative(self):
        session = PedSession(SRC, features=FeatureSet.minimal())
        session.select_loop(1)
        # Without reduction recognition the s accumulation blocks.
        assert not session.selected_info.parallelizable

    def test_parallel_summary(self, session):
        rows = session.parallel_summary()
        assert rows == [("demo", 1, 2)]
