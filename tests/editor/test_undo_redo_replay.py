"""Undo/redo across interleaved edits, assertions, markings and
reclassifications.

The bar (from the incremental-engine work): restoring a snapshot must
reproduce *exactly* the state a fresh session reaches by replaying the
same operation prefix — same ``parallel_summary()``, same dependence
edges and markings, same verdicts — even though the restore runs through
the warm engine caches and the replay runs cold.
"""

import pytest

from repro.editor import PedSession
from repro.incremental import unit_fingerprint
from repro.interproc import FeatureSet

SOURCE = (
    "      program main\n"
    "      real a(100), b(100)\n"
    "      call work(a, b, 100)\n"
    "      end\n"
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

# Scalar kill off: the temporary ``s`` keeps its carried dependences
# pending, so markings and reclassification have real work to do.
FEATURES = FeatureSet(scalar_kill=False)


def _op_edit(session):
    session.edit(8, 8, "         a(i) = a(i) + 2.0")


def _op_assert(session):
    session.select_unit("work")
    session.add_assertion("n >= 1")


def _op_mark(session):
    session.select_unit("work")
    session.select_loop(1)
    pending = sorted(
        (d for d in session.dependences() if d.marking == "pending"),
        key=lambda d: (d.var, d.kind, d.src_line, d.dst_line),
    )
    session.mark_dependence(pending[0].id, "rejected")


def _op_reclassify(session):
    session.select_unit("work")
    session.select_loop(1)
    session.reclassify("s", "private")


OPS = [_op_edit, _op_assert, _op_mark, _op_reclassify]


def _state(session):
    return (
        tuple(session.parallel_summary()),
        tuple(
            (name, unit_fingerprint(session.analysis.unit(name)))
            for name in sorted(session.analysis.units)
        ),
    )


def _replayed_state(prefix_len):
    fresh = PedSession(SOURCE, features=FEATURES)
    for op in OPS[:prefix_len]:
        op(fresh)
    return _state(fresh)


def test_undo_redo_matches_fresh_session_replay():
    session = PedSession(SOURCE, features=FEATURES)
    states = [_state(session)]
    for op in OPS:
        op(session)
        states.append(_state(session))

    # The reclassification actually flipped the verdict on loop 1.
    assert states[-1][0] != states[0][0]

    # Walk all the way back: each undo lands exactly on the prior state.
    for prefix_len in range(len(OPS) - 1, -1, -1):
        session.undo()
        assert _state(session) == states[prefix_len]
        assert _state(session) == _replayed_state(prefix_len)

    # And forward again: each redo lands exactly on the next state.
    for prefix_len in range(1, len(OPS) + 1):
        session.redo()
        assert _state(session) == states[prefix_len]
        assert _state(session) == _replayed_state(prefix_len)


def test_undo_mid_history_then_new_op_drops_redo():
    session = PedSession(SOURCE, features=FEATURES)
    for op in OPS:
        op(session)
    session.undo()
    session.undo()
    # A new operation after undo forks history: redo is cleared.
    _op_assert(session)
    from repro.editor.session import PedError

    with pytest.raises(PedError):
        session.redo()
    # The forked timeline still matches a fresh replay of its own ops.
    fresh = PedSession(SOURCE, features=FEATURES)
    _op_edit(fresh)
    _op_assert(fresh)
    _op_assert(fresh)
    assert _state(session) == _state(fresh)


def test_undo_restores_state_but_not_navigation():
    session = PedSession(SOURCE, features=FEATURES)
    session.select_unit("work")
    session.select_loop(0)
    _op_reclassify(session)  # navigates to loop 1, then reclassifies
    assert session.loop_index == 1
    overridden = _state(session)
    session.undo()
    # Navigation is not an undoable action: the snapshot is taken at the
    # moment of the reclassify, so the selection stays on loop 1 — but
    # the override itself is gone.
    assert session.current_unit == "work"
    assert session.loop_index == 1
    assert session.overrides == {}
    assert _state(session) != overridden
    session.redo()
    assert _state(session) == overridden
