"""Tests for the estimate / profile / goto editor commands."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.workloads import SUITE


@pytest.fixture
def ped():
    session = PedSession(SUITE["pneoss"].source)
    return CommandInterpreter(session)


class TestEstimate:
    def test_requires_selection(self, ped):
        assert ped.execute("estimate").startswith("error:")

    def test_reports_cycles_and_speedup(self, ped):
        ped.execute("unit eos")
        ped.execute("select 0")
        out = ped.execute("estimate")
        assert "sequential" in out and "speedup" in out
        assert "trip ≈ 48" in out


class TestProfile:
    def test_hottest_loops_listed(self, ped):
        out = ped.execute("profile")
        assert "iterations" in out
        assert "eos" in out or "init" in out

    def test_profile_counts_plausible(self, ped):
        out = ped.execute("profile")
        # All three sweeps run 47-48 iterations.
        assert "48" in out or "47" in out


class TestGoto:
    def test_shows_both_endpoints(self, ped):
        ped.execute("unit relax")
        ped.execute("select 0")
        deps = ped.execute("deps")
        dep_id = int(deps.split("#")[1].split()[0])
        out = ped.execute(f"goto {dep_id}")
        assert "source:" in out and "sink:" in out

    def test_usage_error(self, ped):
        assert ped.execute("goto notanumber").startswith("error:")

    def test_unknown_id(self, ped):
        assert ped.execute("goto 99999").startswith("error:")
