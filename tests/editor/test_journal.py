"""The mutation journal itself: record typing, wire round-trips, replay
dispatch errors.

The property tests pin the serialization contract: every mutation type's
record survives ``to_wire`` → JSON → ``from_wire`` identically, for
arbitrary argument values — the invariant the durable journal file and
the ``session.log``/``session.replay`` wire ops all lean on.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.editor.journal import (
    JOURNAL_VERSION,
    JournalError,
    MutationRecord,
    SessionJournal,
    apply_record,
    replay_journal,
)
from repro.editor.session import PedSession

# Values that must pass through a record untouched (JSON scalars plus
# nested lists/dicts of them; no NaN — JSON round-trips it as a float
# that != itself, and no mutation ever records one).
_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=40),
)
_json_values = st.recursive(
    _scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.dictionaries(st.text(max_size=10), inner, max_size=4),
    ),
    max_leaves=10,
)

_texts = st.text(max_size=200)

# One strategy per mutation type, covering the whole record vocabulary.
_records = st.one_of(
    st.builds(
        lambda s, e, t: ("edit", {"start": s, "end": e, "text": t}),
        st.integers(min_value=1, max_value=10_000),
        st.integers(min_value=1, max_value=10_000),
        _texts,
    ),
    st.builds(
        lambda n, a: ("apply", {"transform": n, "args": a}),
        st.text(min_size=1, max_size=30),
        st.dictionaries(st.text(max_size=10), _json_values, max_size=4),
    ),
    st.builds(lambda t: ("assert", {"text": t}), _texts),
    st.builds(
        lambda d, m: ("mark", {"dep": d, "marking": m}),
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from(["accepted", "rejected", "pending"]),
    ),
    st.builds(
        lambda v, c: ("reclassify", {"var": v, "classification": c}),
        st.text(min_size=1, max_size=20),
        st.sampled_from(["private", "shared"]),
    ),
    st.builds(lambda u: ("select", {"unit": u}), st.text(max_size=20)),
    st.builds(
        lambda i: ("select", {"loop": i}),
        st.integers(min_value=0, max_value=100),
    ),
    st.just(("undo", {})),
    st.just(("redo", {})),
)


@settings(max_examples=200, deadline=None)
@given(_records)
def test_every_record_type_round_trips(op_args):
    op, args = op_args
    record = MutationRecord(op, args)
    wired = json.loads(json.dumps(record.to_wire()))
    assert MutationRecord.from_wire(wired) == record


@settings(max_examples=50, deadline=None)
@given(st.lists(_records, max_size=20), _texts)
def test_journal_round_trips(record_list, base):
    journal = SessionJournal(base_source=base)
    for op, args in record_list:
        journal.append(op, **args)
    wired = json.loads(json.dumps(journal.to_wire()))
    back = SessionJournal.from_wire(wired)
    assert back.base_source == journal.base_source
    assert back.records == journal.records


def test_append_rejects_unknown_op():
    journal = SessionJournal(base_source="")
    with pytest.raises(JournalError):
        journal.append("format-disk")


def test_from_wire_rejects_unknown_op_and_versions():
    with pytest.raises(JournalError):
        MutationRecord.from_wire({"op": "format-disk", "args": {}})
    with pytest.raises(JournalError):
        SessionJournal.from_wire(
            {"version": JOURNAL_VERSION + 1, "base": "", "records": []}
        )
    with pytest.raises(JournalError):
        SessionJournal.from_wire({"version": JOURNAL_VERSION, "records": []})


def test_listener_sees_every_append():
    seen = []
    journal = SessionJournal(base_source="x")
    journal.listener = seen.append
    journal.append("select", unit="a")
    journal.append("undo")
    assert [r.op for r in seen] == ["select", "undo"]


def test_opaque_arguments_survive_but_refuse_replay():
    """AST-valued arguments (library code calling ``apply`` directly)
    keep the journal appendable, but the record says so and replay
    fails loudly instead of diverging silently."""

    class Node:
        def __repr__(self):
            return "<DoLoop i>"

    journal = SessionJournal(base_source="")
    record = journal.append("apply", transform="t", args={"loop": Node()})
    assert not record.replayable
    # Still JSON-serializable:
    json.dumps(record.to_wire())
    with pytest.raises(JournalError, match="non-serializable"):
        apply_record(object(), record)


SIMPLE = (
    "      program p\n"
    "      real a(10)\n"
    "      do 10 i = 1, 10\n"
    "         a(i) = i\n"
    " 10   continue\n"
    "      end\n"
)


def test_live_session_journal_round_trips_through_json():
    session = PedSession(SIMPLE)
    session.select_unit("p")
    session.select_loop(0)
    session.edit(4, 4, "         a(i) = i + 1")
    session.undo()
    session.redo()
    wired = json.loads(json.dumps(session.journal.to_wire()))
    back = SessionJournal.from_wire(wired)
    assert back.records == session.journal.records
    assert back.base_source == SIMPLE
    session.close()


def test_replay_record_missing_argument():
    class Stub:
        def edit(self, *a):  # pragma: no cover - never reached
            raise AssertionError("should fail before dispatch completes")

    with pytest.raises(JournalError, match="missing argument"):
        apply_record(Stub(), MutationRecord("edit", {"start": 1}))


def test_replay_journal_rebuilds_state():
    journal = SessionJournal(base_source=SIMPLE)
    journal.append("select", unit="p")
    journal.append("edit", start=4, end=4, text="         a(i) = 2*i")
    session = replay_journal(journal)
    assert "2*i" in session.source
    # The replayed session journals its own replay — same records.
    assert session.journal.records == journal.records
    session.close()
