"""Variable reclassifications must survive edits that renumber loops —
and must be *reported*, not silently dropped, when their loop vanishes."""

import pytest

from repro.editor import PedSession
from repro.interproc import FeatureSet

SOURCE = (
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      integer n\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

FEATURES = FeatureSet(scalar_kill=False)


def _session_with_override():
    session = PedSession(SOURCE, features=FEATURES)
    session.select_unit("work")
    session.select_loop(1)
    session.reclassify("s", "private")
    assert session.selected_info.parallelizable
    return session


def test_override_follows_loop_when_earlier_loop_is_deleted():
    session = _session_with_override()
    # Delete the i-loop: the j-loop renumbers from index 1 to index 0.
    session.edit(4, 6, "")
    assert session.warnings == []
    assert session.overrides == {"work": {0: {"s": "private"}}}
    session.select_unit("work")
    session.select_loop(0)
    assert session.selected_loop.var == "j"
    assert session.selected_info.parallelizable


def test_override_follows_loop_when_lines_are_inserted_above():
    session = _session_with_override()
    session.edit(
        4,
        6,
        "      do i = 1, n\n"
        "         a(i) = a(i) + 1.0\n"
        "      enddo\n"
        "      do k = 1, n\n"
        "         a(k) = a(k) * 0.5\n"
        "      enddo",
    )
    assert session.warnings == []
    # A new loop appeared above: the override moves from index 1 to 2.
    assert session.overrides == {"work": {2: {"s": "private"}}}
    session.select_unit("work")
    session.select_loop(2)
    assert session.selected_loop.var == "j"
    assert session.selected_info.parallelizable


def test_deleting_the_overridden_loop_reports_the_drop():
    session = _session_with_override()
    message = session.edit(7, 10, "")
    assert session.overrides == {}
    assert len(session.warnings) == 1
    assert "dropped reclassification" in session.warnings[0]
    assert "s" in session.warnings[0]
    assert "warning:" in message


def test_deleting_the_whole_unit_reports_the_drop():
    two_units = SOURCE + (
        "      subroutine other(x)\n"
        "      x = 1.0\n"
        "      end\n"
    )
    session = PedSession(two_units, features=FEATURES)
    session.select_unit("work")
    session.select_loop(1)
    session.reclassify("s", "private")
    session.edit(1, 11, "")
    assert session.overrides == {}
    assert any("no longer exists" in w for w in session.warnings)


def test_stale_override_without_matching_loop_warns_not_skips():
    session = PedSession(SOURCE, features=FEATURES)
    # A legacy override pointing at a loop index that does not exist
    # (e.g. restored from an old snapshot with no anchor) is reported by
    # the remapping pass, not silently skipped.
    session.overrides = {"work": {9: {"s": "private"}}}
    session.reanalyze()
    assert any(
        "dropped reclassification" in w and "loop[9]" in w
        for w in session.warnings
    )
    assert session.overrides == {}
    # And the application-time backstop warns too, should a stale entry
    # ever reach it directly.
    session.warnings = []
    session.overrides = {"work": {9: {"s": "private"}}}
    session._apply_overrides(session.analysis.unit("work"))
    assert any("has no matching loop" in w for w in session.warnings)


def test_undo_restores_dropped_override():
    session = _session_with_override()
    session.edit(7, 10, "")
    assert session.overrides == {}
    session.undo()
    assert session.overrides == {"work": {1: {"s": "private"}}}
    session.select_unit("work")
    session.select_loop(1)
    assert session.selected_info.parallelizable
