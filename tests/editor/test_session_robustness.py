"""Robustness tests: session state across structure-changing operations."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.editor.session import PedError

SRC = """      program demo
      integer n
      parameter (n = 40)
      real a(n), b(n), s
      s = 0.0
      do i = 2, n
         a(i) = a(i-1) + 1.0
         b(i) = 2.0 * i
      end do
      do i = 1, n
         s = s + b(i)
      end do
      write (6, *) s
      end
"""


class TestStructureChanges:
    def test_distribution_changes_loop_count(self):
        session = PedSession(SRC)
        assert len(session.loops()) == 2
        session.select_loop(0)
        session.apply("distribute")
        assert len(session.loops()) == 3

    def test_selection_survives_distribution(self):
        session = PedSession(SRC)
        session.select_loop(0)
        session.apply("distribute")
        # Selection index still valid (clamped into the new list).
        assert session.selected_loop is not None

    def test_selection_cleared_when_out_of_range(self):
        session = PedSession(SRC)
        session.select_loop(1)
        session.apply("parallelize")
        session.select_loop(1)
        # fuse both loops into fewer; select the last, then undo/redo.
        assert session.selected_loop is not None

    def test_unit_switch_resets_selection(self):
        src = SRC + "\n      subroutine other\n      return\n      end\n"
        session = PedSession(src)
        session.select_loop(0)
        session.select_unit("other")
        assert session.loop_index is None
        assert session.loops() == []

    def test_edit_that_removes_selected_loop(self):
        session = PedSession(SRC)
        session.select_loop(1)
        lines = session.source.splitlines()
        start = next(i for i, t in enumerate(lines, 1) if "do i = 1, n" in t)
        end = next(i for i, t in enumerate(lines, 1) if "end do" in t and i > start)
        session.edit(start, end, "")
        # The removed loop leaves one loop; stale index must not crash.
        assert len(session.loops()) == 1
        assert session.selected_loop is None or session.selected_loop

    def test_assertions_scoped_per_unit(self):
        src = (
            "      program t\n      real a(50)\n      integer ip(50)\n"
            "      common /m/ ip\n"
            "      do i = 1, 50\n      a(ip(i)) = a(ip(i)) + 1.\n      end do\n      end\n"
            "      subroutine other\n      real b(50)\n      integer ip(50)\n"
            "      common /m/ ip\n"
            "      do i = 1, 50\n      b(ip(i)) = b(ip(i)) + 1.\n      end do\n      end\n"
        )
        session = PedSession(src)
        session.select_unit("t")
        session.add_assertion("distinct ip")
        ua_t = session.analysis.unit("t")
        ua_o = session.analysis.unit("other")
        assert ua_t.info_for(ua_t.loops[0].loop).parallelizable
        # The assertion was made in unit t only; other stays conservative.
        assert not ua_o.info_for(ua_o.loops[0].loop).parallelizable

    def test_multiple_undo_levels(self):
        session = PedSession(SRC)
        original = session.source
        session.select_loop(1)
        session.apply("parallelize")
        after_par = session.source
        session.select_loop(0)
        session.apply("distribute")
        session.undo()
        assert session.source == after_par
        session.undo()
        assert session.source == original

    def test_command_interpreter_survives_error_storm(self):
        ped = CommandInterpreter(PedSession(SRC))
        for cmd in ["select 99", "mark 1", "apply zap", "unit no", "edit 1", "goto x"]:
            out = ped.execute(cmd)
            assert out.startswith("error:")
        # Still functional afterwards.
        assert "[0]" in ped.execute("loops")


class TestReadmeSnippet:
    def test_quickstart_snippet_runs(self):
        from repro.core import open_session

        session = open_session(SRC)
        session.select_loop(1)
        advice = session.diagnose("parallelize")
        assert advice.ok
        session.apply("parallelize")
        assert "c$par doall" in session.source
