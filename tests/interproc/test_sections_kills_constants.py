"""Unit tests for regular sections, interprocedural kill and constants."""

import pytest

from repro.fortran import parse_and_bind
from repro.interproc import (
    build_callgraph,
    compute_ip_constants,
    compute_kills,
    compute_sections,
    make_section_provider,
)
from repro.interproc.ipkill import privatizable_arrays


def setup(src):
    sf = parse_and_bind(src)
    cg = build_callgraph(sf)
    return sf, cg


class TestSections:
    def test_whole_array_write_section(self):
        src = (
            "      subroutine s(x, k)\n      integer k\n      real x(k)\n"
            "      do i = 1, k\n      x(i) = 0.0\n      end do\n      end\n"
        )
        sf, cg = setup(src)
        sections = compute_sections(cg)
        summary = sections["s"].arrays[("formal", 0)]
        writes = [r for r in summary.records if r.is_write]
        assert writes
        dim = writes[0].dims[0]
        assert dim[0] == "range"
        assert dim[1].int_value() == 1  # lower bound 1
        assert dim[2].coeff("k") == 1  # upper bound k

    def test_point_access_section(self):
        src = "      subroutine s(x, j)\n      real x(10)\n      x(j) = 1.\n      end\n"
        sf, cg = setup(src)
        sections = compute_sections(cg)
        summary = sections["s"].arrays[("formal", 0)]
        dim = summary.records[0].dims[0]
        assert dim[0] == "point" and dim[1].coeff("j") == 1

    def test_provider_column_idiom(self):
        src = (
            "      program main\n      real a(8, 8)\n"
            "      do j = 1, 8\n      call col(a(1, j), 8)\n      end do\n      end\n"
            "      subroutine col(x, k)\n      integer k\n      real x(k)\n"
            "      do i = 1, k\n      x(i) = 0.0\n      end do\n      end\n"
        )
        sf, cg = setup(src)
        sections = compute_sections(cg)
        provider = make_section_provider(cg, sections)
        main = sf.unit("main")
        call = main.body[0].body[0]
        accesses = provider(call, main)
        assert accesses
        acc = accesses[0]
        assert acc.array == "a"
        assert len(acc.section) == 2
        # Dim 1: the full column range; dim 2: point j.
        assert not acc.section[0].full
        assert acc.section[1].is_point

    def test_provider_unknown_callee_none(self):
        src = "      program main\n      real a(8)\n      call ext(a)\n      end\n"
        sf, cg = setup(src)
        provider = make_section_provider(cg, compute_sections(cg))
        call = sf.unit("main").body[0]
        assert provider(call, sf.unit("main")) is None

    def test_rank_mismatch_degrades_to_full(self):
        src = (
            "      program main\n      real a(8, 8)\n      call s(a)\n      end\n"
            "      subroutine s(x)\n      real x(64)\n      x(1) = 0.\n      end\n"
        )
        sf, cg = setup(src)
        provider = make_section_provider(cg, compute_sections(cg))
        call = sf.unit("main").body[0]
        accesses = provider(call, sf.unit("main"))
        assert accesses
        assert all(d.full for d in accesses[0].section)


class TestKills:
    def test_scalar_kill(self):
        src = "      subroutine s(t)\n      t = 1.0\n      x = t\n      end\n"
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) in kills["s"].scalars

    def test_read_before_write_not_killed(self):
        src = "      subroutine s(t)\n      x = t\n      t = 1.0\n      end\n"
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) not in kills["s"].scalars

    def test_conditional_write_not_killed(self):
        src = (
            "      subroutine s(t, p)\n      if (p .gt. 0.) then\n      t = 1.0\n"
            "      end if\n      end\n"
        )
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) not in kills["s"].scalars

    def test_array_full_sweep_killed(self):
        src = (
            "      subroutine s(x, k)\n      integer k\n      real x(k)\n"
            "      do i = 1, k\n      x(i) = 0.0\n      end do\n      end\n"
        )
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) in kills["s"].arrays

    def test_partial_sweep_not_killed(self):
        src = (
            "      subroutine s(x, k)\n      integer k\n      real x(k)\n"
            "      do i = 2, k\n      x(i) = 0.0\n      end do\n      end\n"
        )
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) not in kills["s"].arrays

    def test_read_first_array_not_killed(self):
        src = (
            "      subroutine s(x, k)\n      integer k\n      real x(k)\n"
            "      y = x(1)\n      do i = 1, k\n      x(i) = 0.0\n      end do\n      end\n"
        )
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) not in kills["s"].arrays

    def test_transitive_kill_through_call(self):
        src = (
            "      subroutine outer(t)\n      call inner(t)\n      end\n"
            "      subroutine inner(u)\n      u = 1.0\n      end\n"
        )
        sf, cg = setup(src)
        kills = compute_kills(cg)
        assert ("formal", 0) in kills["outer"].scalars

    def test_privatizable_arrays_local_sweep(self):
        src = (
            "      program main\n      real w(8), a(8)\n"
            "      do j = 1, 4\n"
            "      do i = 1, 8\n      w(i) = a(i) * j\n      end do\n"
            "      do i = 1, 8\n      a(i) = w(i)\n      end do\n"
            "      end do\n      end\n"
        )
        sf, cg = setup(src)
        loop = sf.unit("main").body[0]
        assert privatizable_arrays(loop, sf.unit("main"), cg, compute_kills(cg)) == {
            "w"
        }

    def test_privatizable_arrays_read_first_excluded(self):
        src = (
            "      program main\n      real w(8), a(8)\n"
            "      do j = 1, 4\n"
            "      do i = 1, 8\n      a(i) = w(i)\n      end do\n"
            "      do i = 1, 8\n      w(i) = a(i) * j\n      end do\n"
            "      end do\n      end\n"
        )
        sf, cg = setup(src)
        loop = sf.unit("main").body[0]
        got = privatizable_arrays(loop, sf.unit("main"), cg, compute_kills(cg))
        # w is read (first inner loop) before being overwritten: not
        # privatizable.  a *is* fully overwritten before its reads.
        assert "w" not in got
        assert "a" in got


class TestIPConstants:
    def test_single_site_constant(self):
        src = (
            "      program main\n      call s(4)\n      end\n"
            "      subroutine s(n)\n      integer n\n      x = n\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["s"] == {"n": 4}

    def test_parameter_actual(self):
        src = (
            "      program main\n      integer m\n      parameter (m = 7)\n"
            "      call s(m)\n      end\n"
            "      subroutine s(n)\n      integer n\n      x = n\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["s"] == {"n": 7}

    def test_conflicting_sites_bottom(self):
        src = (
            "      program main\n      call s(4)\n      call s(5)\n      end\n"
            "      subroutine s(n)\n      integer n\n      x = n\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["s"] == {}

    def test_transitive_propagation(self):
        src = (
            "      program main\n      call mid(6)\n      end\n"
            "      subroutine mid(k)\n      integer k\n      call leaf(k)\n      end\n"
            "      subroutine leaf(n)\n      integer n\n      x = n\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["leaf"] == {"n": 6}

    def test_nonconstant_actual_bottom(self):
        src = (
            "      program main\n      read (5, *) k\n      call s(k)\n      end\n"
            "      subroutine s(n)\n      integer n\n      x = n\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["s"] == {}

    def test_array_formal_skipped(self):
        src = (
            "      program main\n      real a(3)\n      call s(a)\n      end\n"
            "      subroutine s(x)\n      real x(3)\n      x(1) = 0.\n      end\n"
        )
        sf, cg = setup(src)
        ipc = compute_ip_constants(cg)
        assert ipc["s"] == {}
