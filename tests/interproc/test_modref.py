"""Unit tests for MOD/REF analysis and PreciseEffects."""

import pytest

from repro.fortran import parse_and_bind
from repro.interproc import PreciseEffects, build_callgraph, compute_modref
from repro.interproc.ipkill import compute_kills


def setup(src):
    sf = parse_and_bind(src)
    cg = build_callgraph(sf)
    return sf, cg, compute_modref(cg)


class TestSummaries:
    def test_formal_mod(self):
        src = (
            "      subroutine s(x, y)\n      x = y + 1.0\n      end\n"
        )
        _, cg, mr = setup(src)
        assert ("formal", 0) in mr["s"].mod
        assert ("formal", 1) in mr["s"].ref
        assert ("formal", 1) not in mr["s"].mod

    def test_common_mod(self):
        src = (
            "      subroutine s\n      common /c/ u, v\n      u = v\n      end\n"
        )
        _, cg, mr = setup(src)
        assert ("common", "c", 0) in mr["s"].mod
        assert ("common", "c", 1) in mr["s"].ref

    def test_array_formal_mod(self):
        src = "      subroutine s(a, n)\n      real a(n)\n      a(1) = 0.\n      end\n"
        _, cg, mr = setup(src)
        assert ("formal", 0) in mr["s"].mod

    def test_transitive_through_call(self):
        src = (
            "      subroutine outer(p)\n      call inner(p)\n      end\n"
            "      subroutine inner(q)\n      q = 1.0\n      end\n"
        )
        _, cg, mr = setup(src)
        assert ("formal", 0) in mr["outer"].mod

    def test_transitive_common_through_call(self):
        src = (
            "      subroutine outer\n      common /c/ w\n      call inner\n      end\n"
            "      subroutine inner\n      common /c/ w\n      w = 1.0\n      end\n"
        )
        _, cg, mr = setup(src)
        assert ("common", "c", 0) in mr["outer"].mod

    def test_expression_actual_not_aliased(self):
        src = (
            "      subroutine outer(p)\n      call inner(p + 1.0)\n      end\n"
            "      subroutine inner(q)\n      q = 1.0\n      end\n"
        )
        _, cg, mr = setup(src)
        assert ("formal", 0) not in mr["outer"].mod

    def test_local_not_visible(self):
        src = "      subroutine s\n      t = 1.0\n      end\n"
        _, cg, mr = setup(src)
        assert mr["s"].mod == set()


class TestPreciseEffects:
    def test_mod_translates_to_actual(self):
        src = (
            "      program main\n      call s(x, y)\n      end\n"
            "      subroutine s(p, q)\n      p = q\n      end\n"
        )
        sf, cg, mr = setup(src)
        eff = PreciseEffects(cg, mr)
        main = sf.unit("main")
        call = main.body[0]
        mods = eff.mod(call.name, call.args, main.symtab)
        refs = eff.ref(call.name, call.args, main.symtab)
        assert mods == {"x"}
        assert "y" in refs

    def test_common_translates_by_position(self):
        src = (
            "      program main\n      common /c/ alpha, beta\n      call s\n      end\n"
            "      subroutine s\n      common /c/ u, v\n      v = u\n      end\n"
        )
        sf, cg, mr = setup(src)
        eff = PreciseEffects(cg, mr)
        main = sf.unit("main")
        call = main.body[0]
        assert eff.mod(call.name, call.args, main.symtab) == {"beta"}
        assert "alpha" in eff.ref(call.name, call.args, main.symtab)

    def test_unknown_callee_falls_back_conservative(self):
        src = "      program main\n      common /c/ q\n      call ext(x)\n      end\n"
        sf, cg, mr = setup(src)
        eff = PreciseEffects(cg, mr)
        main = sf.unit("main")
        call = main.body[0]
        assert {"x", "q"} <= eff.mod(call.name, call.args, main.symtab)

    def test_kill_upgrades_and_prunes_ref(self):
        src = (
            "      program main\n      common /w/ t\n      call s\n      end\n"
            "      subroutine s\n      common /w/ t\n      t = 1.0\n      x = t\n      end\n"
        )
        sf, cg, mr = setup(src)
        kills = compute_kills(cg)
        eff = PreciseEffects(cg, mr, kills)
        main = sf.unit("main")
        call = main.body[0]
        assert eff.kill(call.name, call.args, main.symtab) == {"t"}
        # t is killed before use: its incoming value is never referenced.
        assert "t" not in eff.ref(call.name, call.args, main.symtab)
