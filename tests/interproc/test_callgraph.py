"""Unit tests for call graph construction."""

import pytest

from repro.fortran import parse_and_bind
from repro.interproc import build_callgraph


def cg_of(src):
    return build_callgraph(parse_and_bind(src))


SIMPLE = """      program main
      call a
      call b
      end
      subroutine a
      call b
      return
      end
      subroutine b
      return
      end
"""


class TestCallGraph:
    def test_edges(self):
        cg = cg_of(SIMPLE)
        assert cg.callees["main"] == {"a", "b"}
        assert cg.callees["a"] == {"b"}
        assert cg.callers["b"] == {"main", "a"}

    def test_sites(self):
        cg = cg_of(SIMPLE)
        assert len(cg.sites_in("main")) == 2
        assert len(cg.sites_of("b")) == 2

    def test_roots(self):
        cg = cg_of(SIMPLE)
        assert cg.roots() == ["main"]

    def test_function_reference_edge(self):
        src = (
            "      program main\n      x = f(1.0)\n      end\n"
            "      function f(y)\n      f = y\n      end\n"
        )
        cg = cg_of(src)
        assert cg.callees["main"] == {"f"}
        site = cg.sites_of("f")[0]
        assert site.is_function

    def test_unknown_callee_ignored(self):
        src = "      program main\n      call extern(1)\n      end\n"
        cg = cg_of(src)
        assert cg.callees["main"] == set()

    def test_bottom_up_order(self):
        cg = cg_of(SIMPLE)
        order = cg.sccs_bottom_up()
        flat = [name for scc in order for name in scc]
        assert flat.index("b") < flat.index("a") < flat.index("main")

    def test_top_down_order(self):
        cg = cg_of(SIMPLE)
        flat = [name for scc in cg.topo_top_down() for name in scc]
        assert flat.index("main") < flat.index("a")

    def test_recursion_single_scc(self):
        src = (
            "      subroutine even(n)\n      if (n .gt. 0) call odd(n - 1)\n      end\n"
            "      subroutine odd(n)\n      if (n .gt. 0) call even(n - 1)\n      end\n"
        )
        cg = cg_of(src)
        sccs = cg.sccs_bottom_up()
        assert ["even", "odd"] in sccs

    def test_call_inside_loop_recorded(self):
        src = (
            "      program main\n      do i = 1, 3\n      call w(i)\n      end do\n      end\n"
            "      subroutine w(i)\n      return\n      end\n"
        )
        cg = cg_of(src)
        assert len(cg.sites_of("w")) == 1
