"""Tests for compound recipes and session replay."""

import pytest

from repro.editor.scripts import replay, replay_all
from repro.editor.session import PedSession
from repro.fortran import parse_and_bind
from repro.perf import Interpreter
from repro.transform.sequence import (
    Recipe,
    RecipeStep,
    embed_fuse_parallelize,
    fuse_then_parallelize,
    outer_parallel_recipe,
)
from repro.workloads import SUITE


class TestRecipes:
    def test_fuse_then_parallelize(self):
        src = """      program t
      integer n
      parameter (n = 24)
      real a(n), b(n)
      common /r/ a, b
      do i = 1, n
         a(i) = 1.0 * i
      end do
      do i = 1, n
         b(i) = a(i) * 2.0
      end do
      write (6, *) b(9)
      end
"""
        ref = Interpreter(parse_and_bind(src)).run()
        session = PedSession(src)
        result = fuse_then_parallelize(0).apply(session)
        assert result.complete, result.reason
        assert len(result.applied) == 2
        assert Interpreter(session.sf, doall_order="reversed").run() == ref

    def test_recipe_stops_at_unsafe_step(self):
        src = """      program t
      real a(20)
      do i = 2, 20
         a(i) = a(i-1)
      end do
      end
"""
        session = PedSession(src)
        result = outer_parallel_recipe(0).apply(session)
        assert not result.complete
        assert result.stopped_at in ("distribute", "parallelize")
        assert result.reason

    def test_embed_fuse_parallelize_on_ocean(self):
        prog = SUITE["ocean"]
        ref = Interpreter(parse_and_bind(prog.source)).run()
        session = PedSession(prog.source)
        session.select_unit("relax")
        result = embed_fuse_parallelize(call_line=39, loop_index=0).apply(session)
        assert result.complete, result.reason
        assert Interpreter(session.sf, doall_order="shuffled").run() == ref

    def test_missing_loop_index(self):
        src = "      program t\n      x = 1.0\n      end\n"
        session = PedSession(src)
        result = outer_parallel_recipe(0).apply(session)
        assert not result.complete
        assert "no loop" in result.reason


class TestReplay:
    def test_replay_single(self):
        session, transcript = replay("boast")
        assert transcript.ok, transcript.errors
        assert transcript.final_source
        assert "ped>" in transcript.render()

    def test_replay_extra_commands(self):
        session, transcript = replay("boast", extra_commands=["summary"])
        assert transcript.exchanges[-1][0] == "summary"

    def test_replay_all_clean(self):
        transcripts = replay_all()
        assert len(transcripts) == len(SUITE)
        for t in transcripts:
            assert t.ok, (t.program, t.errors)
