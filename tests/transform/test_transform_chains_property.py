"""Property test: random chains of *advised-safe* transformations
preserve program semantics.

The power-steering contract is that any transformation whose Advice says
``ok`` may be applied without changing results.  We generate small
programs, repeatedly pick a random (transformation, target) pair, apply
it only when the diagnosis approves, and compare interpreter output with
the original after every step.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.editor.session import PedError, PedSession
from repro.fortran import parse_and_bind
from repro.perf import Interpreter

N = 10


@st.composite
def base_programs(draw):
    stencil = draw(st.sampled_from([
        "a(i) = b(i) + 1.0",
        "a(i) = a(i) * 0.5",
        "a(i) = b(i) + c(i)",
        "t = b(i) * 2.0\nc(i) = t",
        "s = s + b(i)",
    ]))
    second = draw(st.sampled_from([
        "c(i) = a(i) + b(i)",
        "b(i) = 2.0 * a(i)",
        "s = s + a(i)",
    ]))
    lines = [
        "      program p",
        "      integer n",
        f"      parameter (n = {N})",
        "      real a(n), b(n), c(n), s, t",
        "      common /res/ s",
        "      do i = 1, n",
        "         a(i) = 0.1 * i",
        "         b(i) = 0.2 * i",
        "         c(i) = 0.0",
        "      end do",
        "      s = 0.0",
        "      do i = 1, n",
    ]
    for text in stencil.splitlines():
        lines.append("         " + text)
    lines.append("      end do")
    lines.append("      do i = 1, n")
    for text in second.splitlines():
        lines.append("         " + text)
    lines.append("      end do")
    lines.append("      write (6, *) s, a(3), b(4), c(5)")
    lines.append("      end")
    return "\n".join(lines) + "\n"


TRANSFORMS = [
    ("parallelize", {}),
    ("reverse", {}),
    ("stripmine", {"size": 4}),
    ("unroll", {"factor": 2}),
    ("unroll", {}),
    ("fuse", {}),
    ("distribute", {}),
    ("reduction", {}),
]


@settings(max_examples=40, deadline=None)
@given(
    source=base_programs(),
    choices=st.lists(
        st.tuples(st.integers(0, len(TRANSFORMS) - 1), st.integers(0, 5)),
        min_size=1,
        max_size=5,
    ),
)
def test_advised_safe_chains_preserve_semantics(source, choices):
    reference = Interpreter(parse_and_bind(source)).run()
    session = PedSession(source)
    for t_idx, loop_choice in choices:
        name, kwargs = TRANSFORMS[t_idx]
        loops = session.loops()
        if not loops:
            break
        session.select_loop(loop_choice % len(loops))
        advice = session.diagnose(name, **kwargs)
        if not (advice.applicable and advice.safe):
            continue
        try:
            session.apply(name, **kwargs)
        except PedError:
            continue
        out = Interpreter(session.sf, doall_order="shuffled").run()
        assert out == reference, (name, session.source)
