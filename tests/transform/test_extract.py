"""Tests for procedure extraction (outlining) and the embed/extract pair."""

import pytest

from repro.editor import CommandInterpreter, PedSession
from repro.fortran import CallStmt, parse_and_bind, walk_statements
from repro.perf import Interpreter

SRC = """      program t
      integer n, m
      parameter (n = 12, m = 8)
      real a(n, m), w
      common /g/ a
      do j = 1, m
         do i = 1, n
            a(i, j) = 0.3 * i + j
         end do
      end do
      do j = 1, m
         do i = 2, n
            w = a(i, j) + a(i-1, j)
            a(i, j) = 0.5 * w
         end do
      end do
      write (6, *) a(5, 3), a(12, 8)
      end
"""


def run(sf_or_src):
    if isinstance(sf_or_src, str):
        return Interpreter(parse_and_bind(sf_or_src)).run()
    return Interpreter(sf_or_src).run()


class TestExtract:
    def test_extract_preserves_semantics(self):
        reference = run(SRC)
        session = PedSession(SRC)
        session.select_loop(2)  # the second j loop
        msg = session.apply("extract")
        assert "extracted body into subroutine" in msg
        assert run(session.sf) == reference

    def test_new_unit_created(self):
        session = PedSession(SRC)
        session.select_loop(2)
        session.apply("extract")
        names = {u.name for u in session.sf.units}
        assert "body" in names
        new_unit = session.sf.unit("body")
        # Parameters used by the common declaration are restated.
        assert "parameter" in session.source.split("subroutine body")[1]

    def test_loop_body_becomes_single_call(self):
        session = PedSession(SRC)
        session.select_loop(2)
        session.apply("extract")
        loop = session.loops()[2].loop
        assert len(loop.body) == 1
        assert isinstance(loop.body[0], CallStmt)

    def test_custom_name(self):
        session = PedSession(SRC)
        session.select_loop(2)
        msg = session.apply("extract", unit_name="smooth")
        assert "subroutine smooth" in msg

    def test_name_collision_freshened(self):
        src = SRC.replace("program t", "program body")
        session = PedSession(src)
        session.select_loop(2)
        msg = session.apply("extract")
        assert "body1" in msg

    def test_goto_in_body_rejected(self):
        src = """      program t
      real a(9)
      do i = 1, 9
         if (a(i) .gt. 0.) goto 10
         a(i) = 1.0
   10    continue
      end do
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        advice = session.diagnose("extract")
        assert not advice.applicable

    def test_extract_then_inline_round_trip(self):
        reference = run(SRC)
        session = PedSession(SRC)
        session.select_loop(2)
        session.apply("extract")
        call_line = next(
            i
            for i, text in enumerate(session.source.splitlines(), 1)
            if "call body" in text
        )
        ped = CommandInterpreter(session)
        out = ped.execute(f"apply inline line={call_line}")
        assert "embedded" in out
        assert run(session.sf) == reference

    def test_extracted_program_reanalyzes(self):
        session = PedSession(SRC)
        session.select_loop(2)
        session.apply("extract")
        # The extracted call is analyzed interprocedurally; the j loop
        # remains analyzable (sections over the new callee).
        ua = session.unit_analysis
        assert len(ua.loops) == 3
