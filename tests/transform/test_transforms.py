"""Unit tests for each power-steered transformation.

Every apply() is also checked for semantics preservation by running the
reference interpreter before and after.
"""

import pytest

from repro.dependence import analyze_unit
from repro.fortran import DoLoop, number_statements, parse_and_bind, to_source
from repro.perf import Interpreter
from repro.transform import TransformContext, get_transformation
from repro.transform.base import TransformError


def session_for(src):
    sf = parse_and_bind(src)
    unit = sf.units[0]

    def ctx():
        number_statements(unit)
        return TransformContext(unit, analyze_unit(unit))

    return sf, unit, ctx


def outputs_equal(src, sf):
    before = Interpreter(parse_and_bind(src)).run()
    after = Interpreter(parse_and_bind(to_source(sf))).run()
    assert before == after, (before, after)


PROGRAM_2NEST = """      program t
      integer n
      parameter (n = 8)
      real a(n, n)
      common /r/ a
      do j = 1, n
         do i = 1, n
            a(i, j) = 0.1 * i + j
         end do
      end do
      write (6, *) a(3, 4)
      end
"""


class TestInterchange:
    def test_apply_swaps_headers(self):
        sf, u, ctx = session_for(PROGRAM_2NEST)
        loop = u.body[0]
        get_transformation("interchange").apply(ctx(), loop=loop)
        assert loop.var == "i"
        assert isinstance(loop.body[0], DoLoop) and loop.body[0].var == "j"
        outputs_equal(PROGRAM_2NEST, sf)

    def test_imperfect_nest_rejected(self):
        src = (
            "      program t\n      real a(5)\n      do i = 1, 5\n      x = 1.\n"
            "      do j = 1, 5\n      a(j) = x\n      end do\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("interchange").diagnose(ctx(), loop=u.body[0])
        assert not advice.applicable

    def test_triangular_nest_rejected(self):
        src = (
            "      program t\n      real a(9, 9)\n      do i = 1, 9\n"
            "      do j = 1, i\n      a(i, j) = 1.\n      end do\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("interchange").diagnose(ctx(), loop=u.body[0])
        assert not advice.applicable
        assert "triangular" in advice.reasons[0]

    def test_reversing_dependence_rejected(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 8)\n"
            "      real a(n, n)\n"
            "      do i = 2, n\n      do j = 1, n - 1\n"
            "      a(i, j) = a(i-1, j+1)\n      end do\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("interchange").diagnose(ctx(), loop=u.body[0])
        assert advice.applicable and not advice.safe

    def test_apply_unsafe_raises(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 8)\n"
            "      real a(n, n)\n"
            "      do i = 2, n\n      do j = 1, n - 1\n"
            "      a(i, j) = a(i-1, j+1)\n      end do\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        with pytest.raises(TransformError):
            get_transformation("interchange").apply(ctx(), loop=u.body[0])


class TestDistribution:
    SRC = """      program t
      integer n
      parameter (n = 10)
      real a(n), b(n), s
      common /r/ a, b, s
      s = 0.0
      do i = 2, n
         a(i) = a(i-1) + 1.0
         b(i) = 2.0 * i
      end do
      write (6, *) a(5), b(5)
      end
"""

    def test_splits_recurrence_from_map(self):
        sf, u, ctx = session_for(self.SRC)
        loop = u.body[1]
        summary = get_transformation("distribute").apply(ctx(), loop=loop)
        assert "2 loops" in summary
        loops = [st for st in u.body if isinstance(st, DoLoop)]
        assert len(loops) == 2
        outputs_equal(self.SRC, sf)
        # After distribution the b loop parallelizes.
        c = ctx()
        infos = [c.analysis.info_for(lp) for lp in loops]
        assert not infos[0].parallelizable
        assert infos[1].parallelizable

    def test_single_group_no_op_advice(self):
        src = (
            "      program t\n      real a(9)\n      do i = 2, 9\n"
            "      a(i) = a(i-1)\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("distribute").diagnose(ctx(), loop=u.body[0])
        assert not advice.profitable

    def test_dependence_order_preserved(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 10)\n"
            "      real a(n), b(n)\n      common /r/ a, b\n"
            "      do i = 2, n\n      a(i) = a(i-1) + 1.0\n"
            "      b(i) = a(i) * 2.0\n      end do\n      write (6, *) b(5)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("distribute").apply(ctx(), loop=u.body[0])
        outputs_equal(src, sf)


class TestFusion:
    SRC = """      program t
      integer n
      parameter (n = 10)
      real a(n), b(n)
      common /r/ a, b
      do i = 1, n
         a(i) = 1.0 * i
      end do
      do i = 1, n
         b(i) = a(i) * 2.0
      end do
      write (6, *) b(7)
      end
"""

    def test_fuses_conformable_loops(self):
        sf, u, ctx = session_for(self.SRC)
        loop = u.body[0]
        get_transformation("fuse").apply(ctx(), loop=loop)
        loops = [st for st in u.body if isinstance(st, DoLoop)]
        assert len(loops) == 1
        assert len(loops[0].body) == 2
        outputs_equal(self.SRC, sf)

    def test_mismatched_headers_rejected(self):
        src = self.SRC.replace("do i = 1, n\n         b", "do i = 2, n\n         b")
        sf, u, ctx = session_for(src)
        advice = get_transformation("fuse").diagnose(ctx(), loop=u.body[0])
        assert not advice.applicable

    def test_fusion_preventing_dependence_rejected(self):
        # Second loop reads a(i+1): after fusion iteration i would need
        # a value the first body writes at iteration i+1.
        src = """      program t
      integer n
      parameter (n = 10)
      real a(n), b(n)
      common /r/ a, b
      do i = 1, n - 1
         a(i) = 1.0 * i
      end do
      do i = 1, n - 1
         b(i) = a(i+1) * 2.0
      end do
      write (6, *) b(3)
      end
"""
        sf, u, ctx = session_for(src)
        advice = get_transformation("fuse").diagnose(ctx(), loop=u.body[0])
        assert advice.applicable and not advice.safe

    def test_different_loop_variables_renamed(self):
        src = self.SRC.replace("do i = 1, n\n         b(i) = a(i)", "do k = 1, n\n         b(k) = a(k)")
        sf, u, ctx = session_for(src)
        get_transformation("fuse").apply(ctx(), loop=u.body[0])
        outputs_equal(src, sf)


class TestReversalSkewStripUnroll:
    def test_reversal(self):
        src = (
            "      program t\n      real a(9)\n      common /r/ a\n"
            "      do i = 1, 9\n      a(i) = 1.0 * i\n      end do\n"
            "      write (6, *) a(4)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("reverse").apply(ctx(), loop=u.body[0])
        outputs_equal(src, sf)

    def test_reversal_rejected_with_carried_dep(self):
        src = (
            "      program t\n      real a(9)\n      do i = 2, 9\n"
            "      a(i) = a(i-1)\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("reverse").diagnose(ctx(), loop=u.body[0])
        assert not advice.safe

    def test_skewing_preserves_semantics(self):
        sf, u, ctx = session_for(PROGRAM_2NEST)
        get_transformation("skew").apply(ctx(), loop=u.body[0], factor=1)
        outputs_equal(PROGRAM_2NEST, sf)

    def test_skewing_needs_nest(self):
        src = "      program t\n      real a(9)\n      do i = 1, 9\n      a(i) = 0.\n      end do\n      end\n"
        sf, u, ctx = session_for(src)
        advice = get_transformation("skew").diagnose(ctx(), loop=u.body[0])
        assert not advice.applicable

    def test_stripmine(self):
        src = (
            "      program t\n      real a(20)\n      common /r/ a\n"
            "      do i = 1, 20\n      a(i) = 1.0 * i\n      end do\n"
            "      write (6, *) a(17)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("stripmine").apply(ctx(), loop=u.body[0], size=8)
        outer = u.body[0]
        assert isinstance(outer.body[0], DoLoop)
        outputs_equal(src, sf)

    def test_stripmine_nonunit_step_rejected(self):
        src = "      program t\n      real a(20)\n      do i = 1, 19, 2\n      a(i) = 0.\n      end do\n      end\n"
        sf, u, ctx = session_for(src)
        advice = get_transformation("stripmine").diagnose(ctx(), loop=u.body[0], size=4)
        assert not advice.applicable

    def test_full_unroll(self):
        src = (
            "      program t\n      real a(4)\n      common /r/ a\n"
            "      do i = 1, 4\n      a(i) = 1.0 * i\n      end do\n"
            "      write (6, *) a(2)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("unroll").apply(ctx(), loop=u.body[0])
        assert not any(isinstance(st, DoLoop) for st in u.body)
        outputs_equal(src, sf)

    def test_partial_unroll(self):
        src = (
            "      program t\n      real a(10)\n      common /r/ a\n"
            "      do i = 1, 10\n      a(i) = 1.0 * i\n      end do\n"
            "      write (6, *) a(9), a(10)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("unroll").apply(ctx(), loop=u.body[0], factor=4)
        outputs_equal(src, sf)

    def test_partial_unroll_uneven_trip(self):
        src = (
            "      program t\n      real a(11)\n      common /r/ a\n"
            "      do i = 1, 11\n      a(i) = 1.0 * i\n      end do\n"
            "      write (6, *) a(11)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("unroll").apply(ctx(), loop=u.body[0], factor=4)
        outputs_equal(src, sf)

    def test_unknown_trip_full_unroll_rejected(self):
        src = (
            "      subroutine s(a, n)\n      integer n\n      real a(n)\n"
            "      do i = 1, n\n      a(i) = 0.\n      end do\n      end\n"
        )
        sf = parse_and_bind(src)
        u = sf.units[0]
        number_statements(u)
        ctx = TransformContext(u, analyze_unit(u))
        advice = get_transformation("unroll").diagnose(ctx, loop=u.body[0])
        assert not advice.applicable


class TestExpansionPrivatizeReduction:
    def test_scalar_expansion(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 10)\n"
            "      real a(n), b(n)\n      common /r/ a, b\n"
            "      do i = 1, n\n      t = a(i) * 2.0\n      b(i) = t + 1.0\n"
            "      end do\n      write (6, *) b(5)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        summary = get_transformation("expand").apply(ctx(), loop=u.body[0], var="t")
        assert "expanded scalar t" in summary
        assert "tx" in to_source(sf)
        outputs_equal(src, sf)

    def test_expansion_copy_out_when_live(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 10)\n"
            "      real a(n), b(n)\n      common /r/ a, b\n"
            "      do i = 1, n\n      t = a(i) * 2.0\n      b(i) = t\n      end do\n"
            "      write (6, *) t\n      end\n"
        )
        sf, u, ctx = session_for(src)
        loop = next(st for st in u.body if isinstance(st, DoLoop))
        summary = get_transformation("expand").apply(ctx(), loop=loop, var="t")
        assert "copied out" in summary
        outputs_equal(src, sf)

    def test_expand_loop_var_rejected(self):
        src = "      program t\n      real a(5)\n      do i = 1, 5\n      a(i) = 0.\n      end do\n      end\n"
        sf, u, ctx = session_for(src)
        advice = get_transformation("expand").diagnose(ctx(), loop=u.body[0], var="i")
        assert not advice.applicable

    def test_privatize_killed_scalar(self):
        src = (
            "      program t\n      real a(9), b(9)\n      do i = 1, 9\n"
            "      t = a(i)\n      b(i) = t\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        summary = get_transformation("privatize").apply(ctx(), loop=u.body[0], var="t")
        assert "private" in summary
        assert "t" in u.body[0].private

    def test_privatize_exposed_scalar_rejected(self):
        src = (
            "      program t\n      real a(9), b(9)\n      do i = 1, 9\n"
            "      b(i) = t\n      t = a(i)\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("privatize").diagnose(ctx(), loop=u.body[0], var="t")
        assert not advice.safe

    def test_reduction_marking(self):
        src = (
            "      program t\n      real a(9)\n      s = 0.\n      do i = 1, 9\n"
            "      s = s + a(i)\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        summary = get_transformation("reduction").apply(ctx(), loop=u.body[1])
        assert "+:s" in summary
        assert ("+", "s") in u.body[1].reductions

    def test_reduction_absent_rejected(self):
        src = "      program t\n      real a(9)\n      do i = 1, 9\n      a(i) = 0.\n      end do\n      end\n"
        sf, u, ctx = session_for(src)
        advice = get_transformation("reduction").diagnose(ctx(), loop=u.body[0])
        assert not advice.applicable


class TestStatementInterchange:
    def test_independent_statements_swap(self):
        src = (
            "      program t\n      real a(5), b(5)\n      common /r/ a, b\n"
            "      a(1) = 1.0\n      b(1) = 2.0\n      write (6, *) a(1), b(1)\n      end\n"
        )
        sf, u, ctx = session_for(src)
        get_transformation("swap").apply(ctx(), stmt=u.body[0])
        outputs_equal(src, sf)

    def test_dependent_statements_rejected(self):
        src = (
            "      program t\n      x = 1.0\n      y = x + 1.0\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("swap").diagnose(ctx(), stmt=u.body[0])
        assert not advice.safe


class TestParallelize:
    def test_apply_marks_doall(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 40)\n"
            "      real a(n)\n      do i = 1, n\n      a(i) = 1.0\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        summary = get_transformation("parallelize").apply(ctx(), loop=u.body[0])
        assert "DOALL" in summary
        assert u.body[0].parallel

    def test_unsafe_raises(self):
        src = (
            "      program t\n      real a(9)\n      do i = 2, 9\n"
            "      a(i) = a(i-1)\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        with pytest.raises(TransformError):
            get_transformation("parallelize").apply(ctx(), loop=u.body[0])

    def test_small_trip_unprofitable(self):
        src = (
            "      program t\n      real a(3)\n      do i = 1, 3\n"
            "      a(i) = 1.0\n      end do\n      end\n"
        )
        sf, u, ctx = session_for(src)
        advice = get_transformation("parallelize").diagnose(ctx(), loop=u.body[0])
        assert advice.safe and not advice.profitable

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError):
            get_transformation("frobnicate")
