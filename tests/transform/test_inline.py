"""Tests for procedure embedding (the paper's future-work transformation)."""

import pytest

from repro.dependence import analyze_unit
from repro.editor import CommandInterpreter, PedSession
from repro.fortran import CallStmt, DoLoop, number_statements, parse_and_bind, to_source
from repro.perf import Interpreter
from repro.transform import TransformContext, get_transformation
from repro.transform.base import TransformError
from repro.fortran import walk_statements


def run_equal(src, session):
    before = Interpreter(parse_and_bind(src)).run()
    after = Interpreter(session.sf).run()
    assert before == after, (before, after)


def find_call(unit, name):
    return next(
        st
        for st in walk_statements(unit.body)
        if isinstance(st, CallStmt) and st.name == name
    )


BASE = """      program t
      integer n
      parameter (n = 10)
      real a(n)
      common /g/ a
      call fill(a, n)
      write (6, *) a(7)
      end

      subroutine fill(x, k)
      integer k
      real x(k)
      do i = 1, k
         x(i) = 1.0 * i
      end do
      return
      end
"""


class TestInline:
    def test_whole_array_actual(self):
        session = PedSession(BASE)
        call = find_call(session.unit, "fill")
        msg = session.apply("inline", call=call)
        assert "embedded fill" in msg
        assert "call fill" not in session.source.split("subroutine")[0]
        run_equal(BASE, session)

    def test_column_actual(self):
        src = """      program t
      integer n, m
      parameter (n = 6, m = 4)
      real a(n, m)
      common /g/ a
      do j = 1, m
         call col(a(1, j), n)
      end do
      write (6, *) a(3, 2)
      end

      subroutine col(x, k)
      integer k
      real x(k)
      do i = 1, k
         x(i) = i + 0.5
      end do
      return
      end
"""
        session = PedSession(src)
        call = find_call(session.unit, "col")
        session.apply("inline", call=call)
        assert "a(i_in, j)" in session.source
        run_equal(src, session)

    def test_locals_renamed_no_capture(self):
        src = """      program t
      real a(5)
      common /g/ a
      i = 3
      call zap(a)
      write (6, *) a(2), i
      end

      subroutine zap(x)
      real x(5)
      do i = 1, 5
         x(i) = 2.0
      end do
      return
      end
"""
        session = PedSession(src)
        call = find_call(session.unit, "zap")
        session.apply("inline", call=call)
        # The caller's i must survive the embedded loop.
        run_equal(src, session)

    def test_scalar_formal_substitution(self):
        src = """      program t
      real a(8)
      common /g/ a
      call setk(a, 3, 9.0)
      write (6, *) a(3)
      end

      subroutine setk(x, k, v)
      integer k
      real x(8), v
      x(k) = v
      return
      end
"""
        session = PedSession(src)
        call = find_call(session.unit, "setk")
        session.apply("inline", call=call)
        run_equal(src, session)

    def test_callee_parameter_folded(self):
        src = """      program t
      real a(8)
      common /g/ a
      call init(a)
      write (6, *) a(8)
      end

      subroutine init(x)
      integer kk
      parameter (kk = 8)
      real x(kk)
      do i = 1, kk
         x(i) = 1.0
      end do
      return
      end
"""
        session = PedSession(src)
        call = find_call(session.unit, "init")
        session.apply("inline", call=call)
        run_equal(src, session)

    def test_common_conforming(self):
        src = """      program t
      real s
      common /acc/ s
      s = 1.0
      call bump
      write (6, *) s
      end

      subroutine bump
      real s
      common /acc/ s
      s = s + 1.0
      return
      end
"""
        session = PedSession(src)
        call = find_call(session.unit, "bump")
        session.apply("inline", call=call)
        run_equal(src, session)

    def test_enables_interchange_across_boundary(self):
        src = """      program t
      integer n, m
      parameter (n = 8, m = 6)
      real a(n, m)
      common /g/ a
      call sweep(m)
      write (6, *) a(2, 2)
      end

      subroutine sweep(mm)
      integer mm
      integer n, m
      parameter (n = 8, m = 6)
      real a(n, m)
      common /g/ a
      do j = 1, mm
         call one(a(1, j), n)
      end do
      return
      end

      subroutine one(x, k)
      integer k
      real x(k)
      do i = 1, k
         x(i) = 3.0
      end do
      return
      end
"""
        session = PedSession(src)
        session.select_unit("sweep")
        call = find_call(session.unit, "one")
        session.apply("inline", call=call)
        session.select_unit("sweep")
        session.select_loop(0)
        advice = session.diagnose("interchange")
        assert advice.ok
        session.apply("interchange")
        run_equal(src, session)


class TestInlineRejections:
    def reject(self, src, callee):
        session = PedSession(src)
        call = find_call(session.unit, callee)
        advice = session.diagnose("inline", call=call)
        assert not advice.applicable
        return advice

    def test_early_return_rejected(self):
        src = """      program t
      call s(x)
      end
      subroutine s(y)
      if (y .gt. 0.) return
      y = 1.0
      return
      end
"""
        self.reject(src, "s")

    def test_stop_rejected(self):
        src = """      program t
      call s(x)
      end
      subroutine s(y)
      y = 1.0
      stop
      end
"""
        self.reject(src, "s")

    def test_expression_actual_for_written_formal(self):
        src = """      program t
      call s(x + 1.0)
      end
      subroutine s(y)
      y = 2.0
      end
"""
        self.reject(src, "s")

    def test_undeclared_common_rejected(self):
        src = """      program t
      call s
      end
      subroutine s
      common /hidden/ h
      h = 1.0
      end
"""
        advice = self.reject(src, "s")
        assert "common" in advice.reasons[0]

    def test_unknown_callee_rejected(self):
        src = "      program t\n      call nowhere(x)\n      end\n"
        session = PedSession(src)
        call = find_call(session.unit, "nowhere")
        advice = session.diagnose("inline", call=call)
        assert not advice.applicable


class TestInlineViaCommands:
    def test_line_argument(self):
        session = PedSession(BASE)
        ped = CommandInterpreter(session)
        line = next(
            i
            for i, t in enumerate(session.source.splitlines(), 1)
            if "call fill" in t
        )
        out = ped.execute(f"apply inline line={line}")
        assert "embedded" in out

    def test_bad_line(self):
        session = PedSession(BASE)
        ped = CommandInterpreter(session)
        assert ped.execute("apply inline line=9999").startswith("error:")
