"""Regression tests for the scalar-communication hazards in the
restructuring transformations (found by the property tests).

A scalar carries only its most recent value, so statements/loops
communicating through one cannot be separated (distribution), merged
(fusion) or reordered (interchange) without changing which value each
reader observes.
"""

import pytest

from repro.editor.session import PedError, PedSession
from repro.fortran import parse_and_bind
from repro.perf import Interpreter


def run(sf_or_src):
    if isinstance(sf_or_src, str):
        return Interpreter(parse_and_bind(sf_or_src)).run()
    return Interpreter(sf_or_src).run()


class TestDistributionScalarHazard:
    SRC = """      program p
      integer n
      parameter (n = 10)
      real b(n), c(n), t
      common /r/ b, c
      do i = 1, n
         b(i) = 0.2 * i
      end do
      do i = 1, n
         t = b(i) * 2.0
         c(i) = t
      end do
      write (6, *) c(4), c(10)
      end
"""

    def test_scalar_pair_not_split(self):
        session = PedSession(self.SRC)
        session.select_loop(1)
        advice = session.diagnose("distribute")
        # Both statements communicate through t: one dependence group.
        assert not advice.profitable

    def test_semantics_preserved_if_forced(self):
        # Even via apply, the partition keeps the pair together (a no-op
        # distribution raises rather than miscompiling).
        session = PedSession(self.SRC)
        session.select_loop(1)
        reference = run(self.SRC)
        with pytest.raises(PedError):
            session.apply("distribute")
        assert run(session.sf) == reference

    def test_array_pipeline_still_splits(self):
        src = self.SRC.replace("t = b(i) * 2.0", "c(i) = b(i) * 2.0").replace(
            "c(i) = t", "c(i) = c(i) + 1.0"
        )
        session = PedSession(src)
        session.select_loop(1)
        reference = run(src)
        session.apply("distribute")
        assert run(session.sf) == reference


class TestFusionScalarHazard:
    SRC = """      program p
      integer n
      parameter (n = 10)
      real b(n), c(n), t
      common /r/ b, c
      t = 0.0
      do i = 1, n
         t = b(i) + 1.0
      end do
      do i = 1, n
         c(i) = t
      end do
      write (6, *) c(3)
      end
"""

    def test_scalar_crossflow_prevents_fusion(self):
        session = PedSession(self.SRC)
        session.select_loop(0)
        advice = session.diagnose("fuse")
        assert advice.applicable and not advice.safe
        assert "t" in advice.reasons[0]

    def test_backward_crossflow_prevents_fusion(self):
        src = """      program p
      integer n
      parameter (n = 10)
      real b(n), c(n), t
      common /r/ b, c
      t = 5.0
      do i = 1, n
         c(i) = t
      end do
      do i = 1, n
         t = b(i)
      end do
      write (6, *) c(3), t
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        advice = session.diagnose("fuse")
        assert not advice.safe

    def test_killed_scalar_in_second_loop_fuses(self):
        src = """      program p
      integer n
      parameter (n = 10)
      real b(n), c(n), t
      common /r/ b, c
      do i = 1, n
         b(i) = 0.1 * i
      end do
      do i = 1, n
         t = b(i) * 2.0
         c(i) = t
      end do
      write (6, *) c(3)
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        reference = run(src)
        advice = session.diagnose("fuse")
        assert advice.ok, advice.describe()
        session.apply("fuse")
        assert run(session.sf) == reference


class TestInterchangeScalarHazard:
    def test_scalar_recurrence_blocks_interchange(self):
        src = """      program p
      integer n
      parameter (n = 6)
      real a(n, n), t
      common /r/ a
      t = 1.0
      do j = 1, n
         do i = 1, n
            a(i, j) = t
            t = t + a(i, j)
         end do
      end do
      write (6, *) a(2, 5)
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        advice = session.diagnose("interchange")
        assert advice.applicable and not advice.safe
        assert "scalar recurrence" in advice.reasons[0]

    def test_killed_scalar_allows_interchange(self):
        src = """      program p
      integer n
      parameter (n = 6)
      real a(n, n), t
      common /r/ a
      do j = 1, n
         do i = 1, n
            t = 0.5 * i + j
            a(i, j) = t
         end do
      end do
      write (6, *) a(2, 5)
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        reference = run(src)
        advice = session.diagnose("interchange")
        assert advice.ok, advice.describe()
        session.apply("interchange")
        assert run(session.sf) == reference

    def test_reduction_allows_interchange(self):
        src = """      program p
      integer n
      parameter (n = 6)
      real a(n, n), s
      common /r/ a, s
      s = 0.0
      do j = 1, n
         do i = 1, n
            s = s + 1.0
         end do
      end do
      write (6, *) s
      end
"""
        session = PedSession(src)
        session.select_loop(0)
        reference = run(src)
        advice = session.diagnose("interchange")
        assert advice.ok, advice.describe()
        session.apply("interchange")
        assert run(session.sf) == reference
