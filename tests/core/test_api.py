"""Tests for the public API façade."""

import pytest

from repro import analyze, open_session, parallelize_program, parse
from repro.interproc import FeatureSet

SRC = """      program demo
      integer n
      parameter (n = 50)
      real a(n), b(n)
      do i = 1, n
         a(i) = 1.0 * i
      end do
      do i = 2, n
         b(i) = b(i-1) + a(i)
      end do
      write (6, *) b(n)
      end
"""


class TestFacade:
    def test_parse(self):
        sf = parse(SRC)
        assert sf.units[0].name == "demo"
        assert sf.units[0].symtab is not None

    def test_analyze(self):
        pa = analyze(SRC)
        assert pa.loop_count() == 2
        assert pa.parallel_loop_count() == 1

    def test_analyze_with_features(self):
        pa = analyze(SRC, FeatureSet.minimal())
        assert pa.loop_count() == 2

    def test_open_session(self):
        session = open_session(SRC)
        session.select_loop(0)
        assert session.diagnose("parallelize").ok


class TestAutoParallelizer:
    def test_marks_safe_loops_only(self):
        result = parallelize_program(SRC, require_profitable=False)
        assert ("demo", 0) in result.parallelized
        assert ("demo", 1) not in result.parallelized
        assert ("demo", 1) in result.skipped
        assert "c$par doall" in result.source

    def test_skipped_reasons_recorded(self):
        result = parallelize_program(SRC, require_profitable=False)
        assert "dependence" in result.skipped[("demo", 1)]

    def test_profitability_gate(self):
        tiny = (
            "      program t\n      real a(3)\n      do i = 1, 3\n"
            "      a(i) = 1.0\n      end do\n      end\n"
        )
        eager = parallelize_program(tiny, require_profitable=False)
        lazy = parallelize_program(tiny, require_profitable=True)
        assert eager.count == 1
        assert lazy.count == 0

    def test_outermost_first(self):
        src = (
            "      program t\n      integer n\n      parameter (n = 20)\n"
            "      real a(n, n)\n"
            "      do j = 1, n\n      do i = 1, n\n      a(i, j) = 1.0\n"
            "      end do\n      end do\n      end\n"
        )
        result = parallelize_program(src, require_profitable=False)
        # Only the outer loop is marked; the inner stays sequential.
        assert result.count == 1
        assert result.source.count("c$par doall") == 1

    def test_transformed_source_runs(self):
        from repro.perf import Interpreter

        result = parallelize_program(SRC, require_profitable=False)
        before = Interpreter(parse(SRC)).run()
        after = Interpreter(parse(result.source), doall_order="reversed").run()
        assert before == after
