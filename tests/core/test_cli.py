"""Tests for the command-line interface (python -m repro)."""

import io
import sys

import pytest

from repro.__main__ import main
from repro.workloads import SUITE


@pytest.fixture
def arc3d_file(tmp_path):
    f = tmp_path / "arc3d.f"
    f.write_text(SUITE["arc3d"].source)
    return str(f)


def run_cli(argv, capsys):
    code = main(argv)
    out = capsys.readouterr().out
    return code, out


class TestAnalyzeCommand:
    def test_full_analysis(self, arc3d_file, capsys):
        code, out = run_cli(["analyze", arc3d_file], capsys)
        assert code == 0
        assert "filtall" in out
        assert "8/8 loops parallelizable" in out

    def test_minimal_analysis(self, arc3d_file, capsys):
        code, out = run_cli(["analyze", arc3d_file, "--minimal"], capsys)
        assert code == 0
        assert "minimal analysis" in out
        assert "serial" in out

    def test_verbose_shows_obstacles(self, arc3d_file, capsys):
        code, out = run_cli(
            ["analyze", arc3d_file, "--minimal", "-v"], capsys
        )
        assert "dependence" in out


class TestAutoCommand:
    def test_auto_writes_output(self, arc3d_file, tmp_path, capsys):
        out_file = tmp_path / "par.f"
        code, out = run_cli(
            ["auto", arc3d_file, "--eager", "-o", str(out_file)], capsys
        )
        assert code == 0
        assert "parallelized:" in out
        text = out_file.read_text()
        assert "c$par doall" in text
        # The rewritten program still runs identically.
        from repro.fortran import parse_and_bind
        from repro.perf import Interpreter

        ref = Interpreter(parse_and_bind(SUITE["arc3d"].source)).run()
        got = Interpreter(parse_and_bind(text), doall_order="reversed").run()
        assert got == ref

    def test_auto_prints_when_no_output(self, arc3d_file, capsys):
        code, out = run_cli(["auto", arc3d_file, "--eager"], capsys)
        assert "program arc3d" in out


class TestSuiteCommand:
    def test_list(self, capsys):
        code, out = run_cli(["suite"], capsys)
        assert code == 0
        for name in SUITE:
            assert name in out

    def test_dump(self, capsys):
        code, out = run_cli(["suite", "pneoss"], capsys)
        assert "program pneoss" in out


class TestPedCommand:
    def test_scripted_session(self, arc3d_file, tmp_path, capsys, monkeypatch):
        commands = iter(["unit filtall", "select 0", "apply parallelize", "quit"])

        def fake_input(prompt=""):
            try:
                return next(commands)
            except StopIteration:
                raise EOFError

        monkeypatch.setattr("builtins.input", fake_input)
        out_file = tmp_path / "edited.f"
        code, out = run_cli(["ped", arc3d_file, "-o", str(out_file)], capsys)
        assert code == 0
        assert "DOALL" in out
        assert "c$par doall" in out_file.read_text()
