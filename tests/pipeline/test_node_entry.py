"""Node-level entry: re-running one node with upstream cache hits.

The acceptance story of the pipeline-node refactor: re-running only the
dependence node (new assertions) must leave every upstream node a cache
hit — visible in the ``node.<name>.hit`` counters and the
``graph.entry.dependence`` stamp — while producing analysis results
byte-identical to a full cold re-analysis with the same inputs.
"""

from repro.incremental import AnalysisEngine, program_fingerprint
from repro.incremental.fingerprint import fingerprint_digest
from repro.interproc.program import FeatureSet

THREE_UNITS = (
    "      program main\n"
    "      real x(100)\n"
    "      call init(x, 100)\n"
    "      call scale(x, 100)\n"
    "      end\n"
    "      subroutine init(a, n)\n"
    "      real a(100)\n"
    "      do i = 1, n\n"
    "         a(i) = 0.0\n"
    "      enddo\n"
    "      end\n"
    "      subroutine scale(a, n)\n"
    "      real a(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) * 2.0\n"
    "      enddo\n"
    "      end\n"
)

UPSTREAM = (
    "split",
    "parse",
    "callgraph",
    "modref",
    "kill",
    "sections",
    "ipconst",
)


def test_cold_analysis_enters_at_split():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    report = engine.node_report()
    assert report["entry"] == "split"
    states = {r["node"]: r["state"] for r in report["nodes"]}
    assert set(states.values()) == {"recomputed"}
    assert engine.stats.counters["graph.entry.split"] == 1


def test_assertion_change_reruns_only_dependence():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    engine.analyze(
        THREE_UNITS, assertions={"scale": ["n >= 1"]}
    )
    report = engine.node_report()
    assert report["entry"] == "dependence"
    states = {r["node"]: r["state"] for r in report["nodes"]}
    for name in UPSTREAM:
        assert states[name] == "hit", name
    assert states["dependence"] == "recomputed"
    # Counter-visible: one hit per upstream node, a second dependence miss.
    for name in UPSTREAM:
        assert engine.stats.counters[f"node.{name}.hit"] == 1, name
    assert engine.stats.counters["node.dependence.miss"] == 2
    assert engine.stats.counters["graph.entry.dependence"] == 1


def test_dependence_entry_fingerprint_matches_cold_analysis():
    """Entering at the dependence node is byte-identical to re-analyzing
    everything from scratch with the same assertions."""

    asserts = {"scale": ["n >= 1"]}
    warm = AnalysisEngine()
    warm.analyze(THREE_UNITS)  # no assertions
    _, pa_warm = warm.analyze(THREE_UNITS, assertions=asserts)
    assert warm.node_report()["entry"] == "dependence"

    cold = AnalysisEngine()
    _, pa_cold = cold.analyze(THREE_UNITS, assertions=asserts)
    assert cold.node_report()["entry"] == "split"

    assert program_fingerprint(pa_warm) == program_fingerprint(pa_cold)
    assert fingerprint_digest(pa_warm) == fingerprint_digest(pa_cold)


def test_identical_rerun_is_pure_replay():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    engine.analyze(THREE_UNITS)
    report = engine.node_report()
    assert report["entry"] is None
    assert engine.stats.counters["graph.entry.none"] == 1


def test_source_edit_enters_at_split():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    engine.analyze(THREE_UNITS.replace("* 2.0", "* 3.0"))
    assert engine.node_report()["entry"] == "split"


def test_minimal_features_skip_summary_nodes():
    engine = AnalysisEngine(features=FeatureSet.minimal())
    engine.analyze(THREE_UNITS)
    states = {
        r["node"]: r["state"] for r in engine.node_report()["nodes"]
    }
    for phase in ("modref", "kill", "sections", "ipconst"):
        assert states[phase] == "skipped"
    assert states["dependence"] == "recomputed"


def test_clear_forgets_node_keys():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    engine.clear()
    engine.analyze(THREE_UNITS)
    assert engine.node_report()["entry"] == "split"


def test_plan_reports_entry_without_running():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    plan = engine.plan(["assertions"])
    assert plan == {"entry": "dependence", "invalidated": ["dependence"]}
    plan = engine.plan(["source"])
    assert plan["entry"] == "split"
    assert "dependence" in plan["invalidated"]
