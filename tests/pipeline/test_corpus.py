"""Corpus batch analysis and aggregate-node rollups.

The satellite parity rule: every fleet-wide aggregate must equal the
serial sum of the per-program results — rollups are pure and order-
insensitive by construction, and these tests hold them to it.
"""

import pytest

from repro.pipeline import CorpusError, CorpusRunner, analyze_program_result
from repro.pipeline.aggregate import aggregate_key, run_aggregate
from repro.pipeline.corpus import obstacle_category
from repro.workloads import SUITE
from repro.workloads.generator import generate_program

PROGRAMS = [
    (f"gen{i}", generate_program(n_routines=2, n_fields=2, grid=8, steps=2 + i))
    for i in range(3)
]


def records_for(programs):
    return [
        analyze_program_result({"name": name, "source": source})
        for name, source in programs
    ]


class TestProgramTask:
    def test_record_shape(self):
        rec = analyze_program_result(
            {"name": "p", "source": PROGRAMS[0][1]}
        )
        assert rec["program"] == "p"
        assert rec["error"] is None
        assert rec["digest"]
        assert rec["units"] > 0
        assert rec["loops"] >= rec["parallel_loops"] >= 0
        assert isinstance(rec["obstacles"], dict)
        assert isinstance(rec["tiers"], dict)
        assert isinstance(rec["transforms"], dict)

    def test_broken_program_becomes_error_record(self):
        rec = analyze_program_result(
            {"name": "bad", "source": "      this is not fortran\n"}
        )
        assert rec["program"] == "bad"
        assert rec["error"]
        assert rec["digest"] == ""

    def test_suite_program_runs(self):
        prog = next(iter(SUITE.values()))
        rec = analyze_program_result(
            {"name": prog.name, "source": prog.source}
        )
        assert rec["error"] is None

    def test_obstacle_category_strips_per_loop_detail(self):
        assert (
            obstacle_category(
                "loop-carried flow dependence on x (<,=) [pending]"
            )
            == "loop-carried flow dependence"
        )
        assert (
            obstacle_category("I/O statement at line 12")
            == "I/O statement"
        )


class TestAggregateParity:
    """Corpus aggregates == per-program results summed serially."""

    def test_summary_equals_serial_sums(self):
        records = records_for(PROGRAMS)
        value = run_aggregate("summary", records)
        assert value["programs"] == len(records)
        assert value["loops"] == sum(r["loops"] for r in records)
        assert value["parallel_loops"] == sum(
            r["parallel_loops"] for r in records
        )
        assert value["units"] == sum(r["units"] for r in records)

    @pytest.mark.parametrize(
        "name,field",
        [
            ("obstacles", "obstacles"),
            ("tiers", "tiers"),
            ("transforms", "transforms"),
        ],
    )
    def test_histograms_equal_serial_sums(self, name, field):
        records = records_for(PROGRAMS)
        value = run_aggregate(name, records)
        expect = {}
        for rec in records:
            for key, n in rec[field].items():
                expect[key] = expect.get(key, 0) + n
        assert value[field] == expect

    def test_rollups_are_order_insensitive(self):
        records = records_for(PROGRAMS)
        for name in ("summary", "obstacles", "tiers", "transforms"):
            assert run_aggregate(name, records) == run_aggregate(
                name, list(reversed(records))
            )
            assert aggregate_key(name, records) == aggregate_key(
                name, list(reversed(records))
            )

    def test_ranked_rows_are_most_frequent_first(self):
        value = run_aggregate("obstacles", records_for(PROGRAMS))
        counts = [row["loops"] for row in value["ranked"]]
        assert counts == sorted(counts, reverse=True)
        if value["ranked"]:
            assert value["top"] == value["ranked"][0]["obstacle"]


class TestCorpusRunner:
    def test_run_produces_done_snapshot(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS)
        snapshot = runner.run(job)
        assert snapshot["complete"] is True
        assert snapshot["done"] == snapshot["total"] == len(PROGRAMS)
        assert snapshot["errors"] == 0

    def test_progress_fires_once_per_program(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS)
        seen = []
        runner.run(job, progress=seen.append)
        assert [r["program"] for r in seen] == [n for n, _ in PROGRAMS]
        assert all(r["phase"] == "corpus.program" for r in seen)
        assert [r["done"] for r in seen] == list(
            range(1, len(PROGRAMS) + 1)
        )

    def test_matches_direct_task_records(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS)
        runner.run(job)
        direct = {r["program"]: r for r in records_for(PROGRAMS)}
        for rec in job.result_records():
            assert rec == direct[rec["program"]]

    def test_query_caches_until_results_change(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS)
        runner.run(job)
        value1, cached1 = runner.query(job, "summary")
        value2, cached2 = runner.query(job, "summary")
        assert (cached1, cached2) == (False, True)
        assert value1 == value2
        assert runner.stats is None  # no stats attached by default

    def test_resubmitting_a_program_invalidates_aggregates(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS)
        runner.run(job)
        runner.query(job, "summary")
        # New source under an existing name → new digest → new agg key.
        runner.submit(
            [("gen0", generate_program(n_routines=3, n_fields=2, grid=8, steps=5))],
            job=job.id,
        )
        runner.run(job)
        _value, cached = runner.query(job, "summary")
        assert cached is False

    def test_error_program_is_counted_not_fatal(self):
        runner = CorpusRunner()
        job = runner.submit(
            PROGRAMS[:1] + [("bad", "      garbage that will not parse\n")]
        )
        snapshot = runner.run(job)
        assert snapshot["complete"] is True
        assert snapshot["errors"] == 1
        value, _ = runner.query(job, "summary")
        # Error records are excluded from rollups (digestless).
        assert value["programs"] == 1

    def test_empty_submit_raises(self):
        with pytest.raises(CorpusError):
            CorpusRunner().submit([])

    def test_unknown_job_raises(self):
        with pytest.raises(CorpusError, match="no corpus job"):
            CorpusRunner().get("nope")

    def test_unknown_aggregate_raises(self):
        runner = CorpusRunner()
        job = runner.submit(PROGRAMS[:1])
        runner.run(job)
        with pytest.raises(CorpusError, match="unknown aggregate"):
            runner.query(job, "nope")
