"""Pipeline-node graph topology: scheduling, invalidation, entry.

The graph is pure structure — these tests exercise it with toy nodes
and with the real per-program analysis graph, without running any
analysis.
"""

import pytest

from repro.interproc.program import FeatureSet
from repro.pipeline import (
    ANALYSIS_NODES,
    GraphError,
    Node,
    PipelineGraph,
    build_program_graph,
)


def toy_graph():
    """a → b → d, a → c → d, with one external input ``x``."""

    g = PipelineGraph(external_inputs=("x",))
    g.add(Node("a", inputs=("x",)))
    g.add(Node("b", inputs=("a",)))
    g.add(Node("c", inputs=("a",)))
    g.add(Node("d", inputs=("b", "c")))
    return g.finalize()


class TestTopology:
    def test_schedule_is_topological_with_declaration_ties(self):
        assert toy_graph().schedule() == ["a", "b", "c", "d"]

    def test_declaration_order_breaks_ties(self):
        g = PipelineGraph(external_inputs=("x",))
        g.add(Node("a", inputs=("x",)))
        g.add(Node("c", inputs=("a",)))  # declared before b on purpose
        g.add(Node("b", inputs=("a",)))
        g.add(Node("d", inputs=("b", "c")))
        assert g.finalize().schedule() == ["a", "c", "b", "d"]

    def test_cycle_raises(self):
        g = PipelineGraph()
        g.add(Node("a", inputs=("b",)))
        g.add(Node("b", inputs=("a",)))
        with pytest.raises(GraphError, match="cycle"):
            g.finalize()

    def test_unknown_input_raises(self):
        g = PipelineGraph()
        g.add(Node("a", inputs=("nope",)))
        with pytest.raises(GraphError, match="nope"):
            g.finalize()

    def test_duplicate_node_raises(self):
        g = PipelineGraph()
        g.add(Node("a"))
        with pytest.raises(GraphError, match="duplicate"):
            g.add(Node("a"))

    def test_shadowing_external_input_raises(self):
        g = PipelineGraph(external_inputs=("x",))
        with pytest.raises(GraphError, match="shadows"):
            g.add(Node("x"))

    def test_upstream_downstream(self):
        g = toy_graph()
        assert g.upstream("d") == {"a", "b", "c"}
        assert g.downstream(["a"]) == {"b", "c", "d"}
        assert g.downstream(["b"]) == {"d"}


class TestInvalidation:
    def test_external_input_invalidates_consumers_downstream(self):
        g = toy_graph()
        assert g.invalidated_by(["x"]) == {"a", "b", "c", "d"}

    def test_node_override_invalidates_strictly_downstream(self):
        g = toy_graph()
        assert g.invalidated_by(["b"]) == {"d"}

    def test_entry_is_first_invalidated_in_schedule(self):
        g = toy_graph()
        assert g.entry_for(["x"]) == "a"
        assert g.entry_for(["c"]) == "d"
        assert g.entry_for([]) is None

    def test_unknown_change_raises(self):
        with pytest.raises(GraphError):
            toy_graph().invalidated_by(["nothing"])


class TestNodeKeys:
    def test_key_depends_on_name_inputs_and_params(self):
        a, b = Node("a"), Node("b")
        assert a.key(("k1",)) == a.key(("k1",))
        assert a.key(("k1",)) != a.key(("k2",))
        assert a.key(("k1",)) != b.key(("k1",))
        assert a.key(("k1",)) != a.key(("k1",), params="p")

    def test_outputs_default_to_name(self):
        assert Node("a").outputs == ("a",)

    def test_describe_is_jsonable(self):
        row = Node("a", inputs=("x",), doc="hi").describe()
        assert row == {
            "name": "a",
            "inputs": ["x"],
            "outputs": ["a"],
            "doc": "hi",
        }


class TestProgramGraph:
    def test_schedule_matches_classic_chain(self):
        g = build_program_graph()
        assert g.schedule() == [
            "split",
            "parse",
            "callgraph",
            "modref",
            "kill",
            "sections",
            "ipconst",
            "dependence",
        ]

    def test_assertion_change_enters_at_dependence(self):
        g = build_program_graph()
        feats = FeatureSet()
        assert g.entry_for(["assertions"], feats) == "dependence"
        assert g.invalidated_by(["assertions"], feats) == {"dependence"}

    def test_source_change_enters_at_split(self):
        g = build_program_graph()
        assert g.entry_for(["source"], FeatureSet()) == "split"

    def test_minimal_features_drop_summary_nodes(self):
        g = build_program_graph()
        assert g.schedule(FeatureSet.minimal()) == [
            "split",
            "parse",
            "callgraph",
            "dependence",
        ]

    def test_summary_nodes_are_siblings_not_a_chain(self):
        g = build_program_graph()
        for phase in ("modref", "kill", "sections", "ipconst"):
            assert g.downstream([phase]) == {"dependence"}

    def test_describe_lists_schedule_and_nodes(self):
        desc = build_program_graph().describe(FeatureSet())
        assert desc["schedule"][0] == "split"
        assert desc["external_inputs"] == [
            "assertions",
            "features",
            "source",
        ]
        assert len(desc["nodes"]) == len(ANALYSIS_NODES)
