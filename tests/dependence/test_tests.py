"""Unit + property tests for the individual dependence tests.

The property tests check *soundness* against brute force: whenever a test
answers INDEP, exhaustive enumeration of the iteration space must find no
colliding pair — the compiler invariant "assume a dependence exists if it
cannot prove otherwise" seen from the other side.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.symbolic import Linear
from repro.dependence.tests import (
    ANY,
    DEP,
    EQ,
    GT,
    INDEP,
    LT,
    LoopBound,
    MAYBE,
    banerjee_test,
    gcd_test,
    strong_siv_test,
    weak_crossing_siv_test,
    weak_zero_siv_test,
    ziv_test,
)


class TestZIV:
    def test_nonzero_constant_independent(self):
        assert ziv_test(Linear.constant(2)).result == INDEP

    def test_zero_constant_dependent(self):
        out = ziv_test(Linear.constant(0))
        assert out.result == DEP and out.distance == 0

    def test_symbolic_maybe(self):
        assert ziv_test(Linear.atom("n")).result == MAYBE


class TestStrongSIV:
    def test_integer_distance(self):
        out = strong_siv_test(1, Linear.constant(3), LoopBound("i", 1, 10))
        assert out.result == DEP and out.distance == 3 and out.exact

    def test_scaled_distance(self):
        out = strong_siv_test(2, Linear.constant(4), LoopBound("i", 1, 10))
        assert out.distance == 2

    def test_non_integer_distance_independent(self):
        out = strong_siv_test(2, Linear.constant(3), LoopBound("i", 1, 10))
        assert out.result == INDEP

    def test_distance_beyond_trip_independent(self):
        out = strong_siv_test(1, Linear.constant(50), LoopBound("i", 1, 10))
        assert out.result == INDEP

    def test_unknown_bounds_assume_dep(self):
        out = strong_siv_test(1, Linear.constant(5), LoopBound("i"))
        assert out.result == DEP

    def test_symbolic_diff_maybe(self):
        out = strong_siv_test(1, Linear.atom("n"), LoopBound("i", 1, 10))
        assert out.result == MAYBE


class TestWeakSIV:
    def test_weak_zero_in_bounds(self):
        # i + 0 == 5  ->  i = 5 in [1,10]: dependence.
        out = weak_zero_siv_test(1, Linear.constant(-5), LoopBound("i", 1, 10))
        assert out.result == DEP

    def test_weak_zero_out_of_bounds(self):
        out = weak_zero_siv_test(1, Linear.constant(-15), LoopBound("i", 1, 10))
        assert out.result == INDEP

    def test_weak_zero_non_integer(self):
        out = weak_zero_siv_test(2, Linear.constant(-5), LoopBound("i", 1, 10))
        assert out.result == INDEP

    def test_weak_crossing_in_bounds(self):
        # i + i' = 6 with i,i' in [1,10]: dependence exists.
        out = weak_crossing_siv_test(1, Linear.constant(-6), LoopBound("i", 1, 10))
        assert out.result == DEP

    def test_weak_crossing_out_of_bounds(self):
        out = weak_crossing_siv_test(1, Linear.constant(-40), LoopBound("i", 1, 10))
        assert out.result == INDEP


class TestGCD:
    def test_divisible_maybe(self):
        out = gcd_test({"i": 2}, {"i": 4}, Linear.constant(6))
        assert out.result == MAYBE

    def test_indivisible_independent(self):
        out = gcd_test({"i": 2}, {"i": 4}, Linear.constant(3))
        assert out.result == INDEP

    def test_symbolic_diff_maybe(self):
        out = gcd_test({"i": 2}, {"i": 4}, Linear.atom("n"))
        assert out.result == MAYBE


class TestBanerjee:
    def test_disproves_far_offsets(self):
        # a(i) vs a(i + 100) in i ∈ [1, 10]: never equal.
        out = banerjee_test(
            {"i": 1}, {"i": 1}, Linear.constant(100), [LoopBound("i", 1, 10)], (ANY,)
        )
        assert out.result == INDEP

    def test_equal_direction_cancels_unknown_bounds(self):
        # Under '=' the equal-coefficient terms cancel: a(i+1) vs a(i)
        # cannot collide in the same iteration, even with unknown bounds.
        out = banerjee_test(
            {"i": 1}, {"i": 1}, Linear.constant(1), [LoopBound("i")], (EQ,)
        )
        assert out.result == INDEP

    def test_lt_direction_unknown_bounds(self):
        # f = i − i' + 1 with i < i': always ≤ 0... equals 0 when i'=i+1 —
        # cannot be disproved.
        out = banerjee_test(
            {"i": 1}, {"i": 1}, Linear.constant(1), [LoopBound("i")], (LT,)
        )
        assert out.result == MAYBE

    def test_gt_direction_disproved(self):
        # f = i − i' + 1 with i > i': f ≥ 2 > 0 — disproved even without
        # bounds.
        out = banerjee_test(
            {"i": 1}, {"i": 1}, Linear.constant(1), [LoopBound("i")], (GT,)
        )
        assert out.result == INDEP


# ---------------------------------------------------------------------------
# Property-based soundness vs brute force
# ---------------------------------------------------------------------------

coef = st.integers(-3, 3)
offset = st.integers(-6, 6)
bound_hi = st.integers(1, 8)


def _brute_force_siv(a1, c1, a2, c2, lo, hi, rel):
    for i in range(lo, hi + 1):
        for i2 in range(lo, hi + 1):
            if rel == LT and not i < i2:
                continue
            if rel == EQ and i != i2:
                continue
            if rel == GT and not i > i2:
                continue
            if a1 * i + c1 == a2 * i2 + c2:
                return True
    return False


@settings(max_examples=300, deadline=None)
@given(a=st.integers(1, 3), c1=offset, c2=offset, hi=bound_hi)
def test_strong_siv_sound(a, c1, c2, hi):
    bound = LoopBound("i", 1, hi)
    out = strong_siv_test(a, Linear.constant(c1 - c2), bound)
    truth = _brute_force_siv(a, c1, a, c2, 1, hi, ANY)
    if out.result == INDEP:
        assert not truth
    if out.result == DEP and out.distance is not None:
        # The reported distance must be a real collision distance.
        assert truth
        found = any(
            a * i + c1 == a * (i + out.distance) + c2
            for i in range(1, hi + 1)
            if 1 <= i + out.distance <= hi
        )
        assert found


@settings(max_examples=300, deadline=None)
@given(a=st.integers(1, 3), c1=offset, c2=offset, hi=bound_hi)
def test_weak_zero_sound(a, c1, c2, hi):
    bound = LoopBound("i", 1, hi)
    out = weak_zero_siv_test(a, Linear.constant(c1 - c2), bound)
    truth = any(a * i + c1 == c2 for i in range(1, hi + 1))
    if out.result == INDEP:
        assert not truth
    if out.result == DEP:
        assert truth


@settings(max_examples=300, deadline=None)
@given(a=st.integers(1, 3), c1=offset, c2=offset, hi=bound_hi)
def test_weak_crossing_sound(a, c1, c2, hi):
    bound = LoopBound("i", 1, hi)
    out = weak_crossing_siv_test(a, Linear.constant(c1 - c2), bound)
    truth = any(
        a * i + c1 == -a * i2 + c2
        for i in range(1, hi + 1)
        for i2 in range(1, hi + 1)
    )
    if out.result == INDEP:
        assert not truth


@settings(max_examples=300, deadline=None)
@given(
    a1=coef, b1=coef, a2=coef, b2=coef, c=st.integers(-12, 12), hi=bound_hi,
    d1=st.sampled_from([LT, EQ, GT, ANY]), d2=st.sampled_from([LT, EQ, GT, ANY]),
)
def test_banerjee_sound_two_deep(a1, b1, a2, b2, c, hi, d1, d2):
    """Banerjee INDEP over a 2-nest must agree with enumeration."""

    bounds = [LoopBound("i", 1, hi), LoopBound("j", 1, hi)]
    out = banerjee_test(
        {"i": a1, "j": b1}, {"i": a2, "j": b2}, Linear.constant(c), bounds, (d1, d2)
    )

    def rel_ok(x, y, rel):
        return rel == ANY or (rel == LT and x < y) or (rel == EQ and x == y) or (
            rel == GT and x > y
        )

    if out.result == INDEP:
        for i in range(1, hi + 1):
            for j in range(1, hi + 1):
                for i2 in range(1, hi + 1):
                    for j2 in range(1, hi + 1):
                        if not (rel_ok(i, i2, d1) and rel_ok(j, j2, d2)):
                            continue
                        assert a1 * i + b1 * j + c != a2 * i2 + b2 * j2


@settings(max_examples=300, deadline=None)
@given(a1=coef, a2=coef, c=st.integers(-12, 12), hi=bound_hi)
def test_gcd_sound(a1, a2, c, hi):
    out = gcd_test({"i": a1}, {"i": a2}, Linear.constant(c))
    if out.result == INDEP:
        for i in range(1, hi + 1):
            for i2 in range(1, hi + 1):
                assert a1 * i - a2 * i2 != c
