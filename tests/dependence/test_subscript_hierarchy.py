"""Unit tests for subscript classification and the hierarchy driver."""

import pytest

from repro.assertions import AssertionDB
from repro.dependence.hierarchy import DependenceTester
from repro.dependence.references import ArrayAccess, SectionDim
from repro.dependence.subscript import (
    FULL,
    MIV,
    NONLINEAR,
    RANGE,
    SIV,
    ZIV,
    pair_subscripts,
)
from repro.dependence.tests import LoopBound
from repro.fortran import parse_and_bind


def accesses_of(assign_text, decls="real a(50, 50), b(50)\ninteger ip(50)"):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    src += "      do j = 1, 50\n      do i = 1, 50\n"
    src += f"      {assign_text}\n"
    src += "      end do\n      end do\n      end\n"
    unit = parse_and_bind(src).units[0]
    from repro.dependence.references import collect_refs

    return unit, collect_refs(unit)


def classify(assign_text, array, **kw):
    unit, refs = accesses_of(assign_text, **kw)
    mine = [r for r in refs if r.array == array]
    write = next(r for r in mine if r.is_write)
    read = next(r for r in mine if not r.is_write)
    return pair_subscripts(write, read, ["j", "i"], unit.symtab)


class TestClassification:
    def test_ziv(self):
        pairs = classify("b(1) = b(2)", "b", decls="real b(50)")
        assert pairs[0].kind == ZIV

    def test_siv(self):
        pairs = classify("b(i) = b(i-1)", "b", decls="real b(50)")
        assert pairs[0].kind == SIV

    def test_siv_one_side_only(self):
        pairs = classify("b(i) = b(5)", "b", decls="real b(50)")
        assert pairs[0].kind == SIV

    def test_miv(self):
        pairs = classify("b(i + j) = b(i)", "b", decls="real b(120)")
        assert pairs[0].kind == MIV

    def test_two_positions_independent_kinds(self):
        pairs = classify("a(i, j) = a(i, 3)", "a")
        assert pairs[0].kind == SIV
        assert pairs[1].kind == SIV

    def test_nonlinear(self):
        pairs = classify(
            "b(ip(i)) = b(ip(i))", "b", decls="real b(50)\ninteger ip(50)"
        )
        assert pairs[0].kind == NONLINEAR

    def test_injective_look_through(self):
        unit, refs = accesses_of(
            "b(ip(i)) = b(ip(i)) + 1.0", decls="real b(50)\ninteger ip(50)"
        )
        mine = [r for r in refs if r.array == "b"]
        write = next(r for r in mine if r.is_write)
        read = next(r for r in mine if not r.is_write)
        db = AssertionDB()
        db.add("distinct ip")
        pairs = pair_subscripts(write, read, ["j", "i"], unit.symtab, oracle=db)
        assert pairs[0].kind == SIV

    def test_section_point_vs_point(self):
        # Section dims that are points classify through the point path.
        unit, refs = accesses_of("b(i) = b(i)", decls="real b(50)")
        write = next(r for r in refs if r.array == "b" and r.is_write)
        import repro.fortran.ast_nodes as ast

        j = ast.VarRef(0, "j")
        section_acc = ArrayAccess(
            "b", 99, write.stmt, True, write.nest,
            section=[SectionDim(lo=j, hi=j)],
        )
        pairs = pair_subscripts(write, section_acc, ["j", "i"], unit.symtab)
        assert pairs[0].kind in (SIV, MIV)

    def test_section_full(self):
        unit, refs = accesses_of("b(i) = b(i)", decls="real b(50)")
        write = next(r for r in refs if r.array == "b" and r.is_write)
        section_acc = ArrayAccess(
            "b", 99, write.stmt, True, write.nest,
            section=[SectionDim(full=True)],
        )
        pairs = pair_subscripts(write, section_acc, ["j", "i"], unit.symtab)
        assert pairs[0].kind == FULL

    def test_rank_mismatch_pads_full(self):
        unit, refs = accesses_of("b(i) = b(i)", decls="real b(50)")
        write = next(r for r in refs if r.array == "b" and r.is_write)
        wide = ArrayAccess(
            "b", 99, write.stmt, True, write.nest,
            section=[SectionDim(full=True), SectionDim(full=True)],
        )
        pairs = pair_subscripts(write, wide, ["j", "i"], unit.symtab)
        assert len(pairs) == 2
        assert pairs[1].kind == FULL


class TestTesterDetails:
    def _pair(self, write_sub, read_sub, bounds):
        src = (
            "      program t\n      real b(200)\n      do i = 1, 50\n"
            f"      b({write_sub}) = b({read_sub}) + 1.0\n"
            "      end do\n      end\n"
        )
        unit = parse_and_bind(src).units[0]
        from repro.dependence.references import collect_refs

        refs = [r for r in collect_refs(unit) if r.array == "b"]
        write = next(r for r in refs if r.is_write)
        read = next(r for r in refs if not r.is_write)
        tester = DependenceTester(unit.symtab)
        return tester.test_pair(write, read, bounds), tester

    def test_distance_vector_refined(self):
        result, _ = self._pair("i", "i-3", [LoopBound("i", 1, 50)])
        assert not result.independent
        vectors = [v.vector for v in result.vectors]
        assert (3,) in vectors

    def test_self_output_pair_independent(self):
        result, _ = self._pair("i", "i", [LoopBound("i", 1, 50)])
        # a(i)=a(i): only the all-'=' vector survives (same element, same
        # iteration).
        assert all(
            all((x == 0 or x == "=") for x in v.vector) for v in result.vectors
        )

    def test_resolved_by_recorded(self):
        result, tester = self._pair("i", "i-1", [LoopBound("i", 1, 50)])
        assert result.resolved_by in ("siv", "banerjee")
        assert tester.pair_resolution

    def test_tests_run_counts(self):
        result, _ = self._pair("2*i", "2*i+1", [LoopBound("i", 1, 50)])
        assert result.independent
        assert result.tests_run.get("siv", 0) > 0

    def test_no_common_nest(self):
        result, _ = self._pair("i", "i-1", [])
        # Without a common nest the pair still reports (loop-independent
        # constellation); never crashes.
        assert result is not None
