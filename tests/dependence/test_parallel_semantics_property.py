"""The reproduction's central safety property, tested end to end.

If the analysis says a loop is parallelizable and Ped marks it DOALL,
executing the loop's iterations in *any* order must produce the same
results.  We generate random small programs, auto-parallelize with
analysis alone, and compare interpreter runs under forward / reversed /
shuffled DOALL ordering — a direct executable check of the dependence
analyzer's soundness on whole programs.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import parallelize_program
from repro.fortran import parse_and_bind
from repro.perf import Interpreter

arrays = ["a", "b", "c"]
N = 12


@st.composite
def offsets(draw):
    return draw(st.integers(-2, 2))


@st.composite
def subscripts(draw):
    off = draw(offsets())
    if off == 0:
        return "i"
    if off > 0:
        return f"i+{off}"
    return f"i-{-off}"


@st.composite
def loop_statements(draw):
    kind = draw(st.integers(0, 3))
    if kind == 0:
        dst = draw(st.sampled_from(arrays))
        src = draw(st.sampled_from(arrays))
        return f"{dst}({draw(subscripts())}) = {src}({draw(subscripts())}) + 1.0"
    if kind == 1:
        dst = draw(st.sampled_from(arrays))
        return f"{dst}(i) = {draw(st.integers(0, 9))}.0"
    if kind == 2:
        return f"s = s + {draw(st.sampled_from(arrays))}(i)"
    dst = draw(st.sampled_from(arrays))
    src = draw(st.sampled_from(arrays))
    return f"t = {src}(i) * 2.0\n{dst}(i) = t"


@st.composite
def programs(draw):
    n_loops = draw(st.integers(1, 3))
    lines = [
        "      program p",
        "      integer n",
        f"      parameter (n = {N})",
        "      real a(n), b(n), c(n), s, t",
        "      do i = 1, n",
        "         a(i) = 0.1 * i",
        "         b(i) = 0.2 * i",
        "         c(i) = 1.0",
        "      end do",
        "      s = 0.0",
    ]
    for _ in range(n_loops):
        body = draw(loop_statements())
        lines.append("      do i = 3, n - 2")
        for text in body.splitlines():
            lines.append("         " + text)
        lines.append("      end do")
    lines.append("      write (6, *) s, a(3), b(4), c(5)")
    lines.append("      end")
    return "\n".join(lines) + "\n"


@settings(max_examples=60, deadline=None)
@given(programs())
def test_doall_marking_is_order_independent(source):
    reference = Interpreter(parse_and_bind(source)).run()
    result = parallelize_program(source, require_profitable=False)
    transformed = parse_and_bind(result.source)
    for order in ("forward", "reversed", "shuffled"):
        out = Interpreter(transformed, doall_order=order).run()
        assert out == reference, (order, result.source)


@settings(max_examples=60, deadline=None)
@given(programs())
def test_auto_parallelizer_never_crashes(source):
    result = parallelize_program(source, require_profitable=False)
    # The rewritten source must stay parseable and runnable.
    Interpreter(parse_and_bind(result.source)).run()
