"""Integration tests for the dependence driver on realistic loops."""

import pytest

from repro.dependence import AnalysisConfig, analyze_unit
from repro.dependence.graph import ANTI, FLOW, INPUT, OUTPUT
from repro.fortran import parse_and_bind


def analysis_of(body, decls="real a(100), b(100), c(100, 100)", config=None):
    src = "      program t\n"
    src += "      integer n\n      parameter (n = 100)\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    unit = parse_and_bind(src).units[0]
    return analyze_unit(unit, config), unit


def first_loop_info(ua, unit):
    return ua.info_for(ua.loops[0].loop)


class TestClassicLoops:
    def test_vector_add_parallel(self):
        ua, u = analysis_of("do i = 1, n\na(i) = b(i) + 1.0\nend do")
        assert first_loop_info(ua, u).parallelizable

    def test_recurrence_serial_distance_one(self):
        ua, u = analysis_of("do i = 2, n\na(i) = a(i-1) + 1.0\nend do")
        info = first_loop_info(ua, u)
        assert not info.parallelizable
        deps = info.blocking_deps()
        assert any(d.kind == FLOW and d.vector == (1,) for d in deps)

    def test_distance_two_recurrence(self):
        ua, u = analysis_of("do i = 3, n\na(i) = a(i-2) + 1.0\nend do")
        deps = first_loop_info(ua, u).blocking_deps()
        assert any(d.vector == (2,) for d in deps)

    def test_anti_dependence_forward_read(self):
        ua, u = analysis_of("do i = 1, n - 1\na(i) = a(i+1) + 1.0\nend do")
        info = first_loop_info(ua, u)
        # a(i) = a(i+1): write at i, read of i+1 happens at the earlier
        # iteration — anti dependence, carried.
        deps = [d for d in info.carried if d.kind == ANTI]
        assert deps and deps[0].vector == (1,)

    def test_stride_two_no_collision(self):
        ua, u = analysis_of("do i = 1, 50\na(2*i) = a(2*i - 1)\nend do")
        assert first_loop_info(ua, u).parallelizable

    def test_offset_beyond_bounds_parallel(self):
        # With constant bounds the distance exceeds the trip count.
        ua, u = analysis_of(
            "do i = 1, 10\na(i) = a(i + 20) + 1.0\nend do"
        )
        assert first_loop_info(ua, u).parallelizable

    def test_two_d_column_independent(self):
        ua, u = analysis_of(
            "do j = 2, n\ndo i = 1, n\nc(i, j) = c(i, j-1)\nend do\nend do"
        )
        outer = ua.info_for(ua.loops[0].loop)
        inner = ua.info_for(ua.loops[1].loop)
        assert not outer.parallelizable  # carries the column recurrence
        assert inner.parallelizable

    def test_wavefront_vectors(self):
        ua, u = analysis_of(
            "do j = 2, n\ndo i = 2, n\nc(i, j) = c(i-1, j) + c(i, j-1)\nend do\nend do"
        )
        vectors = {d.vector for d in ua.graph.data_edges() if d.kind == FLOW}
        assert (0, 1) in vectors and (1, 0) in vectors

    def test_input_deps_off_by_default(self):
        ua, u = analysis_of("do i = 1, n\na(i) = b(i) + b(i+1)\nend do")
        assert not any(d.kind == INPUT for d in ua.graph.edges)

    def test_input_deps_on_demand(self):
        ua, u = analysis_of(
            "do i = 1, n\na(i) = b(i) + b(i+1)\nend do",
            config=AnalysisConfig(input_deps=True),
        )
        assert any(d.kind == INPUT for d in ua.graph.edges)

    def test_output_dep_same_location(self):
        ua, u = analysis_of("do i = 1, n\na(1) = b(i)\nend do")
        info = first_loop_info(ua, u)
        assert any(d.kind == OUTPUT for d in info.blocking_deps())

    def test_symbolic_offset_cancels(self):
        # a(i+m) vs a(i+m): same symbolic term on both sides cancels.
        ua, u = analysis_of("do i = 1, n\na(i + m) = a(i + m) + 1.0\nend do")
        assert first_loop_info(ua, u).parallelizable

    def test_symbolic_mismatch_conservative(self):
        ua, u = analysis_of("do i = 1, n\na(i + m) = a(i + k) + 1.0\nend do")
        assert not first_loop_info(ua, u).parallelizable

    def test_nonlinear_subscript_conservative(self):
        ua, u = analysis_of(
            "do i = 1, n\na(ip(i)) = b(i)\nend do",
            decls="real a(100), b(100)\ninteger ip(100)",
        )
        assert not first_loop_info(ua, u).parallelizable


class TestLoopInfoExtras:
    def test_io_obstacle(self):
        ua, u = analysis_of("do i = 1, n\nwrite (6, *) a(i)\nend do")
        info = first_loop_info(ua, u)
        assert not info.parallelizable
        assert any("I/O" in o for o in info.obstacles)

    def test_exit_obstacle(self):
        ua, u = analysis_of(
            "do i = 1, n\nif (a(i) .gt. 9.) stop\nend do"
        )
        info = first_loop_info(ua, u)
        assert any("exit" in o for o in info.obstacles)

    def test_goto_out_of_loop_obstacle(self):
        ua, u = analysis_of(
            "do i = 1, n\nif (a(i) .gt. 9.) goto 10\nend do\n10 continue"
        )
        info = first_loop_info(ua, u)
        assert any("branch out" in o for o in info.obstacles)

    def test_goto_within_loop_ok(self):
        ua, u = analysis_of(
            "do i = 1, n\nif (a(i) .gt. 9.) goto 10\na(i) = 0.0\n"
            "10 b(i) = a(i)\nend do"
        )
        info = first_loop_info(ua, u)
        assert not any("branch out" in o for o in info.obstacles)

    def test_reduction_discounted(self):
        ua, u = analysis_of("do i = 1, n\ns = s + a(i)\nend do")
        info = first_loop_info(ua, u)
        assert info.parallelizable
        assert [r.var for r in info.reductions] == ["s"]

    def test_reduction_toggle_off(self):
        ua, u = analysis_of(
            "do i = 1, n\ns = s + a(i)\nend do",
            config=AnalysisConfig(use_reductions=False),
        )
        assert not first_loop_info(ua, u).parallelizable

    def test_privatizable_scalar_discounted(self):
        ua, u = analysis_of("do i = 1, n\nt = b(i)\na(i) = t * t\nend do")
        info = first_loop_info(ua, u)
        assert info.parallelizable
        assert [p.name for p in info.privatizable] == ["t"]

    def test_kill_toggle_off(self):
        ua, u = analysis_of(
            "do i = 1, n\nt = b(i)\na(i) = t * t\nend do",
            config=AnalysisConfig(use_kill=False),
        )
        assert not first_loop_info(ua, u).parallelizable

    def test_induction_discounted(self):
        ua, u = analysis_of("k = 0\ndo i = 1, n\nk = k + 2\na(i) = b(k)\nend do")
        info = first_loop_info(ua, u)
        assert info.parallelizable is True or [iv.name for iv in info.inductions] == ["k"]
        assert any(iv.name == "k" for iv in info.inductions)

    def test_proven_vs_pending_markings(self):
        ua, u = analysis_of(
            "do i = 2, n\na(i) = a(i-1)\nb(i) = b(i+m)\nend do"
        )
        markings = {(d.var, d.marking) for d in ua.graph.data_edges()}
        assert ("a", "proven") in markings
        assert ("b", "pending") in markings

    def test_tier_stats_populated(self):
        ua, u = analysis_of("do i = 2, n\na(i) = a(i-1)\nend do")
        assert ua.tester.tier_counts["siv"] > 0
