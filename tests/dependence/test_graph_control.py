"""Unit tests for the dependence graph structure and control dependence."""

import pytest

from repro.analysis.cfg import build_cfg
from repro.dependence.control import control_dependences
from repro.dependence.graph import (
    ACCEPTED,
    CONTROL,
    Dependence,
    DependenceGraph,
    FLOW,
    PENDING,
    PROVEN,
    REJECTED,
)
from repro.fortran import parse_and_bind


def unit_of(body, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    return parse_and_bind(src).units[0]


class TestDependenceGraph:
    def make(self):
        g = DependenceGraph()
        d1 = g.add(FLOW, "a", 0, 1, (1,), 1, nest_sids=(5,))
        d2 = g.add(FLOW, "b", 1, 2, ("=",), 0)
        return g, d1, d2

    def test_ids_unique(self):
        g, d1, d2 = self.make()
        assert d1.id != d2.id

    def test_find(self):
        g, d1, _ = self.make()
        assert g.find(d1.id) is d1
        with pytest.raises(KeyError):
            g.find(999)

    def test_by_src_dst_indices(self):
        g, d1, d2 = self.make()
        assert d1 in g.by_src[0]
        assert d2 in g.by_dst[2]

    def test_loop_carried_flag(self):
        g, d1, d2 = self.make()
        assert d1.loop_carried and not d2.loop_carried

    def test_carrier_sid(self):
        g, d1, d2 = self.make()
        assert d1.carrier_sid() == 5
        assert d2.carrier_sid() is None

    def test_vector_str(self):
        g, d1, d2 = self.make()
        assert d1.vector_str() == "(1)"
        assert d2.vector_str() == "(=)"

    def test_distance_and_direction(self):
        g, d1, _ = self.make()
        assert d1.distance_at(1) == 1
        assert d1.direction_at(1) == "<"

    def test_negative_distance_direction(self):
        g = DependenceGraph()
        d = g.add(FLOW, "a", 0, 1, (-2,), 1)
        assert d.direction_at(1) == ">"

    def test_rejected_does_not_block(self):
        g, d1, _ = self.make()
        assert d1.blocks_parallelization
        d1.marking = REJECTED
        assert not d1.blocks_parallelization

    def test_edges_within(self):
        g, d1, d2 = self.make()
        assert g.edges_within({0, 1}) == [d1]

    def test_data_edges_excludes_control(self):
        g, d1, d2 = self.make()
        g.add(CONTROL, "", 0, 2, (), 0)
        assert all(d.kind != CONTROL for d in g.data_edges())


class TestControlDependence:
    def cds(self, body):
        unit = unit_of(body)
        cfg = build_cfg(unit)
        return set(control_dependences(cfg)), unit

    def test_if_arm_depends_on_branch(self):
        cds, u = self.cds("if (x .gt. 0) then\ny = 1\nend if\nz = 2")
        assert (0, 1) in cds
        assert (0, 2) not in cds

    def test_else_arm_also_depends(self):
        cds, u = self.cds("if (x .gt. 0) then\ny = 1\nelse\ny = 2\nend if")
        assert (0, 1) in cds and (0, 2) in cds

    def test_nested_if(self):
        cds, u = self.cds(
            "if (x .gt. 0) then\nif (y .gt. 0) then\nz = 1\nend if\nend if"
        )
        assert (0, 1) in cds
        assert (1, 2) in cds

    def test_loop_body_depends_on_header(self):
        cds, u = self.cds("do i = 1, 3\ny = 1\nend do")
        # The DO header decides whether the body runs: control dependence.
        assert (0, 1) in cds

    def test_straightline_no_control_deps(self):
        cds, u = self.cds("x = 1\ny = 2")
        assert cds == set()

    def test_statement_after_if_not_dependent(self):
        cds, u = self.cds("if (x .gt. 0) then\ny = 1\nelse\ny = 2\nend if\nz = 3")
        assert (0, 3) not in cds
