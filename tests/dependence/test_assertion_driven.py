"""Tests for assertion-sharpened dependence analysis (the oracle paths)."""

import pytest

from repro.assertions import AssertionDB
from repro.dependence import AnalysisConfig, analyze_unit
from repro.fortran import parse_and_bind


def analysis_with(body, asserts=(), decls="real a(200), b(200)"):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    unit = parse_and_bind(src).units[0]
    db = AssertionDB()
    for text in asserts:
        db.add(text)
    return analyze_unit(unit, AnalysisConfig(oracle=db)), unit


def first_parallel(ua):
    return ua.info_for(ua.loops[0].loop).parallelizable


class TestZivAssert:
    def test_symbolic_offset_blocked_without_assert(self):
        ua, _ = analysis_with("do i = 1, 50\na(i + m) = a(i) + 1.0\nend do")
        assert not first_parallel(ua)

    def test_range_assert_unblocks(self):
        # m ≥ 50 puts every write at least 50 slots beyond every read;
        # with trip 50, no feasible distance remains.
        ua, _ = analysis_with(
            "do i = 1, 50\na(i + m) = a(i) + 1.0\nend do",
            asserts=["m >= 50", "m <= 150"],
        )
        assert first_parallel(ua)

    def test_insufficient_range_still_blocked(self):
        ua, _ = analysis_with(
            "do i = 1, 50\na(i + m) = a(i) + 1.0\nend do",
            asserts=["m >= 10", "m <= 20"],
        )
        assert not first_parallel(ua)


class TestConstantAssert:
    def test_value_assertion_enables_exact_test(self):
        # Stride m: with m == 2 the accesses interleave without collision.
        body = "do i = 1, 50\na(m * i) = a(m * i - 1) + 1.0\nend do"
        blocked, _ = analysis_with(body)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["m == 2"])
        assert first_parallel(ua)


class TestDistinctAssert:
    def test_gather_scatter(self):
        body = "do i = 1, 50\na(ip(i)) = b(i) + a(ip(i))\nend do"
        decls = "real a(200), b(200)\ninteger ip(200)"
        blocked, _ = analysis_with(body, decls=decls)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["distinct ip"], decls=decls)
        assert first_parallel(ua)

    def test_distinct_other_array_does_not_help(self):
        body = "do i = 1, 50\na(ip(i)) = b(i) + a(ip(i))\nend do"
        decls = "real a(200), b(200)\ninteger ip(200), jp(200)"
        ua, _ = analysis_with(body, asserts=["distinct jp"], decls=decls)
        assert not first_parallel(ua)

    def test_distinct_different_index_arrays_conservative(self):
        # a(ip(i)) vs a(jp(i)): distinctness of each says nothing about
        # their cross-collisions.
        body = "do i = 1, 50\na(ip(i)) = a(jp(i)) + 1.0\nend do"
        decls = "real a(200)\ninteger ip(200), jp(200)"
        ua, _ = analysis_with(
            body, asserts=["distinct ip", "distinct jp"], decls=decls
        )
        assert not first_parallel(ua)


class TestAssertedLoopBounds:
    def test_symbolic_trip_with_asserted_bound(self):
        # Distance-10 dependence; the loop runs at most 8 iterations by
        # assertion, so the dependence cannot be realised.
        body = "do i = 1, n\na(i + 10) = a(i) + 1.0\nend do"
        blocked, _ = analysis_with(body)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["n >= 1", "n <= 8"])
        assert first_parallel(ua)
