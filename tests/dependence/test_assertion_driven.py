"""Tests for assertion-sharpened dependence analysis (the oracle paths)."""

import pytest

from repro.assertions import AssertionDB
from repro.dependence import AnalysisConfig, analyze_unit
from repro.fortran import parse_and_bind


def analysis_with(body, asserts=(), decls="real a(200), b(200)"):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    unit = parse_and_bind(src).units[0]
    db = AssertionDB()
    for text in asserts:
        db.add(text)
    return analyze_unit(unit, AnalysisConfig(oracle=db)), unit


def first_parallel(ua):
    return ua.info_for(ua.loops[0].loop).parallelizable


class TestZivAssert:
    def test_symbolic_offset_blocked_without_assert(self):
        ua, _ = analysis_with("do i = 1, 50\na(i + m) = a(i) + 1.0\nend do")
        assert not first_parallel(ua)

    def test_range_assert_unblocks(self):
        # m ≥ 50 puts every write at least 50 slots beyond every read;
        # with trip 50, no feasible distance remains.
        ua, _ = analysis_with(
            "do i = 1, 50\na(i + m) = a(i) + 1.0\nend do",
            asserts=["m >= 50", "m <= 150"],
        )
        assert first_parallel(ua)

    def test_insufficient_range_still_blocked(self):
        ua, _ = analysis_with(
            "do i = 1, 50\na(i + m) = a(i) + 1.0\nend do",
            asserts=["m >= 10", "m <= 20"],
        )
        assert not first_parallel(ua)


class TestConstantAssert:
    def test_value_assertion_enables_exact_test(self):
        # Stride m: with m == 2 the accesses interleave without collision.
        body = "do i = 1, 50\na(m * i) = a(m * i - 1) + 1.0\nend do"
        blocked, _ = analysis_with(body)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["m == 2"])
        assert first_parallel(ua)


class TestDistinctAssert:
    def test_gather_scatter(self):
        body = "do i = 1, 50\na(ip(i)) = b(i) + a(ip(i))\nend do"
        decls = "real a(200), b(200)\ninteger ip(200)"
        blocked, _ = analysis_with(body, decls=decls)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["distinct ip"], decls=decls)
        assert first_parallel(ua)

    def test_distinct_other_array_does_not_help(self):
        body = "do i = 1, 50\na(ip(i)) = b(i) + a(ip(i))\nend do"
        decls = "real a(200), b(200)\ninteger ip(200), jp(200)"
        ua, _ = analysis_with(body, asserts=["distinct jp"], decls=decls)
        assert not first_parallel(ua)

    def test_distinct_different_index_arrays_conservative(self):
        # a(ip(i)) vs a(jp(i)): distinctness of each says nothing about
        # their cross-collisions.
        body = "do i = 1, 50\na(ip(i)) = a(jp(i)) + 1.0\nend do"
        decls = "real a(200)\ninteger ip(200), jp(200)"
        ua, _ = analysis_with(
            body, asserts=["distinct ip", "distinct jp"], decls=decls
        )
        assert not first_parallel(ua)


class TestAssertedLoopBounds:
    def test_symbolic_trip_with_asserted_bound(self):
        # Distance-10 dependence; the loop runs at most 8 iterations by
        # assertion, so the dependence cannot be realised.
        body = "do i = 1, n\na(i + 10) = a(i) + 1.0\nend do"
        blocked, _ = analysis_with(body)
        assert not first_parallel(blocked)
        ua, _ = analysis_with(body, asserts=["n >= 1", "n <= 8"])
        assert first_parallel(ua)


class TestSharedMemoInvalidation:
    """The program-scoped shared memo keys on the oracle's fact digest,
    so a verdict proved under one unit's assertions must never replay in
    a unit holding different facts — and oracle mutation must reroute
    lookups rather than serve stale entries."""

    BODY = "do i = 1, 50\na(i + m) = a(i) + 1.0\nend do"

    def _analyze(self, shared, asserts=()):
        src = "      program t\n      real a(200), b(200)\n"
        for line in self.BODY.splitlines():
            src += f"      {line}\n"
        src += "      end\n"
        unit = parse_and_bind(src).units[0]
        db = AssertionDB()
        for text in asserts:
            db.add(text)
        config = AnalysisConfig(oracle=db, shared_memo=shared)
        return analyze_unit(unit, config)

    def test_asserted_verdict_does_not_leak_to_unasserted_unit(self):
        from repro.dependence import SharedPairMemo

        shared = SharedPairMemo()
        sharp = self._analyze(shared, asserts=["m >= 50", "m <= 150"])
        assert first_parallel(sharp)
        assert shared.entries  # the asserted unit populated the memo
        blunt = self._analyze(shared)
        # Same canonical pair, different fact space: no replay allowed.
        assert not first_parallel(blunt)
        assert blunt.tester.shared_hits == 0

    def test_unasserted_verdict_does_not_leak_to_asserted_unit(self):
        from repro.dependence import SharedPairMemo

        shared = SharedPairMemo()
        blunt = self._analyze(shared)
        assert not first_parallel(blunt)
        sharp = self._analyze(shared, asserts=["m >= 50", "m <= 150"])
        assert first_parallel(sharp)
        assert sharp.tester.shared_hits == 0

    def test_identical_fact_spaces_do_share(self):
        from repro.dependence import SharedPairMemo

        shared = SharedPairMemo()
        first = self._analyze(shared, asserts=["m >= 50", "m <= 150"])
        second = self._analyze(shared, asserts=["m >= 50", "m <= 150"])
        assert first_parallel(second)
        assert second.tester.shared_hits > 0
        assert first_parallel(second) == first_parallel(first)

    def test_oracle_mutation_reroutes_shared_lookups(self):
        from repro.dependence import SharedPairMemo
        from repro.dependence.hierarchy import DependenceTester
        from repro.dependence.references import collect_refs
        from repro.dependence.tests import LoopBound

        source = (
            "      subroutine s(a, n)\n"
            "      integer n, i\n"
            "      real a(400)\n"
            "      do 10 i = 1, 100\n"
            "         a(i) = a(i+n) * 2.0\n"
            " 10   continue\n"
            "      end\n"
        )
        unit = parse_and_bind(source).units[0]
        refs = [r for r in collect_refs(unit) if r.array == "a"]
        write = next(r for r in refs if r.is_write)
        read = next(r for r in refs if not r.is_write)
        bounds = [LoopBound("i", 1.0, 100.0)]

        shared = SharedPairMemo()
        db = AssertionDB()
        tester = DependenceTester(unit.symtab, db, shared=shared)
        before = tester.test_pair(write, read, bounds)
        assert not before.independent

        # The fact changes the verdict; the old shared entry now lives
        # under an unreachable digest, not in the new lookup path.
        db.add("n > 100")
        after = tester.test_pair(write, read, bounds)
        assert after.independent
        assert tester.shared_hits == 0

        # A second tester over the same mutated oracle replays the *new*
        # verdict from the shared memo.
        other = DependenceTester(unit.symtab, db, shared=shared)
        replayed = other.test_pair(write, read, bounds)
        assert replayed.independent
        assert other.shared_hits == 1

        # And a tester over an empty fact space still sees the original
        # conservative verdict, not the sharpened one.
        fresh = DependenceTester(unit.symtab, AssertionDB(), shared=shared)
        conservative = fresh.test_pair(write, read, bounds)
        assert not conservative.independent
