"""Unit tests for symbol tables and the binder."""

import pytest

from repro.fortran import parse_and_bind
from repro.fortran.errors import SemanticError
from repro.fortran.symbols import COMMON, FORMAL, LOCAL, PARAM, implicit_type, int_const


def bind(src):
    return parse_and_bind(src)


class TestImplicitTyping:
    @pytest.mark.parametrize("name", list("ijklmn"))
    def test_integer_letters(self, name):
        assert implicit_type(name) == "integer"

    @pytest.mark.parametrize("name", ["a", "x", "omega", "h"])
    def test_real_letters(self, name):
        assert implicit_type(name) == "real"


class TestSymbolTable:
    def test_declared_types(self):
        sf = bind("      program t\n      integer x\n      real i\n      end\n")
        tab = sf.units[0].symtab
        assert tab["x"].typename == "integer"
        assert tab["i"].typename == "real"

    def test_implicit_symbol_created_on_use(self):
        sf = bind("      program t\n      y = i + 1\n      end\n")
        tab = sf.units[0].symtab
        assert tab["i"].typename == "integer"
        assert tab["y"].typename == "real"

    def test_formals_marked(self):
        sf = bind("      subroutine s(a, n)\n      return\n      end\n")
        tab = sf.units[0].symtab
        assert tab["a"].storage == FORMAL
        assert tab["a"].formal_index == 0
        assert tab["n"].formal_index == 1

    def test_formal_array(self):
        sf = bind("      subroutine s(a, n)\n      real a(n)\n      a(1) = 0.\n      end\n")
        tab = sf.units[0].symtab
        assert tab["a"].storage == FORMAL
        assert tab["a"].is_array and tab["a"].rank == 1

    def test_common_members(self):
        sf = bind("      program t\n      common /c/ u, v(4)\n      end\n")
        tab = sf.units[0].symtab
        assert tab["u"].storage == COMMON
        assert tab["u"].common_block == "c"
        assert tab["v"].is_array
        assert tab.common_blocks["c"] == ["u", "v"]

    def test_parameter_constant(self):
        sf = bind("      program t\n      parameter (n = 8)\n      end\n")
        tab = sf.units[0].symtab
        assert tab["n"].storage == PARAM
        assert int_const(tab["n"].const_value) == 8

    def test_locals_default(self):
        sf = bind("      program t\n      x = 1.\n      end\n")
        assert sf.units[0].symtab["x"].storage == LOCAL

    def test_rank_mismatch_rejected(self):
        with pytest.raises(SemanticError):
            bind("      program t\n      real a(2, 2)\n      a(1) = 0.\n      end\n")

    def test_scalars_and_arrays_partition(self):
        sf = bind(
            "      program t\n      real a(3), x\n      integer n\n"
            "      parameter (n = 3)\n      end\n"
        )
        tab = sf.units[0].symtab
        assert {s.name for s in tab.arrays()} == {"a"}
        names = {s.name for s in tab.scalars()}
        assert "x" in names and "n" not in names


class TestIntConst:
    def wrap(self, expr_text, decls=""):
        src = "      program t\n"
        for d in decls.splitlines():
            src += f"      {d}\n"
        src += f"      i = {expr_text}\n      end\n"
        sf = bind(src)
        return sf.units[0].body[0].expr, sf.units[0].symtab

    def test_literal(self):
        e, t = self.wrap("42")
        assert int_const(e, t) == 42

    def test_arith(self):
        e, t = self.wrap("2 * 3 + 4")
        assert int_const(e, t) == 10

    def test_negative(self):
        e, t = self.wrap("-5")
        assert int_const(e, t) == -5

    def test_power(self):
        e, t = self.wrap("2 ** 6")
        assert int_const(e, t) == 64

    def test_division_truncates_toward_zero(self):
        e, t = self.wrap("7 / 2")
        assert int_const(e, t) == 3

    def test_parameter_reference(self):
        e, t = self.wrap("n + 1", decls="parameter (n = 9)")
        assert int_const(e, t) == 10

    def test_chained_parameters(self):
        e, t = self.wrap("m", decls="parameter (n = 4, m = n * n)")
        assert int_const(e, t) == 16

    def test_unknown_variable_is_none(self):
        e, t = self.wrap("k + 1")
        assert int_const(e, t) is None

    def test_real_literal_is_none(self):
        e, t = self.wrap("3")
        from repro.fortran import Num

        assert int_const(Num(0, 3.0), t) is None
