"""Tests for front-end error diagnostics (Ped's immediate error feedback
depends on precise positions)."""

import pytest

from repro.fortran import parse_and_bind, parse_source
from repro.fortran.errors import FortranError, LexError, ParseError, SemanticError


class TestLexDiagnostics:
    def test_position_reported(self):
        with pytest.raises(LexError) as exc:
            parse_source("      program t\n      x = 1 ? 2\n      end\n")
        assert exc.value.line == 2
        assert exc.value.col > 0
        assert "line 2" in str(exc.value)

    def test_unterminated_string_position(self):
        with pytest.raises(LexError) as exc:
            parse_source("      program t\n      s = 'oops\n      end\n")
        assert exc.value.line == 2


class TestParseDiagnostics:
    def test_unclosed_do(self):
        with pytest.raises(ParseError):
            parse_source("      program t\n      do i = 1, 3\n      x = 1\n")

    def test_unclosed_if(self):
        with pytest.raises(ParseError):
            parse_source(
                "      program t\n      if (x .gt. 0) then\n      y = 1\n"
            )

    def test_unrecognised_statement(self):
        with pytest.raises(ParseError) as exc:
            parse_source("      program t\n      frobnicate everything\n      end\n")
        assert "frobnicate" in str(exc.value)

    def test_trailing_junk_after_assignment(self):
        with pytest.raises(ParseError):
            parse_source("      program t\n      x = 1 2\n      end\n")

    def test_missing_do_variable(self):
        with pytest.raises(ParseError):
            parse_source("      program t\n      do 5 = 1, 3\n      end\n")

    def test_bad_directive_clause(self):
        with pytest.raises(ParseError):
            parse_source(
                "      program t\nc$par doall turbo(on)\n      do i = 1, 3\n"
                "      end do\n      end\n"
            )

    def test_directive_without_loop(self):
        with pytest.raises(ParseError):
            parse_source(
                "      program t\nc$par doall\n      x = 1\n      end\n"
            )


class TestSemanticDiagnostics:
    def test_rank_mismatch_position(self):
        with pytest.raises(SemanticError) as exc:
            parse_and_bind(
                "      program t\n      real a(2, 2)\n      a(1) = 0.\n      end\n"
            )
        assert exc.value.line == 3

    def test_assignment_to_undeclared_array(self):
        with pytest.raises(SemanticError):
            parse_and_bind("      program t\n      zz(3) = 1.0\n      end\n")

    def test_all_errors_are_fortran_errors(self):
        for bad in (
            "      program t\n      x = ?\n      end\n",
            "      program t\n      if (x then\n      end\n",
        ):
            with pytest.raises(FortranError):
                parse_and_bind(bad)
