"""Unit tests for the Fortran parser."""

import pytest

from repro.fortran import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    CommonDecl,
    DoLoop,
    FuncRef,
    GotoStmt,
    If,
    IOStmt,
    NameArgs,
    Num,
    ParameterDecl,
    ReturnStmt,
    StopStmt,
    TypeDecl,
    UnOp,
    VarRef,
    parse_source,
    parse_and_bind,
)
from repro.fortran.errors import ParseError


def parse_body(body_lines, decls=""):
    src = "      program t\n"
    if decls:
        src += "".join(f"      {d}\n" for d in decls.splitlines())
    src += "".join(f"      {line}\n" for line in body_lines.splitlines())
    src += "      end\n"
    return parse_source(src).units[0].body


class TestUnits:
    def test_program_unit(self):
        sf = parse_source("      program p\n      x = 1\n      end\n")
        assert sf.units[0].kind == "program"
        assert sf.units[0].name == "p"

    def test_subroutine_with_formals(self):
        sf = parse_source("      subroutine s(a, b, n)\n      return\n      end\n")
        u = sf.units[0]
        assert u.kind == "subroutine"
        assert u.formals == ["a", "b", "n"]

    def test_subroutine_without_formals(self):
        sf = parse_source("      subroutine s\n      return\n      end\n")
        assert sf.units[0].formals == []

    def test_function_unit(self):
        sf = parse_source("      function f(x)\n      f = x\n      end\n")
        assert sf.units[0].kind == "function"

    def test_typed_function_unit(self):
        sf = parse_source("      real function f(x)\n      f = x\n      end\n")
        u = sf.units[0]
        assert u.kind == "function"
        assert u.rettype == "real"

    def test_integer_function_unit(self):
        sf = parse_source("      integer function g(i)\n      g = i\n      end\n")
        assert sf.units[0].rettype == "integer"

    def test_multiple_units(self):
        src = (
            "      program p\n      call s(1)\n      end\n"
            "      subroutine s(i)\n      return\n      end\n"
        )
        sf = parse_source(src)
        assert [u.name for u in sf.units] == ["p", "s"]

    def test_headerless_main(self):
        sf = parse_source("      x = 1\n      end\n")
        assert sf.units[0].kind == "program"

    def test_unit_lookup(self):
        sf = parse_source("      program p\n      end\n")
        assert sf.unit("P").name == "p"
        with pytest.raises(KeyError):
            sf.unit("nosuch")

    def test_missing_end_raises(self):
        with pytest.raises(ParseError):
            parse_source("      program p\n      x = 1\n")


class TestDeclarations:
    def test_type_decl_scalars(self):
        sf = parse_source("      program p\n      integer i, j\n      end\n")
        decl = sf.units[0].decls[0]
        assert isinstance(decl, TypeDecl)
        assert [e.name for e in decl.entities] == ["i", "j"]

    def test_type_decl_array(self):
        sf = parse_source("      program p\n      real a(10, 20)\n      end\n")
        ent = sf.units[0].decls[0].entities[0]
        assert len(ent.dims) == 2

    def test_array_with_bounds(self):
        sf = parse_source("      program p\n      real a(0:n)\n      end\n")
        lo, hi = sf.units[0].decls[0].entities[0].dims[0]
        assert isinstance(lo, Num) and lo.value == 0

    def test_assumed_size_array(self):
        sf = parse_source("      subroutine s(a)\n      real a(*)\n      end\n")
        _, hi = sf.units[0].decls[0].entities[0].dims[0]
        assert isinstance(hi, VarRef) and hi.name == "*"

    def test_double_precision(self):
        sf = parse_source("      program p\n      double precision d\n      end\n")
        assert sf.units[0].decls[0].typename == "doubleprecision"

    def test_dimension_decl(self):
        sf = parse_source("      program p\n      dimension a(5)\n      end\n")
        assert sf.units[0].decls[0].entities[0].name == "a"

    def test_common_named(self):
        sf = parse_source("      program p\n      common /blk/ a, b(3)\n      end\n")
        decl = sf.units[0].decls[0]
        assert isinstance(decl, CommonDecl)
        assert decl.block == "blk"
        assert [e.name for e in decl.entities] == ["a", "b"]

    def test_common_blank(self):
        sf = parse_source("      program p\n      common x\n      end\n")
        assert sf.units[0].decls[0].block == ""

    def test_parameter_decl(self):
        sf = parse_source("      program p\n      parameter (n = 10, m = n*2)\n      end\n")
        decl = sf.units[0].decls[0]
        assert isinstance(decl, ParameterDecl)
        assert decl.assigns[0][0] == "n"

    def test_external_decl(self):
        sf = parse_source("      program p\n      external foo, bar\n      end\n")
        assert sf.units[0].decls[0].names == ["foo", "bar"]

    def test_implicit_none(self):
        sf = parse_source("      program p\n      implicit none\n      end\n")
        assert sf.units[0].decls  # present

    def test_data_decl(self):
        sf = parse_source("      program p\n      data x /1.5/\n      end\n")
        name, val = sf.units[0].decls[0].items[0]
        assert name == "x" and val.value == 1.5


class TestExpressions:
    def expr(self, text):
        body = parse_body(f"x = {text}")
        return body[0].expr

    def test_precedence_mul_over_add(self):
        e = self.expr("a + b * c")
        assert isinstance(e, BinOp) and e.op == "+"
        assert isinstance(e.right, BinOp) and e.right.op == "*"

    def test_power_right_associative(self):
        e = self.expr("a ** b ** c")
        assert e.op == "**"
        assert isinstance(e.right, BinOp) and e.right.op == "**"

    def test_unary_minus(self):
        e = self.expr("-a + b")
        assert e.op == "+"
        assert isinstance(e.left, UnOp)

    def test_parenthesised_grouping(self):
        e = self.expr("(a + b) * c")
        assert e.op == "*"
        assert isinstance(e.left, BinOp) and e.left.op == "+"

    def test_relational(self):
        body = parse_body("if (a .le. b) x = 1")
        cond = body[0].arms[0][0]
        assert cond.op == "<="

    def test_logical_and_or_precedence(self):
        body = parse_body("if (a .lt. b .and. c .gt. d .or. e .eq. f) x = 1")
        cond = body[0].arms[0][0]
        assert cond.op == ".or."
        assert cond.left.op == ".and."

    def test_name_args_unresolved(self):
        e = self.expr("a(i) + f(x, y)")
        assert isinstance(e.left, NameArgs)
        assert isinstance(e.right, NameArgs)
        assert len(e.right.args) == 2

    def test_nested_subscripts(self):
        e = self.expr("a(ip(j))")
        assert isinstance(e, NameArgs)
        assert isinstance(e.args[0], NameArgs)


class TestStatements:
    def test_assignment(self):
        body = parse_body("x = 1")
        assert isinstance(body[0], Assign)

    def test_array_assignment(self):
        body = parse_body("a(i) = 0.0", decls="real a(10)")
        assert isinstance(body[0], Assign)
        assert isinstance(body[0].target, NameArgs)

    def test_do_enddo(self):
        body = parse_body("do i = 1, n\nx = i\nend do")
        loop = body[0]
        assert isinstance(loop, DoLoop)
        assert loop.var == "i"
        assert loop.step is None
        assert len(loop.body) == 1

    def test_do_with_step(self):
        body = parse_body("do i = 1, n, 2\nx = i\nend do")
        assert body[0].step.value == 2

    def test_do_labeled_continue(self):
        src = (
            "      program t\n"
            "      do 10 i = 1, n\n"
            "      x = i\n"
            "   10 continue\n"
            "      end\n"
        )
        loop = parse_source(src).units[0].body[0]
        assert isinstance(loop, DoLoop)
        assert loop.end_label == 10
        assert len(loop.body) == 1  # trailing CONTINUE dropped

    def test_do_labeled_terminal_statement_kept(self):
        src = (
            "      program t\n"
            "      do 10 i = 1, n\n"
            "   10 x = i\n"
            "      end\n"
        )
        loop = parse_source(src).units[0].body[0]
        assert len(loop.body) == 1
        assert isinstance(loop.body[0], Assign)

    def test_nested_do(self):
        body = parse_body("do i = 1, n\ndo j = 1, m\nx = i\nend do\nend do")
        outer = body[0]
        inner = outer.body[0]
        assert isinstance(inner, DoLoop) and inner.var == "j"

    def test_block_if_then_else(self):
        body = parse_body("if (a .gt. 0) then\nx = 1\nelse\nx = 2\nend if")
        st = body[0]
        assert isinstance(st, If) and st.block
        assert len(st.arms) == 2
        assert st.arms[1][0] is None

    def test_elseif_chain(self):
        body = parse_body(
            "if (a .gt. 0) then\nx = 1\nelse if (a .lt. 0) then\nx = 2\n"
            "else\nx = 3\nend if"
        )
        st = body[0]
        assert len(st.arms) == 3

    def test_logical_if(self):
        body = parse_body("if (a .gt. 0) x = 1")
        st = body[0]
        assert isinstance(st, If) and not st.block
        assert isinstance(st.arms[0][1][0], Assign)

    def test_logical_if_goto(self):
        body = parse_body("if (a .gt. 0) goto 10\n10 continue")
        st = body[0]
        assert isinstance(st.arms[0][1][0], GotoStmt)

    def test_call_statement(self):
        body = parse_body("call foo(x, 1)")
        st = body[0]
        assert isinstance(st, CallStmt)
        assert st.name == "foo" and len(st.args) == 2

    def test_call_no_args(self):
        body = parse_body("call foo")
        assert body[0].args == []

    def test_goto(self):
        body = parse_body("goto 99\n99 continue")
        assert isinstance(body[0], GotoStmt) and body[0].target == 99

    def test_go_to_two_words(self):
        body = parse_body("go to 99\n99 continue")
        assert isinstance(body[0], GotoStmt)

    def test_return_stop_continue(self):
        body = parse_body("continue\nstop")
        assert isinstance(body[1], StopStmt)

    def test_write_statement(self):
        body = parse_body("write (6, *) x, y")
        st = body[0]
        assert isinstance(st, IOStmt) and st.kind == "write"
        assert len(st.items) == 2

    def test_print_statement(self):
        body = parse_body("print *, x")
        assert body[0].kind == "print"

    def test_read_statement(self):
        body = parse_body("read (5, *) n")
        assert body[0].kind == "read"

    def test_statement_labels_preserved(self):
        src = "      program t\n   30 x = 1\n      end\n"
        body = parse_source(src).units[0].body
        assert body[0].label == 30

    def test_assignment_to_variable_named_if(self):
        # No reserved words: "if" can be an array.
        src = "      program t\n      integer if(3)\n      if(2) = 5\n      end\n"
        body = parse_source(src).units[0].body
        assert isinstance(body[0], Assign)

    def test_do_variable_named_do_scalar_assign(self):
        body = parse_body("do = 3")
        assert isinstance(body[0], Assign)
        assert body[0].target.name == "do"


class TestBinder:
    def test_array_ref_resolution(self):
        sf = parse_and_bind(
            "      program t\n      real a(10)\n      a(1) = 2.0\n      x = a(2)\n      end\n"
        )
        body = sf.units[0].body
        assert isinstance(body[0].target, ArrayRef)
        assert isinstance(body[1].expr, ArrayRef)

    def test_intrinsic_resolution(self):
        sf = parse_and_bind("      program t\n      x = sqrt(y)\n      end\n")
        e = sf.units[0].body[0].expr
        assert isinstance(e, FuncRef) and e.intrinsic

    def test_user_function_resolution(self):
        src = (
            "      program t\n      x = f(y)\n      end\n"
            "      function f(z)\n      f = z\n      end\n"
        )
        sf = parse_and_bind(src)
        e = sf.units[0].body[0].expr
        assert isinstance(e, FuncRef) and not e.intrinsic

    def test_external_overrides_intrinsic(self):
        src = "      program t\n      external sqrt\n      x = sqrt(y)\n      end\n"
        sf = parse_and_bind(src)
        e = sf.units[0].body[0].expr
        assert isinstance(e, FuncRef) and not e.intrinsic

    def test_statement_numbering(self):
        sf = parse_and_bind(
            "      program t\n      x = 1\n      do i = 1, 3\n      y = 2\n"
            "      end do\n      end\n"
        )
        sids = [st.sid for st in sf.units[0].all_statements()]
        assert sids == [0, 1, 2]
