"""Property tests: expression printing round-trips *semantically*.

Random integer expressions over the full operator set are printed and
re-parsed; the interpreter must compute the same value for the original
and reprinted forms — catching precedence/parenthesisation bugs that a
purely structural round-trip could mask.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis.constants import eval_const
from repro.fortran import parse_and_bind
from repro.fortran.printer import expr_to_str


@st.composite
def arith_exprs(draw, depth=0):
    if depth > 3:
        return str(draw(st.integers(1, 9)))
    kind = draw(st.integers(0, 6))
    if kind == 0:
        return str(draw(st.integers(1, 9)))
    if kind == 1:
        inner = draw(arith_exprs(depth=depth + 1))
        return f"(-({inner}))"
    if kind == 6:
        base = draw(st.integers(1, 3))
        exp = draw(st.integers(0, 3))
        return f"{base} ** {exp}"
    a = draw(arith_exprs(depth=depth + 1))
    b = draw(arith_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*", "/"]))
    if op == "/":
        # Keep divisors nonzero: literal divisor.
        b = str(draw(st.integers(1, 9)))
    return f"({a} {op} {b})"


def _expr_of(text):
    src = f"      program t\n      i = {text}\n      end\n"
    return parse_and_bind(src).units[0].body[0].expr


@settings(max_examples=250, deadline=None)
@given(arith_exprs())
def test_reprint_preserves_value(text):
    expr = _expr_of(text)
    value = eval_const(expr, {})
    if value is None:
        return  # division edge: skip
    reprinted = expr_to_str(expr)
    expr2 = _expr_of(reprinted)
    assert eval_const(expr2, {}) == value, reprinted


@st.composite
def logical_exprs(draw, depth=0):
    if depth > 2:
        a = draw(st.integers(0, 9))
        b = draw(st.integers(0, 9))
        op = draw(st.sampled_from([".lt.", ".le.", ".gt.", ".ge.", ".eq.", ".ne."]))
        return f"{a} {op} {b}"
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(logical_exprs(depth=3))
    if kind == 1:
        inner = draw(logical_exprs(depth=depth + 1))
        return f".not. ({inner})"
    a = draw(logical_exprs(depth=depth + 1))
    b = draw(logical_exprs(depth=depth + 1))
    op = draw(st.sampled_from([".and.", ".or."]))
    return f"({a}) {op} ({b})"


@settings(max_examples=250, deadline=None)
@given(logical_exprs())
def test_logical_reprint_preserves_value(text):
    expr = _expr_of(text)
    value = eval_const(expr, {})
    assert value is not None
    reprinted = expr_to_str(expr)
    expr2 = _expr_of(reprinted)
    assert eval_const(expr2, {}) == value, reprinted
