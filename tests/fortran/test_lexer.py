"""Unit tests for the Fortran tokenizer."""

import pytest

from repro.fortran import lexer as lx
from repro.fortran.errors import LexError
from repro.fortran.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind not in (lx.NEWLINE, lx.EOF)]


def values(source):
    return [t.value for t in tokenize(source) if t.kind not in (lx.NEWLINE, lx.EOF)]


class TestBasicTokens:
    def test_names_are_lowercased(self):
        assert values("      X = Foo") == ["x", "=", "foo"]

    def test_integer_literal(self):
        toks = tokenize("      i = 42")
        assert [t for t in toks if t.kind == lx.INT][0].value == "42"

    def test_real_literal(self):
        toks = [t for t in tokenize("      x = 3.14") if t.kind == lx.REAL]
        assert toks[0].value == "3.14"

    def test_real_with_exponent(self):
        toks = [t for t in tokenize("      x = 1.5e-3") if t.kind == lx.REAL]
        assert toks[0].value == "1.5e-3"

    def test_double_precision_exponent_normalised(self):
        toks = [t for t in tokenize("      x = 1.0d0") if t.kind == lx.REAL]
        assert toks[0].value == "1.0e0"

    def test_integer_then_exponent(self):
        toks = [t for t in tokenize("      x = 1e6") if t.kind == lx.REAL]
        assert toks[0].value == "1e6"

    def test_string_literal(self):
        toks = [t for t in tokenize("      s = 'hello'") if t.kind == lx.STRING]
        assert toks[0].value == "hello"

    def test_string_with_doubled_quote(self):
        toks = [t for t in tokenize("      s = 'don''t'") if t.kind == lx.STRING]
        assert toks[0].value == "don't"

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize("      s = 'oops")

    def test_power_operator(self):
        assert "**" in values("      x = y ** 2")

    def test_unexpected_character_raises(self):
        with pytest.raises(LexError):
            tokenize("      x = y ? z")


class TestDottedOperators:
    @pytest.mark.parametrize(
        "dotted,canon",
        [
            (".lt.", "<"),
            (".le.", "<="),
            (".gt.", ">"),
            (".ge.", ">="),
            (".eq.", "=="),
            (".ne.", "/="),
            (".and.", ".and."),
            (".or.", ".or."),
            (".not.", ".not."),
        ],
    )
    def test_canonical_spelling(self, dotted, canon):
        assert canon in values(f"      if (a {dotted} b) goto 10")

    def test_dotted_ops_case_insensitive(self):
        assert "<" in values("      if (a .LT. b) goto 10")

    def test_logical_literals(self):
        vals = values("      flag = .TRUE. .or. .false.")
        assert ".true." in vals and ".false." in vals

    def test_real_adjacent_to_dotted_op(self):
        # "1.eq." must lex as INT 1 then .eq., not a real literal "1."
        vals = values("      if (i .eq. 1) goto 10")
        assert "==" in vals


class TestCommentsAndContinuations:
    def test_column_one_c_comment(self):
        src = "C this is a comment\n      x = 1"
        assert values(src) == ["x", "=", "1"]

    def test_star_comment(self):
        src = "* star comment\n      x = 1"
        assert values(src) == ["x", "=", "1"]

    def test_bang_comment_line(self):
        src = "! free comment\n      x = 1"
        assert values(src) == ["x", "=", "1"]

    def test_inline_bang_comment(self):
        assert values("      x = 1 ! trailing") == ["x", "=", "1"]

    def test_bang_inside_string_kept(self):
        toks = [t for t in tokenize("      s = 'a!b'") if t.kind == lx.STRING]
        assert toks[0].value == "a!b"

    def test_call_at_column_one_is_code(self):
        # Relaxed form: 'call' at column 1 must not be treated as a comment.
        assert values("call foo(x)") == ["call", "foo", "(", "x", ")"]

    def test_common_at_column_one_is_code(self):
        assert values("common /blk/ a")[0] == "common"

    def test_fixed_form_continuation(self):
        src = "      x = a +\n     & b"
        assert values(src) == ["x", "=", "a", "+", "b"]

    def test_free_form_continuation(self):
        src = "      x = a + &\n      b"
        assert values(src) == ["x", "=", "a", "+", "b"]

    def test_blank_lines_skipped(self):
        src = "\n\n      x = 1\n\n"
        assert values(src) == ["x", "=", "1"]


class TestLabels:
    def test_fixed_form_label(self):
        toks = tokenize("   10 continue")
        assert toks[0].kind == lx.LABEL and toks[0].value == "10"

    def test_label_then_statement(self):
        toks = tokenize("   20 x = 1")
        assert toks[0].kind == lx.LABEL
        assert toks[1].value == "x"

    def test_statement_without_label(self):
        toks = tokenize("      x = 1")
        assert toks[0].kind != lx.LABEL

    def test_newline_tokens_separate_statements(self):
        toks = tokenize("      x = 1\n      y = 2")
        newlines = [t for t in toks if t.kind == lx.NEWLINE]
        assert len(newlines) == 2

    def test_line_numbers_recorded(self):
        toks = tokenize("      x = 1\n      y = 2")
        ys = [t for t in toks if t.kind == lx.NAME and t.value == "y"]
        assert ys[0].line == 2
