"""Unit tests for the unparser (printer)."""

import pytest

from repro.fortran import parse_and_bind, parse_source, to_source
from repro.fortran.printer import expr_to_str


def roundtrip(src):
    out1 = to_source(parse_source(src))
    out2 = to_source(parse_source(out1))
    assert out1 == out2
    return out1


def body_expr(text, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    src += f"      x = {text}\n      end\n"
    return parse_and_bind(src).units[0].body[0].expr


class TestExpressionPrinting:
    def test_simple_sum(self):
        assert expr_to_str(body_expr("a + b")) == "a + b"

    def test_precedence_no_extra_parens(self):
        assert expr_to_str(body_expr("a + b * c")) == "a + b * c"

    def test_needed_parens_kept(self):
        assert expr_to_str(body_expr("(a + b) * c")) == "(a + b) * c"

    def test_right_assoc_subtraction(self):
        assert expr_to_str(body_expr("a - (b - c)")) == "a - (b - c)"

    def test_left_assoc_subtraction_flat(self):
        assert expr_to_str(body_expr("a - b - c")) == "a - b - c"

    def test_power(self):
        assert expr_to_str(body_expr("a ** 2")) == "a ** 2"

    def test_relational_roundtrip_dotted(self):
        src = "      program t\n      if (a .lt. b) x = 1\n      end\n"
        out = to_source(parse_source(src))
        assert ".lt." in out

    def test_array_ref(self):
        assert expr_to_str(body_expr("a(i, j + 1)", "real a(5, 5)")) == "a(i, j + 1)"

    def test_function_call(self):
        assert expr_to_str(body_expr("sqrt(x + 1.0)")) == "sqrt(x + 1.0)"

    def test_string_with_quote(self):
        assert expr_to_str(body_expr("'don''t'")) == "'don''t'"

    def test_unary_minus_in_product(self):
        text = expr_to_str(body_expr("a * (-b)"))
        assert "(-b)" in text


class TestStatementPrinting:
    def test_do_loop_roundtrip(self):
        out = roundtrip(
            "      program t\n      do i = 1, n\n      x = i\n      end do\n      end\n"
        )
        assert "do i = 1, n" in out
        assert "end do" in out

    def test_labeled_do_becomes_structured(self):
        out = roundtrip(
            "      program t\n      do 10 i = 1, n\n      x = i\n   10 continue\n      end\n"
        )
        assert "end do" in out

    def test_if_block(self):
        out = roundtrip(
            "      program t\n      if (a .gt. 0) then\n      x = 1\n"
            "      else\n      x = 2\n      end if\n      end\n"
        )
        assert "else" in out and "end if" in out

    def test_logical_if_stays_one_line(self):
        out = roundtrip("      program t\n      if (a .gt. 0) x = 1\n      end\n")
        assert "if (a .gt. 0) x = 1" in out

    def test_labels_preserved(self):
        out = roundtrip("      program t\n   30 x = 1\n      goto 30\n      end\n")
        assert "   30   x = 1" in out
        assert "goto 30" in out

    def test_declarations_printed(self):
        out = roundtrip(
            "      program t\n      integer n\n      parameter (n = 4)\n"
            "      real a(n, 0:n)\n      common /blk/ q\n      end\n"
        )
        assert "parameter (n = 4)" in out
        assert "a(n, 0:n)" in out
        assert "common /blk/ q" in out

    def test_subroutine_header(self):
        out = roundtrip("      subroutine s(a, n)\n      return\n      end\n")
        assert "subroutine s(a, n)" in out

    def test_typed_function_header(self):
        out = roundtrip("      real function f(x)\n      f = x\n      end\n")
        assert "real function f(x)" in out

    def test_parallel_loop_directive(self):
        sf = parse_and_bind(
            "      program t\n      real a(10)\n      do i = 1, 10\n"
            "      a(i) = 0.0\n      end do\n      end\n"
        )
        loop = sf.units[0].body[0]
        loop.parallel = True
        loop.private = ["t1"]
        loop.reductions = [("+", "s")]
        out = to_source(sf)
        assert "c$par doall private(t1) reduction(+:s)" in out
        # Directive must survive re-parsing as a comment.
        to_source(parse_source(out))

    def test_io_statements(self):
        out = roundtrip(
            "      program t\n      write (6, *) x\n      print *, y\n"
            "      read (5, *) n\n      end\n"
        )
        assert "write (6, *) x" in out
        assert "print *, y" in out
        assert "read (5, *) n" in out
