"""Property-based round-trip tests for the front end.

Random programs in the supported subset are generated, printed, re-parsed
and re-printed; the second print must equal the first (print/parse is a
projection onto a canonical form, and the canonical form is a fixed point).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.fortran import parse_source, to_source

names = st.sampled_from(["i", "j", "k", "n", "m", "x", "y", "z"])
array_names = st.sampled_from(["a", "b", "c"])
ints = st.integers(min_value=0, max_value=99)


@st.composite
def exprs(draw, depth=0):
    if depth > 3:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 4))
    if choice == 0:
        return str(draw(ints))
    if choice == 1:
        return draw(names)
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(exprs(depth=depth + 1))
        right = draw(exprs(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == 3:
        arr = draw(array_names)
        sub = draw(exprs(depth=depth + 1))
        return f"{arr}({sub})"
    fn = draw(st.sampled_from(["sqrt", "abs"]))
    arg = draw(exprs(depth=depth + 1))
    return f"{fn}({arg})"


@st.composite
def statements(draw, depth=0):
    kind = draw(st.integers(0, 4 if depth < 2 else 2))
    if kind in (0, 1):
        target = draw(names)
        value = draw(exprs())
        return [f"{target} = {value}"]
    if kind == 2:
        arr = draw(array_names)
        sub = draw(exprs(depth=2))
        value = draw(exprs(depth=2))
        return [f"{arr}({sub}) = {value}"]
    if kind == 3:
        var = draw(st.sampled_from(["i", "j", "k"]))
        lo = draw(ints)
        hi = draw(ints)
        inner = draw(statements(depth=depth + 1))
        return [f"do {var} = {lo}, {hi}", *inner, "end do"]
    cond_l = draw(exprs(depth=2))
    cond_r = draw(exprs(depth=2))
    then_body = draw(statements(depth=depth + 1))
    else_body = draw(statements(depth=depth + 1))
    return [
        f"if ({cond_l} .lt. {cond_r}) then",
        *then_body,
        "else",
        *else_body,
        "end if",
    ]


@st.composite
def programs(draw):
    nstmts = draw(st.integers(1, 4))
    lines = ["      program p", "      real a(100), b(100), c(100)"]
    for _ in range(nstmts):
        for text in draw(statements()):
            lines.append("      " + text)
    lines.append("      end")
    return "\n".join(lines) + "\n"


@settings(max_examples=120, deadline=None)
@given(programs())
def test_print_parse_print_is_fixed_point(src):
    first = to_source(parse_source(src))
    second = to_source(parse_source(first))
    assert first == second


@settings(max_examples=120, deadline=None)
@given(programs())
def test_reparse_preserves_statement_count(src):
    from repro.fortran import walk_statements

    sf1 = parse_source(src)
    sf2 = parse_source(to_source(sf1))
    count1 = sum(1 for _ in walk_statements(sf1.units[0].body))
    count2 = sum(1 for _ in walk_statements(sf2.units[0].body))
    assert count1 == count2
