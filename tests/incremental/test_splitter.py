"""Unit-span splitting: coverage, line preservation, digest stability."""

import pytest

from repro.fortran.parser import parse_source
from repro.fortran.symbols import parse_and_bind
from repro.incremental import split_units
from repro.workloads import SUITE


@pytest.mark.parametrize("name", sorted(SUITE))
def test_spans_cover_source_exactly(name):
    source = SUITE[name].source
    spans = split_units(source)
    rebuilt = "".join(span.text for span in spans)
    expected = source if source.endswith("\n") else source + "\n"
    assert rebuilt == expected
    # Contiguous, 1-based, inclusive.
    line = 1
    for span in spans:
        assert span.start_line == line
        assert span.end_line >= span.start_line
        line = span.end_line + 1
    assert line == len(source.splitlines()) + 1


@pytest.mark.parametrize("name", sorted(SUITE))
def test_padded_span_reparse_matches_full_parse(name):
    source = SUITE[name].source
    full = parse_and_bind(source)
    spans = split_units(source)
    assert len(spans) == len(full.units)
    for span, want in zip(spans, full.units):
        padded = "\n" * (span.start_line - 1) + span.text
        sub = parse_source(padded)
        assert len(sub.units) == 1
        got = sub.units[0]
        assert got.name == want.name
        assert got.kind == want.kind
        assert got.line == want.line


def test_one_unit_per_span():
    src = (
        "      subroutine a(x)\n"
        "      x = 1\n"
        "      end\n"
        "c a comment between units\n"
        "      subroutine b(y)\n"
        "      y = 2\n"
        "      end\n"
    )
    spans = split_units(src)
    assert [(s.start_line, s.end_line) for s in spans] == [(1, 3), (4, 7)]


def test_enddo_endif_are_not_unit_terminators():
    src = (
        "      subroutine a(x, n)\n"
        "      do i = 1, n\n"
        "         if (x > 0) then\n"
        "            x = x + 1\n"
        "         end if\n"
        "      end do\n"
        "      end\n"
    )
    spans = split_units(src)
    assert len(spans) == 1
    assert spans[0].end_line == 7


def test_trailing_comments_attach_to_last_unit():
    src = "      subroutine a(x)\n      x = 1\n      end\nc trailing note\n"
    spans = split_units(src)
    assert len(spans) == 1
    assert spans[0].end_line == 4


def test_digest_depends_on_text_and_position():
    base = "      subroutine a(x)\n      x = 1\n      end\n"
    (span,) = split_units(base)
    (edited,) = split_units(base.replace("x = 1", "x = 2"))
    assert edited.digest != span.digest
    # Same text shifted down (unit moved) must rekey too: statement line
    # numbers, and therefore analysis artifacts, change with position.
    shifted = split_units("      subroutine z(q)\n      q = 0\n      end\n" + base)
    assert shifted[1].text == span.text
    assert shifted[1].digest != span.digest
    # And resplitting identical source is stable.
    (again,) = split_units(base)
    assert again.digest == span.digest


def test_empty_and_comment_only_sources():
    assert split_units("") == []
    spans = split_units("c just a comment\nc another\n")
    assert len(spans) == 1
    assert parse_source(spans[0].text).units == []
