"""Engine cache correctness and incrementality.

The engine's contract: after *any* sequence of edits and assertion
changes, its results equal a from-scratch ``analyze_program`` (modulo
meaningless dependence-edge ids — compared via fingerprints), while
touching only the units an edit actually dirtied.
"""

import re

import pytest

from repro.assertions.engine import AssertionDB
from repro.fortran.symbols import parse_and_bind
from repro.incremental import AnalysisEngine, program_fingerprint
from repro.interproc.program import FeatureSet, analyze_program
from repro.workloads import SUITE

THREE_UNITS = (
    "      program main\n"
    "      real x(100)\n"
    "      call init(x, 100)\n"
    "      call scale(x, 100)\n"
    "      end\n"
    "      subroutine init(a, n)\n"
    "      real a(100)\n"
    "      do i = 1, n\n"
    "         a(i) = 0.0\n"
    "      enddo\n"
    "      end\n"
    "      subroutine scale(a, n)\n"
    "      real a(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) * 2.0\n"
    "      enddo\n"
    "      end\n"
)


def _scratch(source, assertions=None):
    oracles = {}
    for unit, texts in (assertions or {}).items():
        db = AssertionDB()
        for text in texts:
            db.add(text)
        oracles[unit] = db
    return analyze_program(
        parse_and_bind(source), FeatureSet(), oracles_by_unit=oracles
    )


def _assert_parity(engine, source, assertions=None):
    _, pa = engine.analyze(source, assertions=assertions)
    ref = _scratch(source, assertions)
    assert program_fingerprint(pa) == program_fingerprint(ref)
    return pa


def _edit_steps(source):
    """A deterministic edit script for one program: tweak a numeric
    assignment, insert a comment mid-file (shifting every later unit),
    then revert — exercising reparse, renumber and cache-revisit paths."""

    lines = source.splitlines()
    steps = []
    for i, text in enumerate(lines):
        if (
            re.search(r"= .*[0-9]", text)
            and "do " not in text
            and "parameter" not in text
        ):
            tweaked = list(lines)
            tweaked[i] = text + " + 0.0"
            steps.append("\n".join(tweaked) + "\n")
            break
    mid = len(lines) // 2
    commented = list(lines)
    commented.insert(mid, "c incremental-engine probe")
    steps.append("\n".join(commented) + "\n")
    steps.append(source if source.endswith("\n") else source + "\n")
    return steps


@pytest.mark.parametrize("name", sorted(SUITE))
def test_engine_matches_scratch_across_edit_sequences(name):
    source = SUITE[name].source
    engine = AnalysisEngine()
    _assert_parity(engine, source)
    for step_source in _edit_steps(source):
        _assert_parity(engine, step_source)
    # Assertions enter and leave without disturbing parity.
    first_unit = parse_and_bind(source).units[0].name
    _assert_parity(engine, source, assertions={first_unit: ["n >= 1"]})
    _assert_parity(engine, source)


def test_second_analysis_is_all_hits():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    misses = {
        stage: engine.stats.stage(stage).misses
        for stage in ("parse", "modref", "kill", "sections", "ipconst", "dependence")
    }
    engine.analyze(THREE_UNITS)
    for stage, before in misses.items():
        assert engine.stats.stage(stage).misses == before, stage
    assert engine.stats.stage("parse").hits == 3
    assert engine.stats.stage("dependence").hits == 3


def test_single_unit_edit_dirties_only_its_region():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    stats = engine.stats
    before = {s: stats.stage(s).misses for s in ("parse", "modref", "ipconst", "dependence")}
    edited = THREE_UNITS.replace("* 2.0", "* 3.0")
    _, pa = engine.analyze(edited)
    assert stats.stage("parse").misses - before["parse"] == 1
    # Bottom-up phases close over callers: scale + main are dirty, init is not.
    assert stats.stage("modref").misses - before["modref"] == 2
    # Top-down constants close over callees: only scale is dirty.
    assert stats.stage("ipconst").misses - before["ipconst"] == 1
    # scale's summaries recompute to identical values, so no revision
    # bump reaches main: only the edited unit's dependence stage reruns.
    assert stats.stage("dependence").misses - before["dependence"] == 1
    assert program_fingerprint(pa) == program_fingerprint(_scratch(edited))


def test_assertion_change_reanalyzes_without_reparse():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    parse_before = engine.stats.stage("parse").misses
    dep_before = engine.stats.stage("dependence").misses
    _assert_parity(engine, THREE_UNITS, assertions={"scale": ["n >= 1"]})
    assert engine.stats.stage("parse").misses == parse_before
    assert engine.stats.stage("dependence").misses == dep_before + 1
    # Dropping the assertion recomputes scale once more (the cache keeps
    # one entry per unit, keyed by the *current* assertion set) — still
    # with no reparse, and the other units stay cached.
    dep_before = engine.stats.stage("dependence").misses
    _assert_parity(engine, THREE_UNITS)
    assert engine.stats.stage("parse").misses == parse_before
    assert engine.stats.stage("dependence").misses == dep_before + 1


def test_unit_set_change_flushes_cleanly():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    extended = THREE_UNITS + (
        "      subroutine reset(a, n)\n"
        "      real a(100)\n"
        "      do i = 1, n\n"
        "         a(i) = 0.0\n"
        "      enddo\n"
        "      end\n"
    )
    parse_before = engine.stats.stage("parse").misses
    _, pa = engine.analyze(extended)
    # Adding a unit changes the {name: kind} map: one miss discovering
    # the new span, then a full flush reparses all four units cleanly.
    assert engine.stats.stage("parse").misses - parse_before == 5
    assert program_fingerprint(pa) == program_fingerprint(_scratch(extended))
    # And shrinking back works too.
    _assert_parity(engine, THREE_UNITS)


def test_parse_errors_propagate_and_leave_caches_usable():
    from repro.fortran.errors import FortranError

    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    broken = THREE_UNITS.replace("do i = 1, n\n         a(i) = a(i) * 2.0", "do i = 1 n\n         a(i) = a(i) * 2.0")
    with pytest.raises(FortranError):
        engine.analyze(broken)
    # Rollback path: the previous source is still served, mostly cached.
    _assert_parity(engine, THREE_UNITS)


def test_cached_graphs_are_restored_pristine_across_sessions():
    from repro.editor import PedSession

    engine = AnalysisEngine(features=FeatureSet(scalar_kill=False))
    first = PedSession(THREE_UNITS, engine=engine)
    first.select_unit("scale")
    # Find any pending dependence and accept it.
    pending = [d for d in first.unit_analysis.graph.edges if d.marking == "pending"]
    if pending:
        first.mark_dependence(pending[0].id, "accepted")
    # A second session sharing the engine must not see the first
    # session's markings bleed through the cache.
    second = PedSession(THREE_UNITS, engine=engine)
    ua = second.analysis.unit("scale")
    assert all(d.marking != "accepted" for d in ua.graph.edges)


def test_stats_snapshot_and_render():
    engine = AnalysisEngine()
    engine.analyze(THREE_UNITS)
    snap = engine.stats.snapshot()
    assert snap["analyses"] == 1
    assert snap["stages"]["parse"]["misses"] == 3
    text = engine.stats.render()
    assert "dependence" in text and "hit%" in text
    engine.stats.reset()
    assert engine.stats.analyses == 0
