"""Hot-path parity: the optimized dependence pipeline changes nothing.

Pair pruning, test memoization and the indexed graph queries are pure
performance work; this suite proves it by running every workload program
through the reference pipeline (both hot-path switches off) and the
optimized pipeline (switches on, individually and together) and
requiring byte-identical structural fingerprints — including under user
assertions and variable overrides, the paths that mutate the oracle
mid-session.
"""

from contextlib import contextmanager

import pytest

from repro.dependence import driver
from repro.fortran import parse_and_bind
from repro.incremental import program_fingerprint
from repro.interproc import FeatureSet, analyze_program
from repro.workloads import SUITE


@contextmanager
def hot_path(prune: bool, memo: bool, share: bool = False):
    saved = (
        driver.HOT_PATH.prune_pairs,
        driver.HOT_PATH.memoize_pairs,
        driver.HOT_PATH.share_pairs,
    )
    driver.HOT_PATH.prune_pairs = prune
    driver.HOT_PATH.memoize_pairs = memo
    driver.HOT_PATH.share_pairs = share
    try:
        yield
    finally:
        (
            driver.HOT_PATH.prune_pairs,
            driver.HOT_PATH.memoize_pairs,
            driver.HOT_PATH.share_pairs,
        ) = saved


def fingerprint_of(
    source: str, prune: bool, memo: bool, share: bool = False, features=None
):
    with hot_path(prune, memo, share):
        sf = parse_and_bind(source)
        pa = analyze_program(sf, features or FeatureSet())
    return program_fingerprint(pa)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_parity_fully_optimized(name):
    source = SUITE[name].source
    reference = fingerprint_of(source, prune=False, memo=False)
    optimized = fingerprint_of(source, prune=True, memo=True, share=True)
    assert optimized == reference


@pytest.mark.parametrize(
    "prune,memo,share",
    [(True, False, False), (False, True, False), (False, True, True)],
)
def test_each_switch_alone_preserves_results(prune, memo, share):
    # The switches must be independently sound, not only in combination.
    for name in ("spec77", "onedim", "interior"):
        source = SUITE[name].source
        reference = fingerprint_of(source, prune=False, memo=False)
        assert fingerprint_of(source, prune, memo, share) == reference, name


def test_parity_under_assertions_and_overrides():
    """Sessions mutate the oracle (assertions) and the variable
    classification (overrides); the optimized pipeline must track both
    exactly — this is where a stale memo would show."""

    from repro.editor.session import PedSession

    source = SUITE["onedim"].source

    def run_session(prune: bool, memo: bool, share: bool):
        with hot_path(prune, memo, share):
            session = PedSession(source)
            session.select_unit("build")
            session.select_loop(0)
            prints = [program_fingerprint(session.analysis)]
            session.add_assertion("n >= 1")
            prints.append(program_fingerprint(session.analysis))
            session.reclassify("t", "private")
            prints.append(program_fingerprint(session.analysis))
            session.undo()
            prints.append(program_fingerprint(session.analysis))
        return prints

    assert run_session(True, True, True) == run_session(False, False, False)


def test_memo_invalidates_when_assertions_change():
    """A long-lived tester must drop its memo the moment the oracle's
    assertion set changes — a stale hit would freeze the old verdict."""

    from repro.assertions.engine import AssertionDB
    from repro.dependence.hierarchy import DependenceTester
    from repro.dependence.references import collect_refs
    from repro.dependence.tests import LoopBound

    source = (
        "      subroutine s(a, n)\n"
        "      integer n, i\n"
        "      real a(400)\n"
        "      do 10 i = 1, 100\n"
        "         a(i) = a(i+n) * 2.0\n"
        " 10   continue\n"
        "      end\n"
    )
    unit = parse_and_bind(source).units[0]
    refs = [r for r in collect_refs(unit) if r.array == "a"]
    write = next(r for r in refs if r.is_write)
    read = next(r for r in refs if not r.is_write)
    bounds = [LoopBound("i", 1.0, 100.0)]

    db = AssertionDB()
    tester = DependenceTester(unit.symtab, db)
    first = tester.test_pair(write, read, bounds)
    again = tester.test_pair(write, read, bounds)
    assert tester.memo_hits == 1
    assert not first.independent  # nothing known about n: assumed dep
    assert again.independent == first.independent

    # n > 100 puts a(i+n) beyond every a(i): provably independent now.
    db.add("n > 100")
    after = tester.test_pair(write, read, bounds)
    assert after.independent
    assert tester.memo_hits == 1  # the stale entry was dropped, not hit

    fresh = DependenceTester(unit.symtab, db, memoize=False)
    unmemoized = fresh.test_pair(write, read, bounds)
    assert after.independent == unmemoized.independent
    assert after.resolved_by == unmemoized.resolved_by


@pytest.mark.parametrize("share", [False, True])
def test_memo_replay_preserves_tier_statistics(share):
    """A memo hit — local or shared — must bump the tier counters
    exactly as a real run; the M1 hierarchy statistics may not depend on
    cache behaviour."""

    source = SUITE["spec77"].source
    with hot_path(False, True, share):
        sf = parse_and_bind(source)
        pa_memo = analyze_program(sf, FeatureSet())
    with hot_path(False, False):
        sf = parse_and_bind(source)
        pa_ref = analyze_program(sf, FeatureSet())
    for name, ua in pa_ref.units.items():
        memo_tester = pa_memo.units[name].tester
        assert memo_tester.tier_counts == ua.tester.tier_counts, name
        assert memo_tester.pair_resolution == ua.tester.pair_resolution, name
        assert (
            memo_tester.pair_resolution_classic
            == ua.tester.pair_resolution_classic
        ), name


def test_hotpath_counters_fire_on_real_workloads():
    from repro.workloads.generator import generate_program

    source = generate_program(n_routines=10)
    sf = parse_and_bind(source)
    pa = analyze_program(sf, FeatureSet())
    totals = {}
    for ua in pa.units.values():
        for key, value in ua.hotpath_stats().items():
            totals[key] = totals.get(key, 0) + value
    assert totals["pairs_pruned"] > 0
    assert totals["memo_hits"] > 0
    # The memo also proved its keep: hits dominate misses on generated
    # programs, whose routines repeat the same access patterns.
    assert totals["memo_hits"] > totals["memo_misses"]
    # And the program-scoped memo fires across units: the generated
    # routines repeat the same stencil shape under different names.
    assert totals["shared_hits"] > 0


def test_shared_memo_export_absorb_counts_once():
    """The export/absorb protocol must be exactly-once for both entries
    and counters, whether export is called on the live object (serial
    path) or a copy (worker path)."""

    import pickle

    from repro.dependence.hierarchy import SharedPairMemo

    live = SharedPairMemo()
    live.lookup(("k1",))  # miss
    live.store(("k1",), ("v1",))
    live.lookup(("k1",))  # hit
    assert (live.hits, live.misses) == (1, 1)

    # Serial path: export drains the live object's pending state, absorb
    # puts the same numbers back — totals unchanged, not doubled.
    live.absorb(live.export())
    assert (live.hits, live.misses) == (1, 1)
    assert live.entries == {("k1",): ("v1",)}

    # Worker path: a pickled copy works and exports independently.
    copy = pickle.loads(pickle.dumps(live))
    copy.lookup(("k1",))  # hit in the copy
    copy.lookup(("k2",))  # miss in the copy
    copy.store(("k2",), ("v2",))
    live.absorb(copy.export())
    assert (live.hits, live.misses) == (2, 2)
    assert live.entries[("k2",)] == ("v2",)


def test_persisted_memo_warms_a_sibling_program(tmp_path):
    """A fresh engine over a *different* program sharing subscript
    shapes must hit the disk-persisted shared memo — with fingerprints
    identical to a from-scratch analysis."""

    from repro.incremental import AnalysisEngine
    from repro.service import build_engine
    from repro.workloads.generator import generate_program

    base = generate_program(n_routines=8)
    # A sibling: half the routines keep their exact spans, the rest get
    # a wider stencil (content change, same program shape).
    marker = "(x(i+1) - x(i-1))"
    parts = base.split("      subroutine upd")
    out = [parts[0]]
    for p in parts[1:]:
        if int(p.split("(")[0]) >= 4:
            p = p.replace(marker, "(x(i+2) - x(i-2))")
        out.append(p)
    sibling = "      subroutine upd".join(out)
    assert sibling != base

    cache = tmp_path / "cache"
    first = build_engine(cache_dir=cache)
    first.analyze(base)
    assert first.stats.counters["memo.persisted_entries"] > 0

    second = build_engine(cache_dir=cache)
    _, pa = second.analyze(sibling)
    _, pa_scratch = AnalysisEngine().analyze(sibling)
    assert program_fingerprint(pa) == program_fingerprint(pa_scratch)
    counters = second.stats.counters
    # Cold program key (never seen), warm everything else: spans and
    # unit summaries for the unchanged routines, memo entries for all.
    assert "disk.warm_start" not in counters
    assert counters["disk.span_warm"] > 0
    assert counters["disk.usum_hit"] > 0
    assert counters["memo.shared_hits"] > 0


def test_indexed_queries_match_full_scans():
    """Every secondary index answers exactly like a scan of ``edges``."""

    sf = parse_and_bind(SUITE["spec77"].source)
    pa = analyze_program(sf, FeatureSet())
    for ua in pa.units.values():
        g = ua.graph
        for dep in g.edges:
            assert g.find(dep.id) is dep
        for var in {d.var for d in g.edges}:
            assert g.with_var(var) == [d for d in g.edges if d.var == var]
        for nest in ua.loops:
            loop = nest.loop
            assert g.carried_by(loop) == [
                d
                for d in g.edges
                if d.kind != "control" and d.carrier_sid() == loop.sid
            ]
            assert g.in_nest(loop.sid) == [
                d for d in g.edges if loop.sid in d.nest_sids
            ]
            sids = ua.body_sids(loop) | {loop.sid}
            assert g.edges_within(sids) == [
                d
                for d in g.edges
                if d.src_sid in sids and d.dst_sid in sids
            ]
            # The sparse path must agree with the dense path regardless
            # of the selectivity heuristic's choice.
            small = set(list(sids)[:2])
            assert g.edges_within(small) == [
                d
                for d in g.edges
                if d.src_sid in small and d.dst_sid in small
            ]


def test_statement_index_matches_walks():
    from repro.fortran.ast_nodes import walk_statements

    for name in ("spec77", "arc3d", "boast"):
        sf = parse_and_bind(SUITE[name].source)
        for unit in sf.units:
            index = driver.UnitStatementIndex(unit)
            for st in walk_statements(unit.body):
                if st.label is not None:
                    assert index.label_to_sid[st.label] == driver._label_target(
                        unit, st.label
                    )
            for nest in driver.collect_loops(unit):
                loop = nest.loop
                walked = list(walk_statements(loop.body))
                assert index.body_statements(loop) == walked
                assert index.body_sids(loop) == {s.sid for s in walked}
