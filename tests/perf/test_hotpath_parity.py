"""Hot-path parity: the optimized dependence pipeline changes nothing.

Pair pruning, test memoization and the indexed graph queries are pure
performance work; this suite proves it by running every workload program
through the reference pipeline (both hot-path switches off) and the
optimized pipeline (switches on, individually and together) and
requiring byte-identical structural fingerprints — including under user
assertions and variable overrides, the paths that mutate the oracle
mid-session.
"""

from contextlib import contextmanager

import pytest

from repro.dependence import driver
from repro.fortran import parse_and_bind
from repro.incremental import program_fingerprint
from repro.interproc import FeatureSet, analyze_program
from repro.workloads import SUITE


@contextmanager
def hot_path(prune: bool, memo: bool):
    saved = (driver.HOT_PATH.prune_pairs, driver.HOT_PATH.memoize_pairs)
    driver.HOT_PATH.prune_pairs = prune
    driver.HOT_PATH.memoize_pairs = memo
    try:
        yield
    finally:
        driver.HOT_PATH.prune_pairs, driver.HOT_PATH.memoize_pairs = saved


def fingerprint_of(source: str, prune: bool, memo: bool, features=None):
    with hot_path(prune, memo):
        sf = parse_and_bind(source)
        pa = analyze_program(sf, features or FeatureSet())
    return program_fingerprint(pa)


@pytest.mark.parametrize("name", sorted(SUITE))
def test_suite_parity_fully_optimized(name):
    source = SUITE[name].source
    reference = fingerprint_of(source, prune=False, memo=False)
    optimized = fingerprint_of(source, prune=True, memo=True)
    assert optimized == reference


@pytest.mark.parametrize("prune,memo", [(True, False), (False, True)])
def test_each_switch_alone_preserves_results(prune, memo):
    # The switches must be independently sound, not only in combination.
    for name in ("spec77", "onedim", "interior"):
        source = SUITE[name].source
        reference = fingerprint_of(source, prune=False, memo=False)
        assert fingerprint_of(source, prune, memo) == reference, name


def test_parity_under_assertions_and_overrides():
    """Sessions mutate the oracle (assertions) and the variable
    classification (overrides); the optimized pipeline must track both
    exactly — this is where a stale memo would show."""

    from repro.editor.session import PedSession

    source = SUITE["onedim"].source

    def run_session(prune: bool, memo: bool):
        with hot_path(prune, memo):
            session = PedSession(source)
            session.select_unit("build")
            session.select_loop(0)
            prints = [program_fingerprint(session.analysis)]
            session.add_assertion("n >= 1")
            prints.append(program_fingerprint(session.analysis))
            session.reclassify("t", "private")
            prints.append(program_fingerprint(session.analysis))
            session.undo()
            prints.append(program_fingerprint(session.analysis))
        return prints

    assert run_session(True, True) == run_session(False, False)


def test_memo_invalidates_when_assertions_change():
    """A long-lived tester must drop its memo the moment the oracle's
    assertion set changes — a stale hit would freeze the old verdict."""

    from repro.assertions.engine import AssertionDB
    from repro.dependence.hierarchy import DependenceTester
    from repro.dependence.references import collect_refs
    from repro.dependence.tests import LoopBound

    source = (
        "      subroutine s(a, n)\n"
        "      integer n, i\n"
        "      real a(400)\n"
        "      do 10 i = 1, 100\n"
        "         a(i) = a(i+n) * 2.0\n"
        " 10   continue\n"
        "      end\n"
    )
    unit = parse_and_bind(source).units[0]
    refs = [r for r in collect_refs(unit) if r.array == "a"]
    write = next(r for r in refs if r.is_write)
    read = next(r for r in refs if not r.is_write)
    bounds = [LoopBound("i", 1.0, 100.0)]

    db = AssertionDB()
    tester = DependenceTester(unit.symtab, db)
    first = tester.test_pair(write, read, bounds)
    again = tester.test_pair(write, read, bounds)
    assert tester.memo_hits == 1
    assert not first.independent  # nothing known about n: assumed dep
    assert again.independent == first.independent

    # n > 100 puts a(i+n) beyond every a(i): provably independent now.
    db.add("n > 100")
    after = tester.test_pair(write, read, bounds)
    assert after.independent
    assert tester.memo_hits == 1  # the stale entry was dropped, not hit

    fresh = DependenceTester(unit.symtab, db, memoize=False)
    unmemoized = fresh.test_pair(write, read, bounds)
    assert after.independent == unmemoized.independent
    assert after.resolved_by == unmemoized.resolved_by


def test_memo_replay_preserves_tier_statistics():
    """A memo hit must bump the tier counters exactly as a real run —
    the M1 hierarchy statistics may not depend on cache behaviour."""

    source = SUITE["spec77"].source
    with hot_path(False, True):
        sf = parse_and_bind(source)
        pa_memo = analyze_program(sf, FeatureSet())
    with hot_path(False, False):
        sf = parse_and_bind(source)
        pa_ref = analyze_program(sf, FeatureSet())
    for name, ua in pa_ref.units.items():
        memo_tester = pa_memo.units[name].tester
        assert memo_tester.tier_counts == ua.tester.tier_counts, name
        assert memo_tester.pair_resolution == ua.tester.pair_resolution, name
        assert (
            memo_tester.pair_resolution_classic
            == ua.tester.pair_resolution_classic
        ), name


def test_hotpath_counters_fire_on_real_workloads():
    from repro.workloads.generator import generate_program

    source = generate_program(n_routines=10)
    sf = parse_and_bind(source)
    pa = analyze_program(sf, FeatureSet())
    totals = {"pairs_pruned": 0, "memo_hits": 0, "memo_misses": 0}
    for ua in pa.units.values():
        for key, value in ua.hotpath_stats().items():
            totals[key] += value
    assert totals["pairs_pruned"] > 0
    assert totals["memo_hits"] > 0
    # The memo also proved its keep: hits dominate misses on generated
    # programs, whose routines repeat the same access patterns.
    assert totals["memo_hits"] > totals["memo_misses"]


def test_indexed_queries_match_full_scans():
    """Every secondary index answers exactly like a scan of ``edges``."""

    sf = parse_and_bind(SUITE["spec77"].source)
    pa = analyze_program(sf, FeatureSet())
    for ua in pa.units.values():
        g = ua.graph
        for dep in g.edges:
            assert g.find(dep.id) is dep
        for var in {d.var for d in g.edges}:
            assert g.with_var(var) == [d for d in g.edges if d.var == var]
        for nest in ua.loops:
            loop = nest.loop
            assert g.carried_by(loop) == [
                d
                for d in g.edges
                if d.kind != "control" and d.carrier_sid() == loop.sid
            ]
            assert g.in_nest(loop.sid) == [
                d for d in g.edges if loop.sid in d.nest_sids
            ]
            sids = ua.body_sids(loop) | {loop.sid}
            assert g.edges_within(sids) == [
                d
                for d in g.edges
                if d.src_sid in sids and d.dst_sid in sids
            ]
            # The sparse path must agree with the dense path regardless
            # of the selectivity heuristic's choice.
            small = set(list(sids)[:2])
            assert g.edges_within(small) == [
                d
                for d in g.edges
                if d.src_sid in small and d.dst_sid in small
            ]


def test_statement_index_matches_walks():
    from repro.fortran.ast_nodes import walk_statements

    for name in ("spec77", "arc3d", "boast"):
        sf = parse_and_bind(SUITE[name].source)
        for unit in sf.units:
            index = driver.UnitStatementIndex(unit)
            for st in walk_statements(unit.body):
                if st.label is not None:
                    assert index.label_to_sid[st.label] == driver._label_target(
                        unit, st.label
                    )
            for nest in driver.collect_loops(unit):
                loop = nest.loop
                walked = list(walk_statements(loop.body))
                assert index.body_statements(loop) == walked
                assert index.body_sids(loop) == {s.sid for s in walked}
