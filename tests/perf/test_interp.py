"""Unit tests for the reference interpreter."""

import pytest

from repro.fortran import parse_and_bind
from repro.perf import Interpreter, InterpError


def run(src, inputs=None, **kw):
    return Interpreter(parse_and_bind(src), inputs=inputs, **kw).run()


def prog(body, decls=""):
    src = "      program t\n"
    for d in decls.splitlines():
        src += f"      {d}\n"
    for line in body.splitlines():
        src += f"      {line}\n"
    src += "      end\n"
    return src


class TestBasics:
    def test_arithmetic(self):
        assert run(prog("x = 2 + 3 * 4\nwrite (6, *) x")) == ["14"]

    def test_integer_division_truncates(self):
        assert run(prog("i = 7 / 2\nj = (-7) / 2\nwrite (6, *) i, j")) == ["3 -3"]

    def test_integer_assignment_truncates(self):
        assert run(prog("i = 3.7\nwrite (6, *) i")) == ["3"]

    def test_real_formatting(self):
        assert run(prog("x = 0.5\nwrite (6, *) x")) == ["0.5"]

    def test_logical(self):
        out = run(prog("l = 2 .lt. 3\nwrite (6, *) l", "logical l"))
        assert out == ["T"]

    def test_intrinsics(self):
        out = run(prog("x = sqrt(16.0)\ni = max(3, 7)\nwrite (6, *) x, i"))
        assert out == ["4 7"]

    def test_read_inputs(self):
        out = run(prog("read (5, *) n\nwrite (6, *) n * 2"), inputs=[21])
        assert out == ["42"]

    def test_read_exhausted_raises(self):
        with pytest.raises(InterpError):
            run(prog("read (5, *) n"))

    def test_parameter_value(self):
        out = run(prog("write (6, *) n", "integer n\nparameter (n = 5)"))
        assert out == ["5"]

    def test_data_initialisation(self):
        out = run(prog("write (6, *) x", "real x\ndata x /2.5/"))
        assert out == ["2.5"]


class TestControlFlow:
    def test_do_loop_trip(self):
        assert run(prog("k = 0\ndo i = 1, 5\nk = k + i\nend do\nwrite (6, *) k")) == ["15"]

    def test_do_loop_step(self):
        out = run(prog("k = 0\ndo i = 1, 9, 3\nk = k + 1\nend do\nwrite (6, *) k"))
        assert out == ["3"]

    def test_do_loop_negative_step(self):
        out = run(prog("k = 0\ndo i = 5, 1, -1\nk = k * 10 + i\nend do\nwrite (6, *) k"))
        assert out == ["54321"]

    def test_zero_trip_loop(self):
        assert run(prog("k = 7\ndo i = 5, 1\nk = 0\nend do\nwrite (6, *) k")) == ["7"]

    def test_loop_var_after_loop(self):
        assert run(prog("do i = 1, 3\nend do\nwrite (6, *) i")) == ["4"]

    def test_if_chain(self):
        src = prog(
            "x = -2.0\nif (x .gt. 0.) then\nk = 1\nelse if (x .lt. 0.) then\n"
            "k = 2\nelse\nk = 3\nend if\nwrite (6, *) k"
        )
        assert run(src) == ["2"]

    def test_logical_if(self):
        assert run(prog("k = 0\nif (1 .lt. 2) k = 9\nwrite (6, *) k")) == ["9"]

    def test_goto_backward_loop(self):
        src = prog("k = 0\n10 k = k + 1\nif (k .lt. 4) goto 10\nwrite (6, *) k")
        assert run(src) == ["4"]

    def test_goto_forward_skip(self):
        src = prog("k = 1\ngoto 20\nk = 99\n20 write (6, *) k")
        assert run(src) == ["1"]

    def test_stop_halts(self):
        src = prog("write (6, *) 1\nstop\nwrite (6, *) 2")
        assert run(src) == ["1"]

    def test_budget_exceeded(self):
        src = prog("10 k = k + 1\ngoto 10")
        with pytest.raises(InterpError):
            Interpreter(parse_and_bind(src), max_steps=1000).run()


class TestArraysAndCalls:
    def test_array_rw(self):
        src = prog("a(3) = 7.0\nwrite (6, *) a(3)", "real a(5)")
        assert run(src) == ["7"]

    def test_array_bounds_checked(self):
        src = prog("a(6) = 1.0", "real a(5)")
        with pytest.raises(InterpError):
            run(src)

    def test_lower_bound_arrays(self):
        src = prog("a(0) = 2.0\nwrite (6, *) a(0)", "real a(0:4)")
        assert run(src) == ["2"]

    def test_two_d_column_major(self):
        src = prog(
            "do j = 1, 3\ndo i = 1, 2\na(i, j) = 10 * i + j\nend do\nend do\n"
            "write (6, *) a(2, 3)",
            "real a(2, 3)",
        )
        assert run(src) == ["23"]

    def test_scalar_by_reference(self):
        src = (
            "      program t\n      x = 1.0\n      call bump(x)\n"
            "      write (6, *) x\n      end\n"
            "      subroutine bump(y)\n      y = y + 1.0\n      end\n"
        )
        assert run(src) == ["2"]

    def test_expression_actual_copy_in(self):
        src = (
            "      program t\n      x = 1.0\n      call bump(x + 0.0)\n"
            "      write (6, *) x\n      end\n"
            "      subroutine bump(y)\n      y = y + 1.0\n      end\n"
        )
        assert run(src) == ["1"]

    def test_whole_array_passing(self):
        src = (
            "      program t\n      real a(4)\n      call fill(a, 4)\n"
            "      write (6, *) a(4)\n      end\n"
            "      subroutine fill(x, n)\n      integer n\n      real x(n)\n"
            "      do i = 1, n\n      x(i) = 1.0 * i\n      end do\n      end\n"
        )
        assert run(src) == ["4"]

    def test_column_slice_passing(self):
        src = (
            "      program t\n      real a(3, 2)\n      call fill(a(1, 2), 3)\n"
            "      write (6, *) a(2, 2), a(2, 1)\n      end\n"
            "      subroutine fill(x, n)\n      integer n\n      real x(n)\n"
            "      do i = 1, n\n      x(i) = 5.0\n      end do\n      end\n"
        )
        assert run(src) == ["5 0"]

    def test_function_call(self):
        src = (
            "      program t\n      x = twice(4.0)\n      write (6, *) x\n      end\n"
            "      function twice(y)\n      twice = 2.0 * y\n      end\n"
        )
        assert run(src) == ["8"]

    def test_common_shared_across_units(self):
        src = (
            "      program t\n      common /c/ v\n      v = 3.0\n      call show\n      end\n"
            "      subroutine show\n      common /c/ w\n      write (6, *) w\n      end\n"
        )
        assert run(src) == ["3"]

    def test_common_array_positional(self):
        src = (
            "      program t\n      real a(3)\n      common /c/ a\n"
            "      a(2) = 9.0\n      call show\n      end\n"
            "      subroutine show\n      real b(3)\n      common /c/ b\n"
            "      write (6, *) b(2)\n      end\n"
        )
        assert run(src) == ["9"]

    def test_recursion_via_snapshot(self):
        interp = Interpreter(
            parse_and_bind(
                "      program t\n      common /c/ v\n      v = 1.5\n      end\n"
            )
        )
        interp.run()
        assert interp.snapshot() == {"c": [1.5]}


class TestDoallOrders:
    SRC = """      program t
      real a(10), s
      do i = 1, 10
         a(i) = 1.0 * i
      end do
      s = 0.0
      do i = 1, 10
         s = s + a(i)
      end do
      write (6, *) s
      end
"""

    def _marked(self):
        sf = parse_and_bind(self.SRC)
        from repro.fortran import DoLoop

        for st in sf.units[0].body:
            if isinstance(st, DoLoop):
                st.parallel = True
        return sf

    def test_reversed_matches(self):
        sf = self._marked()
        assert Interpreter(sf, doall_order="reversed").run() == ["55"]

    def test_shuffled_matches(self):
        sf = self._marked()
        assert Interpreter(sf, doall_order="shuffled").run() == ["55"]

    def test_shuffle_detects_real_recurrence(self):
        src = """      program t
      real a(10)
      a(1) = 1.0
      do i = 2, 10
         a(i) = a(i-1) + 1.0
      end do
      write (6, *) a(10)
      end
"""
        sf = parse_and_bind(src)
        from repro.fortran import DoLoop

        loop = next(st for st in sf.units[0].body if isinstance(st, DoLoop))
        loop.parallel = True  # wrong! — the orders must disagree
        fwd = Interpreter(sf, doall_order="forward").run()
        rev = Interpreter(sf, doall_order="reversed").run()
        assert fwd != rev

    def test_unknown_order_rejected(self):
        sf = self._marked()
        with pytest.raises(InterpError):
            Interpreter(sf, doall_order="sideways").run()
