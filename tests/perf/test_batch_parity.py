"""Batched-vs-scalar dependence tester parity over randomized inputs.

The batch executor (:mod:`repro.dependence.batch` plus the driver's
``_build_batched``) is pure performance work: for any unit it must
produce the same :class:`PairResult` stream, the same ``resolved_by``
tiers, the same M1 tier counters and the same memo hit/miss accounting
as walking :meth:`DependenceTester.test_pair` one pair at a time — with
and without the pair memo, with and without the shared program memo.

This suite generates random Fortran routines whose loop nests exercise
every tier (ZIV constants, SIV offsets, MIV couplings, symbolic bounds
that force Banerjee, section-producing call sites via the workload
suite) and asserts observable-for-observable equality, not just
fingerprint equality — a counter drift would pass a fingerprint check
but corrupt the M1 statistics the paper's tables are built from.
"""

import random
from contextlib import contextmanager

import pytest

from repro.dependence import driver
from repro.fortran import parse_and_bind
from repro.incremental import program_fingerprint
from repro.interproc import FeatureSet, analyze_program
from repro.workloads import SUITE


@contextmanager
def hot_path(batch: bool, memo: bool, share: bool):
    saved = (
        driver.HOT_PATH.batch_pairs,
        driver.HOT_PATH.memoize_pairs,
        driver.HOT_PATH.share_pairs,
    )
    driver.HOT_PATH.batch_pairs = batch
    driver.HOT_PATH.memoize_pairs = memo
    driver.HOT_PATH.share_pairs = share
    try:
        yield
    finally:
        (
            driver.HOT_PATH.batch_pairs,
            driver.HOT_PATH.memoize_pairs,
            driver.HOT_PATH.share_pairs,
        ) = saved


def observe(source: str, batch: bool, memo: bool = True, share: bool = True):
    """Every observable the batch rewrite could disturb, per unit."""

    with hot_path(batch, memo, share):
        pa = analyze_program(parse_and_bind(source), FeatureSet())
    out = {"fingerprint": program_fingerprint(pa)}
    for name, ua in sorted(pa.units.items()):
        t = ua.tester
        out[name] = {
            "tier_counts": {k: v for k, v in t.tier_counts.items() if v},
            "resolved": dict(t.pair_resolution),
            "resolved_classic": dict(t.pair_resolution_classic),
            "memo": (t.memo_hits, t.memo_misses),
            "shared": (t.shared_hits, t.shared_misses),
            "pairs": [
                (
                    p.src.array,
                    p.src.sid,
                    p.snk.sid,
                    p.independent,
                    p.resolved_by,
                    p.classic,
                    tuple(sorted(p.tests_run.items())),
                    tuple(
                        (v.vector, v.exists, v.proven, v.test)
                        for v in p.vectors
                    ),
                )
                for p in ua.pair_results
            ],
        }
    return out


# ----------------------------------------------------------------------
# randomized affine-subscript programs
# ----------------------------------------------------------------------

_VARS = ("i", "j", "k")


def _subscript(rng: random.Random, depth: int) -> str:
    """One random affine subscript over the live loop variables."""

    kind = rng.randrange(10)
    if kind < 2:  # ZIV: literal constant
        return str(rng.randint(1, 9))
    var = _VARS[rng.randrange(depth)]
    if kind < 3:  # symbolic stride/offset — unknown to the env
        return f"{var}+n"
    coef = rng.choice((1, 1, 1, 2, 3))
    off = rng.randint(-3, 3)
    term = var if coef == 1 else f"{coef}*{var}"
    if kind >= 8 and depth > 1:  # MIV coupling: second loop var rides in
        other = _VARS[(rng.randrange(depth - 1) + 1) % depth]
        term = f"{term}+{other}"
    if off > 0:
        return f"{term}+{off}"
    if off < 0:
        return f"{term}{off}"
    return term


def _ref(rng: random.Random, array: str, rank: int, depth: int) -> str:
    subs = ", ".join(_subscript(rng, depth) for _ in range(rank))
    return f"{array}({subs})"


def generate_routine(seed: int) -> str:
    """A random routine: nested loops over affine array statements."""

    rng = random.Random(seed)
    depth = rng.randint(1, 3)
    arrays = [("a", rng.randint(1, 2)), ("b", rng.randint(1, 2))]
    dims = {1: "(60)", 2: "(60,60)"}
    lines = [
        "      subroutine r(a, b, n)",
        "      integer n, i, j, k",
        "      real a{}, b{}".format(
            dims[arrays[0][1]], dims[arrays[1][1]]
        ),
    ]
    label = 10
    indent = "      "
    for d in range(depth):
        bound = rng.choice(("20", "30", "n"))
        lines.append(
            f"{indent}do {label + d} {_VARS[d]} = 1, {bound}"
        )
        indent += "   "
    n_stmts = rng.randint(2, 4)
    for _ in range(n_stmts):
        dst_arr, dst_rank = arrays[rng.randrange(len(arrays))]
        src_arr, src_rank = arrays[rng.randrange(len(arrays))]
        dst = _ref(rng, dst_arr, dst_rank, depth)
        src = _ref(rng, src_arr, src_rank, depth)
        lines.append(f"{indent}{dst} = {src} + 1.0")
    for d in reversed(range(depth)):
        indent = indent[:-3]
        lines.append(f" {label + d:<4} continue")
    lines.append("      end")
    return "\n".join(lines) + "\n"


@pytest.mark.parametrize("seed", range(24))
def test_randomized_parity(seed):
    source = generate_routine(seed)
    scalar = observe(source, batch=False)
    batched = observe(source, batch=True)
    assert batched == scalar, source


@pytest.mark.parametrize("memo,share", [(True, False), (False, False)])
@pytest.mark.parametrize("seed", (0, 7, 13))
def test_randomized_parity_memo_modes(seed, memo, share):
    """Counters must match in every memo configuration, not only the
    default — the batch plan replays local hits itself, so a drift
    would show exactly here."""

    source = generate_routine(seed)
    scalar = observe(source, batch=False, memo=memo, share=share)
    batched = observe(source, batch=True, memo=memo, share=share)
    assert batched == scalar, source


@pytest.mark.parametrize("name", sorted(SUITE))
def test_workload_suite_parity(name):
    """The real workload programs (sections, call sites, reductions) —
    the structured cases randomized routines cannot reach."""

    source = SUITE[name].source
    scalar = observe(source, batch=False)
    batched = observe(source, batch=True)
    assert batched == scalar


def test_m1_statistics_identical_with_and_without_memo():
    """Acceptance criterion: M1 tier statistics are bit-identical with
    and without the memo, batched and scalar alike."""

    from dataclasses import asdict

    from repro.evaluation.hierarchy_stats import dependence_test_stats

    def stats_for(batch, memo):
        with hot_path(batch, memo, share=memo):
            return asdict(dependence_test_stats(["spec77", "onedim"]))

    reference = stats_for(batch=False, memo=False)
    assert stats_for(batch=True, memo=False) == reference
    assert stats_for(batch=True, memo=True) == reference
    assert stats_for(batch=False, memo=True) == reference
