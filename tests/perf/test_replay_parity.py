"""Acceptance criterion for the event-sourced core: a scripted 8-edit
session's journal replays byte-identical at EVERY prefix across all
three execution modes —

* **serial**: in-process :func:`replay_journal`;
* **--jobs 2**: a :class:`PedServer` running its analyses through a
  2-worker pool, replaying via the ``session.replay`` op;
* **fleet**: the same op forwarded through a 2-shard consistent-hash
  router.

"Byte-identical" is the analysis fingerprint digest — one hex string
per prefix — plus the journal records themselves, which must come out
the same no matter which front end recorded the mutations.
"""

import pytest

from repro.editor import PedSession
from repro.editor.journal import SessionJournal, replay_journal
from repro.editor.scripts import replay, replay_transcript
from repro.fleet import AsyncTransport, FleetRouter
from repro.incremental.fingerprint import fingerprint_digest
from repro.service import PedServer

SOURCE = (
    "      program main\n"
    "      real a(100), b(100)\n"
    "      call work(a, b, 100)\n"
    "      end\n"
    "      subroutine work(a, b, n)\n"
    "      real a(100), b(100)\n"
    "      do i = 1, n\n"
    "         a(i) = a(i) + 1.0\n"
    "      enddo\n"
    "      do j = 1, n\n"
    "         s = b(j)\n"
    "         b(j) = s * 2.0\n"
    "      enddo\n"
    "      end\n"
)

#: The scripted 8-edit session: (start, end, replacement) triples that
#: rewrite statements in ``work``, alternating between both loops so
#: successive edits invalidate different analysis slices.
EDITS = [
    (8, 8, "         a(i) = a(i) + 2.0"),
    (11, 11, "         s = b(j) + 1.0"),
    (8, 8, "         a(i) = a(i) * 2.0"),
    (12, 12, "         b(j) = s * 3.0"),
    (8, 8, "         a(i) = a(i-1) + 1.0"),
    (11, 11, "         s = b(j) - 1.0"),
    (8, 8, "         a(i) = a(i) + 9.0"),
    (12, 12, "         b(j) = s * 4.0"),
]


def _server_mutations():
    """The wire requests equivalent to the scripted session."""

    yield {"op": "edit", "start": 8, "end": 8, "text": EDITS[0][2]}
    for start, end, text in EDITS[1:]:
        yield {"op": "edit", "start": start, "end": end, "text": text}


@pytest.fixture(scope="module")
def scripted():
    """The reference run: a live in-process session plus its journal."""

    session = PedSession(SOURCE)
    for start, end, text in EDITS:
        session.edit(start, end, text)
    journal = SessionJournal.from_wire(session.journal.to_wire())
    session.close()
    return journal


def _serial_prefix_digests(journal):
    out = []
    for upto in range(len(journal) + 1):
        replayed = replay_journal(journal, upto)
        out.append(fingerprint_digest(replayed.analysis))
        replayed.close()
    return out


def _drive_server(execute):
    """Open + 8 edits through a request executor; returns record total."""

    reply = execute({"op": "open", "session": "scripted", "source": SOURCE})
    assert reply["ok"], reply
    for req in _server_mutations():
        reply = execute(dict(req, session="scripted"))
        assert reply["ok"], reply
    log = execute({"op": "session.log", "session": "scripted"})
    assert log["ok"], log
    return log["result"]


def _server_prefix_digests(execute, total):
    out = []
    for upto in range(total + 1):
        reply = execute(
            {"op": "session.replay", "session": "scripted", "upto": upto}
        )
        assert reply["ok"], reply
        out.append(reply["result"]["fingerprint"])
    return out


def test_eight_edit_journal_replays_identically_in_all_three_modes(scripted):
    journal = scripted
    assert len(journal) == len(EDITS)
    serial = _serial_prefix_digests(journal)
    assert len(set(serial)) > 1, "edits must actually change the analysis"

    # Mode 2: --jobs 2 server.
    jobs2 = PedServer(jobs=2, max_workers=4)
    try:
        log = _drive_server(jobs2.execute)
        server_records = SessionJournal.from_wire(
            {"version": 1, "base": SOURCE, "records": log["records"]}
        ).records
        assert server_records == journal.records, (
            "server journal must match the scripted one"
        )
        jobs2_digests = _server_prefix_digests(jobs2.execute, log["total"])
    finally:
        jobs2.close()

    # Mode 3: two shards behind the fleet router.
    shards = []
    addrs = []
    for _ in range(2):
        srv = PedServer(max_workers=4)
        transport = AsyncTransport(srv)
        port = transport.start_background()
        shards.append((srv, transport))
        addrs.append(f"127.0.0.1:{port}")
    router = FleetRouter(addrs, retries=1, backoff=0.01)
    try:
        log = _drive_server(router.execute)
        fleet_digests = _server_prefix_digests(router.execute, log["total"])
    finally:
        router.close()
        for srv, transport in shards:
            transport.stop_background()
            srv.close()

    assert serial == jobs2_digests == fleet_digests


def test_suite_transcripts_carry_replayable_journals():
    """Every scripted suite story now records its journal, and the
    journal alone rebuilds the exact final state (full prefix)."""

    session, transcript = replay("onedim")
    assert transcript.ok, transcript.errors
    assert transcript.journal is not None
    rebuilt = replay_transcript(transcript)
    assert rebuilt.source == transcript.final_source
    assert fingerprint_digest(rebuilt.analysis) == fingerprint_digest(
        session.analysis
    )
    # And at every prefix, deterministically.
    n = len(transcript.journal["records"])
    first = [
        fingerprint_digest(replay_transcript(transcript, upto=k).analysis)
        for k in range(n + 1)
    ]
    second = [
        fingerprint_digest(replay_transcript(transcript, upto=k).analysis)
        for k in range(n + 1)
    ]
    assert first == second
    assert first[-1] == fingerprint_digest(session.analysis)
    session.close()
    rebuilt.close()
