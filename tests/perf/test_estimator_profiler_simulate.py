"""Unit tests for the estimator, profiler, machine model and simulator."""

import pytest

from repro.dependence import analyze_unit
from repro.fortran import DoLoop, parse_and_bind
from repro.perf import (
    Interpreter,
    MachineModel,
    PerformanceEstimator,
    profile_program,
)
from repro.perf.simulate import simulate_speedup, speedup_curve

SRC = """      program t
      integer n
      parameter (n = 40)
      real a(n), b(n), s
      common /r/ a, b, s
      do i = 1, n
         a(i) = 0.5 * i
      end do
      do it = 1, 5
         do i = 1, n
            b(i) = a(i) * 2.0 + 1.0
         end do
      end do
      s = 0.0
      do i = 1, n
         s = s + b(i)
      end do
      write (6, *) s
      end
"""


@pytest.fixture(scope="module")
def bound():
    sf = parse_and_bind(SRC)
    ua = analyze_unit(sf.units[0])
    return sf, ua


class TestMachineModel:
    def test_parallel_time_divides_work(self):
        m = MachineModel(n_procs=4, fork_join=0.0, loop_overhead=0.0)
        assert m.parallel_time(100, 10.0) == pytest.approx(250.0)

    def test_fork_join_added_once(self):
        m = MachineModel(n_procs=4, fork_join=500.0, loop_overhead=0.0)
        assert m.parallel_time(100, 10.0) == pytest.approx(750.0)

    def test_reduction_combine_cost(self):
        m = MachineModel(n_procs=4, fork_join=0.0, loop_overhead=0.0)
        with_red = m.parallel_time(100, 10.0, n_reductions=1)
        assert with_red > m.parallel_time(100, 10.0)

    def test_sequential_time(self):
        m = MachineModel(loop_overhead=2.0)
        assert m.sequential_time(10, 8.0) == pytest.approx(100.0)


class TestEstimator:
    def test_trip_count_constant(self, bound):
        sf, ua = bound
        est = PerformanceEstimator()
        loop = ua.loops[0].loop
        assert est.trip_count(loop, ua) == 40.0

    def test_trip_count_unknown_uses_default(self):
        src = (
            "      subroutine s(a, n)\n      integer n\n      real a(n)\n"
            "      do i = 1, n\n      a(i) = 0.\n      end do\n      end\n"
        )
        sf = parse_and_bind(src)
        ua = analyze_unit(sf.units[0])
        est = PerformanceEstimator()
        assert est.trip_count(ua.loops[0].loop, ua) == est.machine.default_trip

    def test_nest_cost_multiplies(self, bound):
        sf, ua = bound
        est = PerformanceEstimator()
        inner = est.loop_estimate(ua.loops[2].loop, ua).sequential
        outer = est.loop_estimate(ua.loops[1].loop, ua).sequential
        assert outer > 4 * inner

    def test_parallel_estimate_speedup(self, bound):
        sf, ua = bound
        est = PerformanceEstimator(MachineModel(n_procs=8, fork_join=10.0))
        ce = est.loop_estimate(ua.loops[0].loop, ua)
        assert ce.speedup > 2.0

    def test_rank_loops_costliest_first(self, bound):
        sf, ua = bound
        est = PerformanceEstimator()
        ranked = est.rank_loops(ua)
        costs = [c for c, _ in ranked]
        assert costs == sorted(costs, reverse=True)
        # The 5x-repeated nest is the most expensive.
        assert ranked[0][1].loop.var == "it"


class TestProfiler:
    def test_loop_iteration_counts(self):
        sf = parse_and_bind(SRC)
        profile = profile_program(sf)
        by_line = {lp.line: lp for lp in profile.loops}
        # The inner loop of the 5x nest executes 200 body iterations.
        hot = max(profile.loops, key=lambda lp: lp.iterations)
        assert hot.iterations == 200
        assert hot.avg_trip == pytest.approx(40.0)

    def test_unit_counts(self):
        sf = parse_and_bind(SRC)
        profile = profile_program(sf)
        assert profile.unit_counts["t"] == profile.total_steps

    def test_hottest_loops_sorted(self):
        sf = parse_and_bind(SRC)
        profile = profile_program(sf)
        hot = profile.hottest_loops()
        iters = [lp.iterations for lp in hot]
        assert iters == sorted(iters, reverse=True)


class TestSimulate:
    def _parallel_marked(self):
        sf = parse_and_bind(SRC)
        for st in sf.units[0].body:
            if isinstance(st, DoLoop):
                st.parallel = True
                for inner in st.body:
                    if isinstance(inner, DoLoop):
                        inner.parallel = False
        return sf

    def test_sequential_equals_parallel_when_unmarked(self):
        sf = parse_and_bind(SRC)
        result = simulate_speedup(sf, 8)
        assert result.speedup == pytest.approx(1.0)

    def test_parallel_marked_speeds_up(self):
        sf = self._parallel_marked()
        result = simulate_speedup(sf, 8, MachineModel(n_procs=8, fork_join=50.0))
        assert result.speedup > 1.5

    def test_more_processors_never_slower(self):
        sf = self._parallel_marked()
        machine = MachineModel(fork_join=50.0)
        curve = speedup_curve(sf, procs=(1, 2, 4, 8), machine=machine)
        values = [s for _, s in curve]
        assert all(b >= a * 0.999 for a, b in zip(values, values[1:]))

    def test_fork_join_hurts_tiny_loops(self):
        sf = self._parallel_marked()
        heavy = MachineModel(fork_join=100000.0)
        result = simulate_speedup(sf, 8, heavy)
        assert result.speedup < 1.0
