"""Crosschecks between independent components.

The constant folder (`eval_const`), the symbolic algebra (`Linear`) and
the interpreter implement overlapping semantics; they must agree wherever
their domains intersect.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.analysis.constants import eval_const
from repro.analysis.symbolic import linear_of_expr
from repro.fortran import parse_and_bind
from repro.perf import Interpreter


@st.composite
def int_exprs(draw, depth=0):
    if depth > 2:
        return str(draw(st.integers(1, 20)))
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return str(draw(st.integers(1, 20)))
    a = draw(int_exprs(depth=depth + 1))
    b = draw(int_exprs(depth=depth + 1))
    op = draw(st.sampled_from(["+", "-", "*"]))
    return f"({a} {op} {b})"


@settings(max_examples=150, deadline=None)
@given(int_exprs())
def test_constant_folder_agrees_with_interpreter(expr_text):
    src = f"      program t\n      i = {expr_text}\n      write (6, *) i\n      end\n"
    sf = parse_and_bind(src)
    expr = sf.units[0].body[0].expr
    folded = eval_const(expr, {})
    executed = Interpreter(sf).run()
    assert folded is not None
    assert executed == [str(folded)]


@settings(max_examples=150, deadline=None)
@given(int_exprs())
def test_linear_algebra_agrees_with_folder(expr_text):
    src = f"      program t\n      i = {expr_text}\n      end\n"
    sf = parse_and_bind(src)
    expr = sf.units[0].body[0].expr
    folded = eval_const(expr, {})
    lin = linear_of_expr(expr, sf.units[0].symtab)
    assert lin.int_value() == folded


@settings(max_examples=100, deadline=None)
@given(
    lo=st.integers(-3, 3),
    hi=st.integers(-3, 12),
    step=st.integers(1, 4),
)
def test_interpreter_trip_count_formula(lo, hi, step):
    """DO trip counts match max(0, (hi-lo+step)//step)."""

    src = (
        "      program t\n      k = 0\n"
        f"      do i = {lo}, {hi}, {step}\n      k = k + 1\n      end do\n"
        "      write (6, *) k\n      end\n"
    )
    out = Interpreter(parse_and_bind(src)).run()
    expected = max(0, (hi - lo + step) // step)
    assert out == [str(expected)]


class TestGotoInsideLoop:
    def test_goto_skips_within_iteration(self):
        src = """      program t
      k = 0
      do i = 1, 5
         if (i .eq. 3) goto 10
         k = k + 1
   10    continue
      end do
      write (6, *) k
      end
"""
        assert Interpreter(parse_and_bind(src)).run() == ["4"]

    def test_goto_out_of_loop_exits(self):
        src = """      program t
      k = 0
      do i = 1, 100
         k = k + 1
         if (k .eq. 7) goto 20
      end do
   20 write (6, *) k
      end
"""
        assert Interpreter(parse_and_bind(src)).run() == ["7"]
