"""The per-program analysis graph: Ped's stage chain as declared nodes.

:func:`build_program_graph` expresses the incremental engine's pipeline
(parse → interprocedural summaries → ipconst → dependence) as a
:class:`~repro.pipeline.graph.PipelineGraph`:

* the three bottom-up summary phases (``modref``, ``kill``,
  ``sections``) all consume ``callgraph`` and nothing else — they are
  *siblings*, not links of a chain, and any of them can be entered
  independently;
* ``ipconst`` likewise hangs off ``callgraph`` (the top-down phase);
* ``dependence`` is the only node that consumes the summaries, plus the
  ``assertions`` external input — which is exactly why an assertion
  change enters the graph *at* ``dependence`` with every upstream node
  a cache hit.

Feature gates reproduce the engine's conditional stages: a disabled
node (say ``sections`` under a minimal feature set) drops out of the
schedule and of downstream keys, so toggling a feature invalidates
``dependence`` through its key rather than through ad-hoc flags.

The same module defines the schedule the engine executes
(:data:`ANALYSIS_NODES` in declaration order) — the engine no longer
hard-codes stage order anywhere.
"""

from __future__ import annotations

from .graph import PipelineGraph
from .nodes import Node

__all__ = ["build_program_graph", "ANALYSIS_NODES", "EXTERNAL_INPUTS"]

#: Caller-supplied values of one program analysis.
EXTERNAL_INPUTS = ("source", "assertions", "features")

#: The per-program analysis nodes, in declaration order (the schedule's
#: tie-break, chosen to match the classic chain for parity).
ANALYSIS_NODES = (
    Node(
        "split",
        inputs=("source",),
        doc="split the source into per-unit spans (content-digested)",
    ),
    Node(
        "parse",
        inputs=("split",),
        doc="parse + bind each span; per-span parse cache",
    ),
    Node(
        "callgraph",
        inputs=("parse",),
        doc="assemble the call graph from per-unit call candidates",
    ),
    Node(
        "modref",
        inputs=("callgraph", "features"),
        doc="bottom-up MOD/REF summaries (callers invalidate upward)",
        enabled=lambda f: f.needs_modref(),
    ),
    Node(
        "kill",
        inputs=("callgraph", "features"),
        doc="bottom-up kill summaries",
        enabled=lambda f: f.needs_kills(),
    ),
    Node(
        "sections",
        inputs=("callgraph", "features"),
        doc="bottom-up array-section summaries",
        enabled=lambda f: f.sections,
    ),
    Node(
        "ipconst",
        inputs=("callgraph", "features"),
        doc="top-down interprocedural constants (callees invalidate downward)",
        enabled=lambda f: f.ip_constants,
    ),
    Node(
        "dependence",
        inputs=(
            "parse",
            "modref",
            "kill",
            "sections",
            "ipconst",
            "assertions",
            "features",
        ),
        doc="per-unit dependence analysis, verdicts and idiom recognition",
    ),
)


def build_program_graph() -> PipelineGraph:
    """The per-program analysis graph (finalized, ready to schedule)."""

    graph = PipelineGraph(external_inputs=EXTERNAL_INPUTS)
    for node in ANALYSIS_NODES:
        graph.add(node)
    return graph.finalize()
