"""The pipeline-node graph: addressable analysis steps and rollups.

Ped's incremental engine re-runs only what an edit invalidated, but
its stages used to form one hard-wired linear chain.  This package
makes the pipeline first-class:

* :mod:`repro.pipeline.nodes` — :class:`Node` (declared inputs/outputs,
  content-hash keying) and :class:`NodeResult`;
* :mod:`repro.pipeline.graph` — :class:`PipelineGraph`: deterministic
  scheduling, downstream invalidation along declared edges, node-level
  entry (``entry_for``);
* :mod:`repro.pipeline.program` — the per-program analysis graph the
  engine executes (parse → summaries ∥ ipconst → dependence);
* :mod:`repro.pipeline.aggregate` — fleet-wide rollup nodes downstream
  of per-program results (obstacle ranking, dependence-test tier
  histograms, transformation applicability);
* :mod:`repro.pipeline.corpus` — corpus jobs: batch analysis of many
  programs over the worker pool, with cached aggregate queries.
"""

from __future__ import annotations

from .aggregate import AGGREGATES, run_aggregate
from .corpus import (
    CorpusError,
    CorpusJob,
    CorpusRunner,
    analyze_program_result,
)
from .graph import GraphError, PipelineGraph
from .nodes import Node, NodeResult
from .program import ANALYSIS_NODES, build_program_graph

__all__ = [
    "Node",
    "NodeResult",
    "PipelineGraph",
    "GraphError",
    "ANALYSIS_NODES",
    "build_program_graph",
    "AGGREGATES",
    "run_aggregate",
    "CorpusError",
    "CorpusJob",
    "CorpusRunner",
    "analyze_program_result",
]
