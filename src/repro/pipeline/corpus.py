"""Corpus-scale batch analysis over the pipeline-node graph.

One corpus job holds N named programs; each program runs the whole
per-program graph as a self-contained task (so the batch fans out over
the service worker pool — the payload carries everything, exactly like
the engine's per-unit tasks), producing a compact **result record**:
loop/parallelizability totals, the obstacle histogram, the
dependence-test tier histogram, transformation-applicability counts and
the program's analysis fingerprint digest.  Aggregate nodes
(:mod:`repro.pipeline.aggregate`) roll those records up fleet-wide,
cached under content keys derived from the records themselves.

:class:`CorpusRunner` is the executor both the CLI (``python -m repro
corpus analyze``) and the session host's ``corpus.*`` ops drive; the
host adds job registry, background execution and streamed per-program
``analysis.progress`` events on top.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..interproc.program import FeatureSet
from .aggregate import AGGREGATES, aggregate_key, run_aggregate

__all__ = [
    "CorpusError",
    "CorpusJob",
    "CorpusRunner",
    "analyze_program_result",
    "LOOP_TRANSFORMS",
    "obstacle_category",
]

#: Loop-targeted transformations probed for Table-2-style applicability
#: counts (a fixed, deterministic subset: each accepts a bare ``loop``).
LOOP_TRANSFORMS = (
    "parallelize",
    "interchange",
    "distribution",
    "fusion",
    "reversal",
    "stripmine",
    "unroll",
)


class CorpusError(Exception):
    """User-level corpus errors (unknown job, bad program list…)."""


def obstacle_category(text: str) -> str:
    """Normalize one obstacle string to its fleet-wide category.

    ``loop-carried flow dependence on x (<,=) [pending]`` and its
    sibling on ``y`` are the *same* obstacle for rollup purposes; the
    variable, vector and marking are per-loop detail.
    """

    if text.startswith("loop-carried"):
        return " ".join(text.split()[:3])
    return text.split(" at line")[0]


def analyze_program_result(payload: Dict) -> Dict:
    """Analyze one corpus program end to end — a pure, picklable task.

    Runs the canonical engine pipeline (serial, no shared state) on the
    payload's source and projects the analysis onto the corpus result
    record.  Front-end and analysis errors become ``error`` records
    rather than exceptions: one broken program must not sink the batch.
    """

    from ..incremental.engine import AnalysisEngine
    from ..incremental.fingerprint import fingerprint_digest
    from ..transform.base import TransformContext
    from ..transform.registry import get_transformation

    name = payload["name"]
    features = payload.get("features") or FeatureSet()
    try:
        engine = AnalysisEngine(features=features)
        _sf, pa = engine.analyze(
            payload["source"], assertions=payload.get("asserts")
        )
    except Exception as exc:  # noqa: BLE001 — errors are results here
        return {
            "program": name,
            "error": f"{type(exc).__name__}: {exc}",
            "digest": "",
        }
    obstacles: Dict[str, int] = {}
    tiers: Dict[str, int] = {}
    transforms: Dict[str, int] = {}
    loops = 0
    parallel = 0
    for _uname, ua in sorted(pa.units.items()):
        for tier, n in ua.tester.pair_resolution.items():
            if n:
                tiers[tier] = tiers.get(tier, 0) + n
        ctx = TransformContext(ua.unit, ua, pa.source)
        for nest in ua.loops:
            loops += 1
            info = ua.info_for(nest.loop)
            if info.parallelizable:
                parallel += 1
            for cat in sorted(
                {obstacle_category(o) for o in info.obstacles}
            ):
                obstacles[cat] = obstacles.get(cat, 0) + 1
            for tname in LOOP_TRANSFORMS:
                try:
                    advice = get_transformation(tname).diagnose(
                        ctx, loop=nest.loop
                    )
                except Exception:  # noqa: BLE001 — probe, not verdict
                    continue
                if advice.applicable:
                    transforms[tname] = transforms.get(tname, 0) + 1
    return {
        "program": name,
        "error": None,
        "digest": fingerprint_digest(pa),
        "units": len(pa.units),
        "loops": loops,
        "parallel_loops": parallel,
        "obstacles": obstacles,
        "tiers": tiers,
        "transforms": transforms,
    }


@dataclass
class CorpusJob:
    """One corpus: named programs, their states, cached aggregates."""

    id: str
    features: FeatureSet = field(default_factory=FeatureSet)
    #: Program name -> source text, in submission order.
    programs: Dict[str, str] = field(default_factory=dict)
    #: Program name -> per-unit assertion texts.
    asserts: Dict[str, Dict[str, List[str]]] = field(default_factory=dict)
    #: Program name -> ``pending`` / ``running`` / ``done`` / ``error``.
    states: Dict[str, str] = field(default_factory=dict)
    #: Program name -> result record (only for done/error programs).
    results: Dict[str, Dict] = field(default_factory=dict)
    #: Aggregate node cache: name -> (content key, value).
    _agg_cache: Dict[str, Tuple[str, Dict]] = field(default_factory=dict)
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: Serializes whole runs of this job (concurrent submits queue up
    #: instead of racing the pending list).
    run_lock: threading.Lock = field(default_factory=threading.Lock)

    def add(self, name: str, source: str, asserts=None) -> None:
        with self.lock:
            self.programs[name] = source
            if asserts:
                self.asserts[name] = asserts
            else:
                self.asserts.pop(name, None)
            # (Re)submitting a program resets it; its result digest will
            # change, invalidating every aggregate through its key.
            self.states[name] = "pending"
            self.results.pop(name, None)

    def pending(self) -> List[str]:
        with self.lock:
            return [
                n for n, s in self.states.items() if s == "pending"
            ]

    def snapshot(self) -> Dict:
        with self.lock:
            states = dict(self.states)
        total = len(states)
        done = sum(1 for s in states.values() if s in ("done", "error"))
        return {
            "job": self.id,
            "total": total,
            "done": done,
            "running": sum(1 for s in states.values() if s == "running"),
            "errors": sum(1 for s in states.values() if s == "error"),
            "complete": done == total,
            "programs": states,
        }

    def result_records(self) -> List[Dict]:
        with self.lock:
            return [
                self.results[n]
                for n in self.programs
                if n in self.results
            ]


class CorpusRunner:
    """Executes corpus jobs over a worker pool; owns the job registry."""

    #: How many programs ship to the pool per chunk, per worker — small
    #: enough that streamed progress stays granular, large enough that
    #: the pool's per-batch overhead amortizes.
    CHUNK_PER_WORKER = 2

    def __init__(self, pool=None, features=None, stats=None) -> None:
        from ..service.pool import SerialPool

        self.pool = pool if pool is not None else SerialPool()
        self.features = features
        self.stats = stats
        self.jobs: Dict[str, CorpusJob] = {}
        self._ids = itertools.count(1)
        self._jobs_lock = threading.Lock()

    def _bump(self, key: str, n: float = 1) -> None:
        if self.stats is not None:
            self.stats.bump(key, n)

    # ------------------------------------------------------------------
    # job registry
    # ------------------------------------------------------------------

    def submit(
        self,
        programs: Sequence[Tuple[str, str]],
        job: Optional[str] = None,
    ) -> CorpusJob:
        """Create (or extend) a job with ``(name, source)`` programs."""

        if not programs:
            raise CorpusError("corpus submit needs at least one program")
        with self._jobs_lock:
            if job is None:
                job = f"c{next(self._ids)}"
            found = self.jobs.get(job)
            if found is None:
                found = self.jobs[job] = CorpusJob(
                    job, features=self.features or FeatureSet()
                )
                self._bump("corpus.jobs")
        for name, source in programs:
            if not name or not isinstance(source, str):
                raise CorpusError(
                    "each program needs a name and source text"
                )
            found.add(name, source)
        return found

    def get(self, job: str) -> CorpusJob:
        with self._jobs_lock:
            found = self.jobs.get(job)
        if found is None:
            raise CorpusError(f"no corpus job named {job!r}")
        return found

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def run(
        self,
        job: CorpusJob,
        progress: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        """Analyze every pending program, fanning out over the pool.

        Programs ship in chunks sized to the pool's width; after each
        chunk merges, ``progress`` (when given) receives one record per
        program — the host routes these to ``analysis.progress`` events.
        Returns the job's status snapshot.
        """

        with job.run_lock:
            return self._run_locked(job, progress)

    def _run_locked(
        self,
        job: CorpusJob,
        progress: Optional[Callable[[Dict], None]] = None,
    ) -> Dict:
        names = job.pending()
        total = len(job.programs)
        width = max(1, getattr(self.pool, "jobs", 1))
        chunk_size = max(1, width * self.CHUNK_PER_WORKER)
        done_before = total - len(names)
        completed = 0
        for start in range(0, len(names), chunk_size):
            chunk = names[start : start + chunk_size]
            with job.lock:
                for n in chunk:
                    job.states[n] = "running"
            payloads = [
                {
                    "name": n,
                    "source": job.programs[n],
                    "features": job.features,
                    "asserts": job.asserts.get(n),
                }
                for n in chunk
            ]
            for record in self.pool.map("corpus", payloads):
                name = record["program"]
                failed = bool(record.get("error"))
                with job.lock:
                    job.results[name] = record
                    job.states[name] = "error" if failed else "done"
                self._bump("corpus.programs")
                if failed:
                    self._bump("corpus.errors")
                completed += 1
                if progress is not None:
                    progress(
                        {
                            "phase": "corpus.program",
                            "job": job.id,
                            "program": name,
                            "status": job.states[name],
                            "done": done_before + completed,
                            "total": total,
                        }
                    )
        return job.snapshot()

    # ------------------------------------------------------------------
    # aggregate nodes
    # ------------------------------------------------------------------

    def query(self, job: CorpusJob, aggregate: str) -> Tuple[Dict, bool]:
        """One rollup over the job's finished results.

        Returns ``(value, cached)``: the aggregate node's value and
        whether it replayed from cache.  The cache key digests the
        per-program result records, so adding or changing a program
        invalidates the aggregate exactly like an edit invalidates a
        downstream analysis node; counters land in
        ``node.agg.<name>.hit`` / ``.miss``.
        """

        if aggregate not in AGGREGATES:
            known = ", ".join(sorted(AGGREGATES))
            raise CorpusError(
                f"unknown aggregate {aggregate!r}; known: {known}"
            )
        records = [
            r for r in job.result_records() if not r.get("error")
        ]
        key = aggregate_key(aggregate, records)
        with job.lock:
            cached = job._agg_cache.get(aggregate)
        if cached is not None and cached[0] == key:
            self._bump(f"node.agg.{aggregate}.hit")
            return cached[1], True
        self._bump(f"node.agg.{aggregate}.miss")
        value = run_aggregate(aggregate, records)
        with job.lock:
            job._agg_cache[aggregate] = (key, value)
        return value, False
