"""The pipeline-node graph: topology, scheduling, invalidation.

:class:`PipelineGraph` owns a set of :class:`~repro.pipeline.nodes.Node`
instances and the edges their declared inputs imply.  It answers the
three questions the incremental engine, the corpus runner and the
service ops all need:

* **Schedule** — a deterministic topological order (declaration order
  breaks ties) of the nodes enabled under a feature set; the engine
  replaces its hard-wired stage chain with this.
* **Invalidation** — given a set of changed external inputs (``source``
  changed, ``assertions`` changed, one node's output overridden), which
  nodes must re-run?  The closure propagates *downstream* along declared
  edges, never along the old linear chain.
* **Entry** — the first invalidated node in schedule order: where a
  re-analysis actually enters the graph.  Everything before it is a
  cache hit by construction.

The graph is pure topology — it holds no values and runs nothing.
Executors (the engine, the corpus runner) walk the schedule and do the
work; the graph tells them what is stale.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from .nodes import Node

__all__ = ["PipelineGraph", "GraphError"]


class GraphError(Exception):
    """Malformed topology: cycles, duplicate nodes, unknown entries."""


class PipelineGraph:
    """A DAG of analysis nodes with declared external inputs."""

    def __init__(self, external_inputs: Sequence[str] = ()) -> None:
        self.nodes: Dict[str, Node] = {}
        self.external_inputs: Set[str] = set(external_inputs)
        #: producing node name -> consuming node names (declared edges).
        self._downstream: Dict[str, Set[str]] = {}
        #: external input name -> consuming node names.
        self._input_consumers: Dict[str, Set[str]] = {}
        self._order: List[str] = []  # declaration order (tie-break)
        self._schedule_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise GraphError(f"duplicate node {node.name!r}")
        if node.name in self.external_inputs:
            raise GraphError(
                f"node {node.name!r} shadows an external input"
            )
        self.nodes[node.name] = node
        self._order.append(node.name)
        self._schedule_cache = None
        return node

    def external(self, *names: str) -> None:
        """Declare external inputs (caller-supplied values)."""

        self.external_inputs.update(names)

    def finalize(self) -> "PipelineGraph":
        """Resolve declared inputs to edges and validate the topology."""

        self._downstream = {n: set() for n in self.nodes}
        self._input_consumers = {i: set() for i in self.external_inputs}
        for node in self.nodes.values():
            for inp in node.inputs:
                if inp in self.nodes:
                    self._downstream[inp].add(node.name)
                elif inp in self.external_inputs:
                    self._input_consumers[inp].add(node.name)
                else:
                    raise GraphError(
                        f"node {node.name!r} consumes {inp!r}, which is "
                        "neither a node nor a declared external input"
                    )
        self.schedule()  # raises on cycles
        return self

    # ------------------------------------------------------------------
    # topology queries
    # ------------------------------------------------------------------

    def schedule(self, features=None) -> List[str]:
        """Topological order of (enabled) nodes, declaration-order ties.

        With ``features`` given, disabled nodes are dropped — their
        consumers keep their position (the executor treats a disabled
        producer as an absent, empty input, exactly like the old
        feature-gated stage chain did).
        """

        if self._schedule_cache is None:
            indeg = {n: 0 for n in self.nodes}
            for node in self.nodes.values():
                for inp in node.inputs:
                    if inp in self.nodes:
                        indeg[node.name] += 1
            ready = [n for n in self._order if indeg[n] == 0]
            out: List[str] = []
            while ready:
                name = ready.pop(0)
                out.append(name)
                opened = [
                    m
                    for m in self._order
                    if m in self._downstream.get(name, ())
                ]
                for m in opened:
                    indeg[m] -= 1
                    if indeg[m] == 0:
                        ready.append(m)
                ready.sort(key=self._order.index)
            if len(out) != len(self.nodes):
                cyclic = sorted(set(self.nodes) - set(out))
                raise GraphError(f"cycle through nodes {cyclic}")
            self._schedule_cache = out
        if features is None:
            return list(self._schedule_cache)
        return [
            n
            for n in self._schedule_cache
            if self.nodes[n].is_enabled(features)
        ]

    def upstream(self, name: str) -> Set[str]:
        """Transitive producers of ``name`` (not including it)."""

        node = self._node(name)
        out: Set[str] = set()
        stack = [i for i in node.inputs if i in self.nodes]
        while stack:
            n = stack.pop()
            if n in out:
                continue
            out.add(n)
            stack.extend(
                i for i in self.nodes[n].inputs if i in self.nodes
            )
        return out

    def downstream(self, names: Iterable[str]) -> Set[str]:
        """Transitive consumers of ``names`` (not including them)."""

        seeds = list(names)
        for n in seeds:
            self._node(n)
        out: Set[str] = set()
        stack = [m for n in seeds for m in self._downstream.get(n, ())]
        while stack:
            n = stack.pop()
            if n in out:
                continue
            out.add(n)
            stack.extend(self._downstream.get(n, ()))
        return out

    def invalidated_by(
        self, changed_inputs: Iterable[str], features=None
    ) -> Set[str]:
        """Nodes that must re-run after the named external inputs (or
        node outputs — an override counts as a change *at* that node's
        consumers) changed; closure strictly along declared edges."""

        direct: Set[str] = set()
        for change in changed_inputs:
            if change in self.external_inputs:
                direct.update(self._input_consumers.get(change, ()))
            elif change in self.nodes:
                direct.update(self._downstream.get(change, ()))
            else:
                raise GraphError(
                    f"{change!r} is neither an external input nor a node"
                )
        out = set(direct)
        stack = list(direct)
        while stack:
            for m in self._downstream.get(stack.pop(), ()):
                if m not in out:
                    out.add(m)
                    stack.append(m)
        if features is not None:
            out = {n for n in out if self.nodes[n].is_enabled(features)}
        return out

    def entry_for(
        self, changed_inputs: Iterable[str], features=None
    ) -> Optional[str]:
        """The first invalidated node in schedule order — where a
        re-analysis enters the graph — or ``None`` for a pure replay."""

        invalid = self.invalidated_by(changed_inputs, features=features)
        for name in self.schedule(features):
            if name in invalid:
                return name
        return None

    def describe(self, features=None) -> dict:
        """JSON-able topology (the ``graph.describe`` op's payload)."""

        order = self.schedule(features)
        return {
            "external_inputs": sorted(self.external_inputs),
            "schedule": order,
            "nodes": [self.nodes[n].describe() for n in order],
        }

    def _node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise GraphError(f"no node named {name!r}") from None
