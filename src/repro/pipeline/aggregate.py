"""Aggregate nodes: fleet-wide rollups downstream of per-program results.

The paper's Tables 2 and 3 summarize *one suite*; at corpus scale the
same questions become standing queries — which obstacle blocks the most
loops fleet-wide, how far down the dependence-test hierarchy the corpus
actually drives the tester, which transformations apply where.  Each
rollup is a :class:`~repro.pipeline.nodes.Node` whose single input is
the ``results`` collection (per-program result records produced by
:mod:`repro.pipeline.corpus`), keyed on the content digests of those
results — so an aggregate is cached and invalidated exactly like any
other node: resubmitting a program with changed source changes its
result digest, which changes the aggregate's key, which recomputes the
rollup; a repeated query replays the cache.

Every rollup function is pure and order-insensitive (results are
processed in sorted program order), so corpus aggregates equal the
serial sum of per-program results by construction — the satellite
parity test asserts it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from .nodes import Node, content_key

__all__ = [
    "AGGREGATE_NODES",
    "AGGREGATES",
    "aggregate_key",
    "run_aggregate",
    "rollup_obstacles",
    "rollup_tiers",
    "rollup_transforms",
    "rollup_summary",
]


def _merge_counts(
    results: Sequence[Dict], field: str
) -> Dict[str, int]:
    out: Dict[str, int] = {}
    for res in sorted(results, key=lambda r: r.get("program", "")):
        for key, n in (res.get(field) or {}).items():
            out[key] = out.get(key, 0) + int(n)
    return out


def _ranked(counts: Dict[str, int]) -> List[Tuple[str, int]]:
    """Counts as (name, n) rows, most frequent first, name tie-break."""

    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))


def rollup_obstacles(results: Sequence[Dict]) -> Dict:
    """Which obstacle blocks the most loops fleet-wide."""

    counts = _merge_counts(results, "obstacles")
    ranked = _ranked(counts)
    return {
        "obstacles": counts,
        "ranked": [{"obstacle": o, "loops": n} for o, n in ranked],
        "top": ranked[0][0] if ranked else None,
        "blocked_loops": sum(counts.values()),
    }


def rollup_tiers(results: Sequence[Dict]) -> Dict:
    """Dependence-test tier histogram (pairs resolved per tier)."""

    counts = _merge_counts(results, "tiers")
    return {
        "tiers": counts,
        "pairs": sum(counts.values()),
    }


def rollup_transforms(results: Sequence[Dict]) -> Dict:
    """Transformation-applicability counts (Table 2 at corpus scale)."""

    counts = _merge_counts(results, "transforms")
    return {
        "transforms": counts,
        "ranked": [
            {"transform": t, "loops": n} for t, n in _ranked(counts)
        ],
    }


def rollup_summary(results: Sequence[Dict]) -> Dict:
    """Corpus-wide totals: programs, units, loops, parallelizability."""

    ok = [r for r in results if not r.get("error")]
    loops = sum(r.get("loops", 0) for r in ok)
    parallel = sum(r.get("parallel_loops", 0) for r in ok)
    return {
        "programs": len(results),
        "errors": sum(1 for r in results if r.get("error")),
        "units": sum(r.get("units", 0) for r in ok),
        "loops": loops,
        "parallel_loops": parallel,
        "parallel_fraction": (parallel / loops) if loops else 0.0,
    }


_ROLLUPS: Dict[str, Callable[[Sequence[Dict]], Dict]] = {
    "obstacles": rollup_obstacles,
    "tiers": rollup_tiers,
    "transforms": rollup_transforms,
    "summary": rollup_summary,
}

#: The aggregate nodes, all siblings downstream of ``results``.
AGGREGATE_NODES = tuple(
    Node(
        f"agg.{name}",
        inputs=("results",),
        doc=fn.__doc__.splitlines()[0] if fn.__doc__ else "",
    )
    for name, fn in _ROLLUPS.items()
)

#: Aggregate name -> (node, rollup function).
AGGREGATES: Dict[str, Tuple[Node, Callable]] = {
    name: (node, _ROLLUPS[name])
    for node, name in zip(AGGREGATE_NODES, _ROLLUPS)
}


def aggregate_key(name: str, results: Sequence[Dict]) -> str:
    """The aggregate node's content key: its name over the sorted
    per-program result digests (order-insensitive by construction)."""

    node, _fn = AGGREGATES[name]
    digests = tuple(
        sorted(
            (r.get("program", ""), r.get("digest", "")) for r in results
        )
    )
    return node.key((content_key(digests),))


def run_aggregate(name: str, results: Sequence[Dict]) -> Dict:
    """Compute one rollup (no caching — executors own their caches)."""

    try:
        _node, fn = AGGREGATES[name]
    except KeyError:
        known = ", ".join(sorted(AGGREGATES))
        raise KeyError(
            f"unknown aggregate {name!r}; known: {known}"
        ) from None
    return fn(results)
