"""First-class pipeline nodes: declared inputs/outputs, content keys.

A :class:`Node` names one analysis step and *declares* what it consumes
and produces instead of hard-coding its position in a chain.  Inputs
come in two flavours:

* **external inputs** (``source``, ``assertions``, ``features``,
  ``results`` …) — values the caller supplies; written as plain names.
* **node inputs** — outputs of upstream nodes; written as the producing
  node's name.  The graph resolves them to edges at registration time.

Each run of a node yields a :class:`NodeResult` carrying the node's
**content key** — a digest of the node name, every input key and the
node's parameter digest (see
:func:`repro.incremental.fingerprint.content_key`).  Two runs with equal
keys are guaranteed to produce structurally identical values, which is
what lets a caller *enter* the graph at any node: every upstream node
whose key is unchanged is a cache hit by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from ..incremental.fingerprint import content_key

__all__ = ["Node", "NodeResult", "content_key"]


@dataclass(frozen=True)
class Node:
    """One addressable analysis step.

    ``inputs`` mixes external input names and upstream node names (the
    graph tells them apart by what is registered); ``outputs`` names the
    values the node contributes (defaults to the node's own name).
    ``enabled`` gates the node on the active feature set — a disabled
    node drops out of the schedule and of every downstream key.
    """

    name: str
    inputs: Tuple[str, ...] = ()
    outputs: Tuple[str, ...] = ()
    doc: str = ""
    #: Feature gate: ``enabled(features)`` — ``None`` means always on.
    enabled: Optional[Callable[[object], bool]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a node needs a name")
        if not self.outputs:
            object.__setattr__(self, "outputs", (self.name,))

    def is_enabled(self, features) -> bool:
        if self.enabled is None:
            return True
        return bool(self.enabled(features))

    def key(self, input_keys: Tuple[str, ...], params: str = "") -> str:
        """This node's content key for one run (see module docstring)."""

        return content_key(self.name, input_keys, params)

    def describe(self) -> dict:
        """JSON-able summary (the ``graph.describe`` op's row)."""

        return {
            "name": self.name,
            "inputs": list(self.inputs),
            "outputs": list(self.outputs),
            "doc": self.doc,
        }


@dataclass
class NodeResult:
    """One run (or cache replay) of a node."""

    node: str
    key: str
    #: ``"hit"`` (key unchanged, cached value replayed), ``"recomputed"``
    #: (key changed, node ran) or ``"skipped"`` (disabled by features).
    state: str = "recomputed"
    #: Optional value payload; graph-level accounting never needs it,
    #: aggregate nodes carry their rollup here.
    value: object = None

    def describe(self) -> dict:
        return {"node": self.node, "key": self.key, "state": self.state}
