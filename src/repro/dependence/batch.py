"""Batched execution of the dependence-test hierarchy.

The scalar path (:meth:`DependenceTester.test_pair`) walks one pair at a
time: canonical key, memo probe, then — on a miss — classification and
the ZIV → SIV → GCD → Banerjee cascade.  Real units hand the driver
thousands of pairs per build, most of which collapse onto a handful of
canonical keys (a stencil repeats ``A(I,J)`` vs ``A(I,J-1)`` at every
statement), so the per-pair fixed costs (re-deriving loop bounds and the
constant environment, rebuilding key tuples, re-probing the shared memo)
dominate the actual testing.

The driver's batched build (:meth:`_GraphBuilder._build_batched`)
restructures that loop around the whole batch:

1. **Columnar collection** — one pass derives canonical keys against
   per-nest bound vectors and per-statement environment slices computed
   once per batch, interning every key component so keys compare by id.
2. **One memo consultation per batch** — the same pass resolves every
   pair against the in-batch plan map and the shared memo.  Only the
   *first* occurrence of a key probes the shared memo; later occurrences
   are local hits, exactly as the scalar sequential order would have
   produced.  Each first occurrence becomes a :class:`BatchPair`.
3. **Tier sweeps** — :func:`run_uncached` (this module) runs the test
   hierarchy tier-by-tier over all surviving uniques: classification
   over the whole batch, then the ZIV tier, then the direction
   enumeration grouped by nest depth so one direction sequence drives
   every group member with ``bound_by_var`` hoisted out of the loop.
4. **Replay emission** — duplicates re-bump the recorded counters with
   their multiplicity, sharing one reconstructed vectors list per
   distinct verdict, exactly as :meth:`DependenceTester._replay` would
   pair-at-a-time.

Counter parity is exact by construction: every miss bumps tiers through
the same ``bump`` closure the scalar path uses, and replays reproduce
the recorded counters.  M1 tier statistics, memo hit/miss accounting and
the resulting :class:`PairResult` stream are identical to calling
``test_pair`` per pair in order — the parity suite
(``tests/perf/test_batch_parity.py``) asserts this over randomized
affine subscript pairs.
"""

from __future__ import annotations

from itertools import product
from time import perf_counter
from typing import Dict, List, Optional

from .hierarchy import (
    _TIER_ORDER,
    DependenceTester,
    PairResult,
    VectorResult,
)
from .subscript import FULL, RANGE, ZIV, pair_subscripts
from .tests import EQ, GT, INDEP, LT, ziv_test

_ZIV_INDEX = _TIER_ORDER.index("ziv")


class BatchPair:
    """One canonical key's single computation within a batch.

    Carries the pair context (source, sink, bounds, nest variables,
    constant environment) of the key's first occurrence — any occurrence
    would do, since equal keys put identical inputs in front of the
    tester — plus the working state of the tier sweeps.
    """

    __slots__ = (
        "src",
        "snk",
        "bounds",
        "nest_vars",
        "env",
        "shared_key",
        "pairs",
        "classic",
        "tests_run",
        "bump",
        "vectors",
        "highest",
        "result",
        "value",
        "emitted",
    )

    def __init__(self, src, snk, bounds, nest_vars, env, shared_key) -> None:
        self.src = src
        self.snk = snk
        self.bounds = bounds
        self.nest_vars = nest_vars
        self.env = env
        self.shared_key = shared_key
        self.result: Optional[PairResult] = None
        self.value: Optional[tuple] = None
        self.emitted = False


def run_uncached(tester: DependenceTester, uniques: List[BatchPair]) -> None:
    """The test hierarchy, tier-by-tier over a batch of memo misses.

    Fills each unique's ``result`` (a :class:`PairResult` for its first
    occurrence) and ``value`` (the replayable memo form).  Equivalent —
    in results *and* in every counter the tester keeps — to running
    :meth:`DependenceTester._test_pair_uncached` per unique in order.
    """

    if not uniques:
        return
    ts = tester.tier_seconds
    tier_counts = tester.tier_counts

    # Sweep 1: classification — every unique's subscript positions.
    table = tester.table
    oracle = tester.oracle
    for u in uniques:
        u.pairs = pair_subscripts(
            u.src, u.snk, u.nest_vars, table, u.env, oracle
        )
        u.classic = not any(sp.kind in (RANGE, FULL) for sp in u.pairs)
        tests_run: Dict[str, int] = {}
        u.tests_run = tests_run

        def bump(
            tier: str, tests_run=tests_run, tier_counts=tier_counts
        ) -> None:
            tests_run[tier] = tests_run.get(tier, 0) + 1
            tier_counts[tier] = tier_counts.get(tier, 0) + 1

        u.bump = bump

    # Sweep 2: the ZIV tier settles pairs for every direction at once.
    alive: List[BatchPair] = []
    for u in uniques:
        settled = False
        for sp in u.pairs:
            if sp.kind != ZIV:
                continue
            u.bump("ziv")
            if ts is None:
                out = ziv_test(sp.src.rem - sp.snk.rem, oracle)
            else:
                t0 = perf_counter()
                out = ziv_test(sp.src.rem - sp.snk.rem, oracle)
                ts["ziv"] = ts.get("ziv", 0.0) + (perf_counter() - t0)
            if out.result == INDEP:
                u.result = tester._finish(
                    u.src, u.snk, True, [], "ziv", u.tests_run, u.classic
                )
                u.value = tester._memo_value(u.result)
                settled = True
                break
        if not settled:
            alive.append(u)

    # Sweep 3: direction enumeration, grouped by nest depth so every
    # group member shares one direction sequence and a hoisted
    # var → bound map.
    groups: Dict[int, List[BatchPair]] = {}
    for u in alive:
        groups.setdefault(len(u.bounds), []).append(u)
    for m, group in groups.items():
        maps = []
        for u in group:
            u.vectors = []
            u.highest = _ZIV_INDEX
            maps.append({b.var: b for b in u.bounds})
        if m == 0:
            for u, bound_by_var in zip(group, maps):
                exists, proven, tier, test = tester._test_vector(
                    u.pairs, u.bounds, (), u.bump, bound_by_var
                )
                u.highest = _TIER_ORDER.index(tier)
                if exists:
                    u.vectors.append(VectorResult((), True, proven, test))
            continue
        for direction in product(
            (LT, EQ, GT), repeat=min(m, tester.max_nest)
        ):
            for u, bound_by_var in zip(group, maps):
                exists, proven, tier, test = tester._test_vector(
                    u.pairs, u.bounds, direction, u.bump, bound_by_var
                )
                ti = _TIER_ORDER.index(tier)
                if ti > u.highest:
                    u.highest = ti
                if exists:
                    vector = tester._refine_vector(
                        u.pairs, u.bounds, direction
                    )
                    u.vectors.append(
                        VectorResult(vector, True, proven, test)
                    )

    for u in alive:
        u.result = tester._finish(
            u.src,
            u.snk,
            not u.vectors,
            u.vectors,
            _TIER_ORDER[u.highest],
            u.tests_run,
            u.classic,
        )
        u.value = tester._memo_value(u.result)
