"""Control dependence (Ferrante–Ottenstein–Warren).

Statement ``c`` is control dependent on branch ``a`` when ``a`` has one
successor through which ``c`` is always reached (``c`` postdominates it)
and another through which it may be avoided (``c`` does not postdominate
``a``).  Computed directly from postdominator sets; the graphs here are
small (one procedure) so the O(E·N) formulation is plenty fast and easy
to audit.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..analysis.cfg import CFG, ENTRY, EXIT


def control_dependences(cfg: CFG) -> List[Tuple[int, int]]:
    """All (branch_sid, dependent_sid) control-dependence pairs.

    Synthetic ENTRY/EXIT nodes never appear in the result.
    """

    pdom = cfg.postdominators()
    out: List[Tuple[int, int]] = []
    seen: Set[Tuple[int, int]] = set()
    real_nodes = [n for n in cfg.nodes() if n not in (ENTRY, EXIT)]
    for a in real_nodes:
        succs = sorted(cfg.succ.get(a, ()))
        if len(succs) < 2:
            continue
        for s in succs:
            for c in real_nodes:
                if c == a:
                    continue
                postdominates_succ = c == s or (s in pdom and c in pdom[s])
                postdominates_branch = c in pdom[a]
                if postdominates_succ and not postdominates_branch:
                    key = (a, c)
                    if key not in seen:
                        seen.add(key)
                        out.append(key)
    return out
