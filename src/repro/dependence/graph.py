"""The dependence graph: typed, levelled edges between statements.

Edge *types* follow the classic taxonomy: flow (true), anti, output and
input data dependences plus control dependences.  Every edge carries a
hybrid direction/distance vector over the common loop nest and a *marking*
used by the editor: ``proven`` (established by an exact test), ``pending``
(assumed because no test disproved it), or a user marking ``accepted`` /
``rejected`` applied through the dependence pane.  Rejected edges are kept
— Ped never forgets a user decision, it only filters — but they no longer
inhibit parallelization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterable, List, Optional, Tuple

from ..fortran.ast_nodes import DoLoop

FLOW = "true"
ANTI = "anti"
OUTPUT = "output"
INPUT = "input"
CONTROL = "control"

PROVEN = "proven"
PENDING = "pending"
ACCEPTED = "accepted"
REJECTED = "rejected"

#: Vector element: an int distance, or one of '<', '=', '>', '*'.
VecElem = object


@dataclass
class Dependence:
    """One dependence edge.

    ``vector`` is the hybrid distance/direction vector over the common
    nest, outermost first — ints where the distance is exact, direction
    symbols otherwise.  ``level`` is the 1-based carrying level within the
    common nest, or 0 for loop-independent edges.  ``var`` is the array or
    scalar the dependence flows through.
    """

    id: int
    kind: str
    var: str
    src_sid: int
    dst_sid: int
    vector: Tuple[VecElem, ...]
    level: int
    marking: str = PENDING
    test: str = ""
    src_line: int = 0
    dst_line: int = 0
    reason: str = ""
    #: sids of the common-nest DO loops, outermost first; vector[k] and
    #: level refer to positions in this tuple.
    nest_sids: Tuple[int, ...] = ()

    @property
    def loop_carried(self) -> bool:
        return self.level > 0

    def carrier_sid(self) -> Optional[int]:
        """sid of the loop carrying this dependence (None if independent)."""

        if self.level > 0 and self.level <= len(self.nest_sids):
            return self.nest_sids[self.level - 1]
        return None

    @property
    def loop_independent(self) -> bool:
        return self.level == 0

    def distance_at(self, level: int) -> Optional[int]:
        if 1 <= level <= len(self.vector):
            elem = self.vector[level - 1]
            if isinstance(elem, int):
                return elem
        return None

    def direction_at(self, level: int) -> str:
        if 1 <= level <= len(self.vector):
            elem = self.vector[level - 1]
            if isinstance(elem, int):
                if elem > 0:
                    return "<"
                if elem < 0:
                    return ">"
                return "="
            return str(elem)
        return "*"

    @property
    def blocks_parallelization(self) -> bool:
        """A rejected edge no longer constrains the loop."""

        return self.marking != REJECTED

    def vector_str(self) -> str:
        parts = []
        for elem in self.vector:
            parts.append(str(elem) if isinstance(elem, int) else str(elem))
        return "(" + ",".join(parts) + ")" if parts else "()"


@dataclass
class DependenceGraph:
    """All dependence edges of one procedure."""

    edges: List[Dependence] = field(default_factory=list)
    _ids: count = field(default_factory=count)
    by_src: Dict[int, List[Dependence]] = field(default_factory=dict)
    by_dst: Dict[int, List[Dependence]] = field(default_factory=dict)

    def add(
        self,
        kind: str,
        var: str,
        src_sid: int,
        dst_sid: int,
        vector: Tuple[VecElem, ...],
        level: int,
        marking: str = PENDING,
        test: str = "",
        src_line: int = 0,
        dst_line: int = 0,
        reason: str = "",
        nest_sids: Tuple[int, ...] = (),
    ) -> Dependence:
        dep = Dependence(
            next(self._ids),
            kind,
            var,
            src_sid,
            dst_sid,
            vector,
            level,
            marking,
            test,
            src_line,
            dst_line,
            reason,
            nest_sids,
        )
        self.edges.append(dep)
        self.by_src.setdefault(src_sid, []).append(dep)
        self.by_dst.setdefault(dst_sid, []).append(dep)
        return dep

    def find(self, dep_id: int) -> Dependence:
        for dep in self.edges:
            if dep.id == dep_id:
                return dep
        raise KeyError(dep_id)

    def marking_snapshot(self) -> List[str]:
        """Edge markings in edge order — the only per-edge state users
        mutate, so this is all a cached graph needs saved for reuse."""

        return [dep.marking for dep in self.edges]

    def restore_markings(self, snapshot: List[str]) -> None:
        for dep, marking in zip(self.edges, snapshot):
            dep.marking = marking

    def data_edges(self) -> List[Dependence]:
        return [d for d in self.edges if d.kind != CONTROL]

    def edges_within(self, sids: Iterable[int]) -> List[Dependence]:
        """Edges with both endpoints inside the given statement set."""

        sid_set = set(sids)
        return [
            d for d in self.edges if d.src_sid in sid_set and d.dst_sid in sid_set
        ]

    def carried_by(self, loop: DoLoop) -> List[Dependence]:
        """Data dependences carried by ``loop`` (via ``nest_sids``)."""

        return [
            d
            for d in self.edges
            if d.kind != CONTROL and d.carrier_sid() == loop.sid
        ]

    def at_loop(self, loop: DoLoop, body_sids) -> List[Dependence]:
        """All edges whose endpoints both lie in ``loop``'s body."""

        sid_set = set(body_sids)
        return [
            d
            for d in self.edges
            if d.src_sid in sid_set and d.dst_sid in sid_set
        ]
