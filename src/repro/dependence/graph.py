"""The dependence graph: typed, levelled edges between statements.

Edge *types* follow the classic taxonomy: flow (true), anti, output and
input data dependences plus control dependences.  Every edge carries a
hybrid direction/distance vector over the common loop nest and a *marking*
used by the editor: ``proven`` (established by an exact test), ``pending``
(assumed because no test disproved it), or a user marking ``accepted`` /
``rejected`` applied through the dependence pane.  Rejected edges are kept
— Ped never forgets a user decision, it only filters — but they no longer
inhibit parallelization.

Query performance: :meth:`DependenceGraph.add` maintains secondary
indices (by source sid, by destination sid, by carrier-loop sid, by
variable, by id and by nest membership) so the hot queries the driver,
the editor panes and the transformations issue — ``carried_by``,
``edges_within``, ``find``, per-variable pane filters — cost O(results)
instead of O(edges).  All indices hold the same :class:`Dependence`
objects as ``edges`` (never copies), so marking mutations are visible
everywhere and ``marking_snapshot`` / ``restore_markings`` keep working
off the canonical insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Dict, Iterable, List, Optional, Tuple

from ..fortran.ast_nodes import DoLoop

FLOW = "true"
ANTI = "anti"
OUTPUT = "output"
INPUT = "input"
CONTROL = "control"

PROVEN = "proven"
PENDING = "pending"
ACCEPTED = "accepted"
REJECTED = "rejected"

#: Vector element: an int distance, or one of '<', '=', '>', '*'.
VecElem = object

#: Carrier-index key for loop-independent edges (level 0).
_NO_CARRIER = -1


@dataclass
class Dependence:
    """One dependence edge.

    ``vector`` is the hybrid distance/direction vector over the common
    nest, outermost first — ints where the distance is exact, direction
    symbols otherwise.  ``level`` is the 1-based carrying level within the
    common nest, or 0 for loop-independent edges.  ``var`` is the array or
    scalar the dependence flows through.
    """

    id: int
    kind: str
    var: str
    src_sid: int
    dst_sid: int
    vector: Tuple[VecElem, ...]
    level: int
    marking: str = PENDING
    test: str = ""
    src_line: int = 0
    dst_line: int = 0
    reason: str = ""
    #: sids of the common-nest DO loops, outermost first; vector[k] and
    #: level refer to positions in this tuple.
    nest_sids: Tuple[int, ...] = ()

    @property
    def loop_carried(self) -> bool:
        return self.level > 0

    def carrier_sid(self) -> Optional[int]:
        """sid of the loop carrying this dependence (None if independent)."""

        if self.level > 0 and self.level <= len(self.nest_sids):
            return self.nest_sids[self.level - 1]
        return None

    @property
    def loop_independent(self) -> bool:
        return self.level == 0

    def distance_at(self, level: int) -> Optional[int]:
        if 1 <= level <= len(self.vector):
            elem = self.vector[level - 1]
            if isinstance(elem, int):
                return elem
        return None

    def direction_at(self, level: int) -> str:
        if 1 <= level <= len(self.vector):
            elem = self.vector[level - 1]
            if isinstance(elem, int):
                if elem > 0:
                    return "<"
                if elem < 0:
                    return ">"
                return "="
            return str(elem)
        return "*"

    @property
    def blocks_parallelization(self) -> bool:
        """A rejected edge no longer constrains the loop."""

        return self.marking != REJECTED

    def vector_str(self) -> str:
        parts = []
        for elem in self.vector:
            parts.append(str(elem) if isinstance(elem, int) else str(elem))
        return "(" + ",".join(parts) + ")" if parts else "()"


@dataclass
class DependenceGraph:
    """All dependence edges of one procedure."""

    edges: List[Dependence] = field(default_factory=list)
    _ids: count = field(default_factory=count)
    by_src: Dict[int, List[Dependence]] = field(default_factory=dict)
    by_dst: Dict[int, List[Dependence]] = field(default_factory=dict)
    #: carrier-loop sid → carried data edges (``_NO_CARRIER`` bucket holds
    #: loop-independent edges); control edges are excluded, matching the
    #: ``carried_by`` contract.
    by_carrier: Dict[int, List[Dependence]] = field(default_factory=dict)
    #: variable name → edges through that variable (pane var= filters).
    by_var: Dict[str, List[Dependence]] = field(default_factory=dict)
    #: common-nest loop sid → edges whose nest_sids mention that loop.
    by_nest: Dict[int, List[Dependence]] = field(default_factory=dict)
    _by_id: Dict[int, Dependence] = field(default_factory=dict)

    def add(
        self,
        kind: str,
        var: str,
        src_sid: int,
        dst_sid: int,
        vector: Tuple[VecElem, ...],
        level: int,
        marking: str = PENDING,
        test: str = "",
        src_line: int = 0,
        dst_line: int = 0,
        reason: str = "",
        nest_sids: Tuple[int, ...] = (),
    ) -> Dependence:
        dep = Dependence(
            next(self._ids),
            kind,
            var,
            src_sid,
            dst_sid,
            vector,
            level,
            marking,
            test,
            src_line,
            dst_line,
            reason,
            nest_sids,
        )
        self.edges.append(dep)
        # Index maintenance, open-coded: ``setdefault(k, [])`` allocates
        # a throwaway list per call, and this is the hottest write path
        # in the driver's pair stage.
        bucket = self.by_src.get(src_sid)
        if bucket is None:
            self.by_src[src_sid] = bucket = []
        bucket.append(dep)
        bucket = self.by_dst.get(dst_sid)
        if bucket is None:
            self.by_dst[dst_sid] = bucket = []
        bucket.append(dep)
        bucket = self.by_var.get(var)
        if bucket is None:
            self.by_var[var] = bucket = []
        bucket.append(dep)
        self._by_id[dep.id] = dep
        if kind != CONTROL:
            # Inline carrier_sid(): the extra method call shows up here.
            if 0 < level <= len(nest_sids):
                key = nest_sids[level - 1]
            else:
                key = _NO_CARRIER
            bucket = self.by_carrier.get(key)
            if bucket is None:
                self.by_carrier[key] = bucket = []
            bucket.append(dep)
        for sid in nest_sids:
            bucket = self.by_nest.get(sid)
            if bucket is None:
                self.by_nest[sid] = bucket = []
            bucket.append(dep)
        return dep

    def find(self, dep_id: int) -> Dependence:
        try:
            return self._by_id[dep_id]
        except KeyError:
            raise KeyError(dep_id) from None

    def marking_snapshot(self) -> List[str]:
        """Edge markings in edge order — the only per-edge state users
        mutate, so this is all a cached graph needs saved for reuse."""

        return [dep.marking for dep in self.edges]

    def restore_markings(self, snapshot: List[str]) -> None:
        for dep, marking in zip(self.edges, snapshot):
            dep.marking = marking

    def data_edges(self) -> List[Dependence]:
        return [d for d in self.edges if d.kind != CONTROL]

    def edges_within(self, sids: Iterable[int]) -> List[Dependence]:
        """Edges with both endpoints inside the given statement set.

        Walks the per-source index of each requested sid rather than the
        whole edge list; result order matches insertion order.
        """

        sid_set = set(sids)
        if len(sid_set) * 4 >= len(self.edges):
            # Dense selection: a single scan preserves order for free.
            return [
                d
                for d in self.edges
                if d.src_sid in sid_set and d.dst_sid in sid_set
            ]
        out = [
            d
            for sid in sid_set
            for d in self.by_src.get(sid, ())
            if d.dst_sid in sid_set
        ]
        out.sort(key=lambda d: d.id)
        return out

    def edges_between(
        self, src_sids: Iterable[int], dst_sids: Iterable[int]
    ) -> List[Dependence]:
        """Edges from any sid in ``src_sids`` to any sid in ``dst_sids``."""

        src_set = set(src_sids)
        dst_set = set(dst_sids)
        out = [
            d
            for sid in src_set
            for d in self.by_src.get(sid, ())
            if d.dst_sid in dst_set
        ]
        out.sort(key=lambda d: d.id)
        return out

    def carried_by(self, loop: DoLoop) -> List[Dependence]:
        """Data dependences carried by ``loop`` (via ``nest_sids``)."""

        return self.carried_by_sid(loop.sid)

    def carried_by_sid(self, sid: int) -> List[Dependence]:
        return list(self.by_carrier.get(sid, ()))

    def in_nest(self, sid: int) -> List[Dependence]:
        """Edges whose common nest includes the loop with ``sid``."""

        return list(self.by_nest.get(sid, ()))

    def with_var(self, var: str) -> List[Dependence]:
        """Edges flowing through variable ``var``."""

        return list(self.by_var.get(var, ()))

    def at_loop(self, loop: DoLoop, body_sids) -> List[Dependence]:
        """All edges whose endpoints both lie in ``loop``'s body."""

        return self.edges_within(body_sids)
