"""Per-pair dependence testing: cheap tests first, Banerjee last.

Given two accesses to the same array, :class:`DependenceTester` classifies
every subscript position (ZIV/SIV/MIV/sections) and applies tests in
order of cost:

1. **ZIV** on positions without index variables — constant differences
   settle most pairs immediately;
2. **exact SIV** tests (strong / weak-zero / weak-crossing) which also
   deliver exact distances;
3. **GCD** on MIV positions;
4. **Banerjee** bounding per direction vector, also used for section-range
   overlap.

The tester records which tier disposed of the pair (`resolved_by`) and how
many individual tests ran per tier — the data behind the paper's claim
that a hierarchical suite "starting with inexpensive tests" is the right
engineering (bench M1).

Hot path: real procedures repeat the same subscript pattern dozens of
times (``A(I,J)`` vs ``A(I,J-1)`` at every statement of a stencil), so
:meth:`DependenceTester.test_pair` memoizes verdicts keyed on a canonical
form of the pair — the printed subscripts of both accesses, the common
nest bounds, the slice of the constant environment the subscripts can
see, and the oracle's assertion version.  A memo hit *replays* the
recorded tier counters before returning, so tier statistics (bench M1)
are bit-identical with and without the cache; the cache self-invalidates
whenever the oracle reports a new version (assertion added/removed).
The driver-level pair pruner reports structurally-impossible pairs here
too (tier ``"pruned"``), keeping all per-pair accounting in one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.symbolic import Env, Linear
from ..fortran.symbols import SymbolTable, int_const
from .references import ArrayAccess
from .subscript import (
    FULL,
    NONLINEAR,
    RANGE,
    SIV,
    ZIV,
    AffineSub,
    SubscriptPair,
    pair_subscripts,
)
from .tests import (
    ANY,
    DEP,
    EQ,
    GT,
    INDEP,
    LT,
    LoopBound,
    MAYBE,
    Oracle,
    TestOutcome,
    banerjee_test,
    gcd_test,
    strong_siv_test,
    weak_crossing_siv_test,
    weak_zero_siv_test,
    ziv_test,
)

_TIER_ORDER = ["pruned", "ziv", "siv", "gcd", "banerjee"]


@dataclass
class VectorResult:
    """Outcome for one direction vector of a pair."""

    vector: Tuple[object, ...]  # ints (exact distance) or direction chars
    exists: bool
    proven: bool
    test: str = ""


@dataclass
class PairResult:
    """Full result of testing one access pair."""

    src: ArrayAccess
    snk: ArrayAccess
    independent: bool
    vectors: List[VectorResult] = field(default_factory=list)
    resolved_by: str = "banerjee"
    tests_run: Dict[str, int] = field(default_factory=dict)
    #: Classic element-reference pair (no call-site section dimensions).
    classic: bool = True


#: Sentinel for names whose PARAMETER value is not an integer constant —
#: such pairs opt out of cross-unit sharing (the printed subscript text
#: cannot distinguish two units binding the name differently).
_UNSHAREABLE = object()


class SharedPairMemo:
    """Program-scoped (and disk-persisted) pair-test memo.

    One instance is shared by every :class:`DependenceTester` a session
    creates, so a verdict proved in one unit replays in every other unit
    whose pair has the same *shared key* — the tester's canonical local
    key widened with the oracle digest, nest depth and PARAMETER slice
    (everything unit-local the local key left implicit).

    Worker-pool protocol: the memo is pickled into each worker payload;
    workers record fresh entries and counter deltas, :meth:`export` them
    with the task result, and the engine :meth:`absorb`\\ s the export
    into the live memo.  The pending/absorbed counter split makes this
    exactly-once in both the serial path (export and absorb touch the
    *same* object) and the worker path (a pickled copy exports).
    """

    #: Deterministic capacity cap — entries beyond this are computed but
    #: not stored, so long sessions stay bounded and parity stays exact.
    MAX_ENTRIES = 65536
    #: Above this entry count, engines ship workers an *empty* memo
    #: instead of pickling the full table into every payload; workers
    #: still export fresh entries for merge-back.
    MAX_SHIP = 4096

    def __init__(self, entries: Optional[Dict[tuple, tuple]] = None) -> None:
        self.entries: Dict[tuple, tuple] = dict(entries or {})
        self._fresh: Dict[tuple, tuple] = {}
        self._absorbed_hits = 0
        self._absorbed_misses = 0
        self._pending_hits = 0
        self._pending_misses = 0

    @property
    def hits(self) -> int:
        return self._absorbed_hits + self._pending_hits

    @property
    def misses(self) -> int:
        return self._absorbed_misses + self._pending_misses

    def lookup(self, key: tuple) -> Optional[tuple]:
        value = self.entries.get(key)
        if value is not None:
            self._pending_hits += 1
        else:
            self._pending_misses += 1
        return value

    def store(self, key: tuple, value: tuple) -> None:
        if key in self.entries or len(self.entries) >= self.MAX_ENTRIES:
            return
        self.entries[key] = value
        self._fresh[key] = value

    def export(self) -> Dict[str, object]:
        """Drain fresh entries and pending counters for merge-back."""

        fresh, self._fresh = self._fresh, {}
        hits, self._pending_hits = self._pending_hits, 0
        misses, self._pending_misses = self._pending_misses, 0
        return {"entries": fresh, "hits": hits, "misses": misses}

    def absorb(self, export: Optional[Dict[str, object]]) -> None:
        """Merge an :meth:`export` (possibly from a pickled copy)."""

        if not export:
            return
        for key, value in export.get("entries", {}).items():
            if len(self.entries) >= self.MAX_ENTRIES:
                break
            # Already present in the serial (same-object) path; new in
            # the worker path.  Either way, not re-marked fresh: the
            # engine owns persistence of absorbed entries directly.
            self.entries.setdefault(key, value)
        self._absorbed_hits += export.get("hits", 0)
        self._absorbed_misses += export.get("misses", 0)


def _classic_pair(src: ArrayAccess, snk: ArrayAccess) -> bool:
    """Would this pair classify without RANGE/FULL positions?

    Mirrors :func:`pair_subscripts`: element references and all-point
    sections pair as ordinary subscripts; a full or true-range dimension
    (or a rank mismatch, which pads with FULL) makes the pair
    non-classic.  Used by the pruner, which never runs the classifier.
    """

    a = src.point_rank()
    return a >= 0 and a == snk.point_rank()


class DependenceTester:
    """Applies the hierarchical test suite to access pairs.

    ``bounds`` supplies the per-loop index ranges (from constants +
    assertions); ``oracle`` answers symbolic queries; ``env`` maps known
    scalar constants into the affine extraction.
    """

    def __init__(
        self,
        table: Optional[SymbolTable] = None,
        oracle: Optional[Oracle] = None,
        env: Optional[Env] = None,
        max_nest: int = 6,
        memoize: bool = True,
        shared: Optional[SharedPairMemo] = None,
        profile: bool = False,
    ) -> None:
        self.table = table
        self.oracle = oracle or Oracle()
        self.env = env
        self.max_nest = max_nest
        self.tier_counts: Dict[str, int] = {t: 0 for t in _TIER_ORDER}
        #: tier → cumulative wall seconds spent in that tier's test
        #: functions; ``None`` unless constructed with ``profile=True``
        #: (the timing calls are skipped entirely when off).
        self.tier_seconds: Optional[Dict[str, float]] = (
            {} if profile else None
        )
        self.pair_resolution: Dict[str, int] = {}
        #: Same, restricted to classic element-reference pairs (no
        #: call-site section dimensions) — the population the
        #: Goff–Kennedy–Tseng "cheap tests first" claim is about.
        self.pair_resolution_classic: Dict[str, int] = {}
        self.memoize = memoize
        #: canonical pair key → recorded verdict (see :meth:`_memo_value`).
        self.memo: Dict[tuple, tuple] = {}
        self.memo_hits = 0
        self.memo_misses = 0
        #: Program-scoped memo, consulted after the local memo misses.
        self.shared = shared
        self.shared_hits = 0
        self.shared_misses = 0
        #: name → integer PARAMETER value / None / _UNSHAREABLE, cached
        #: per tester (one symbol table per tester).
        self._param_values: Dict[str, object] = {}
        self._memo_oracle_version = self.oracle.version()
        self._shared_ctx = self._compute_shared_ctx()

    # -- public API ---------------------------------------------------------

    def test_pair(
        self,
        src: ArrayAccess,
        snk: ArrayAccess,
        bounds: Sequence[LoopBound],
    ) -> PairResult:
        """Test an ordered access pair over its common nest bounds.

        Memoized on the canonical pair form when ``memoize`` is set; a
        hit replays the recorded tier counters so statistics stay
        identical to an uncached run.
        """

        if not self.memoize:
            return self._test_pair_uncached(src, snk, bounds)
        version = self.oracle.version()
        if version != self._memo_oracle_version:
            # Assertions changed under us: every cached verdict is suspect.
            self.memo.clear()
            self._memo_oracle_version = version
            # The shared memo keys on the oracle *digest*, so stale
            # entries become unreachable rather than dropped; recompute
            # the context so new lookups land in the new fact-space.
            self._shared_ctx = self._compute_shared_ctx()
        key = self._pair_key(src, snk, bounds)
        hit = self.memo.get(key)
        if hit is not None:
            self.memo_hits += 1
            return self._replay(src, snk, hit)
        shared_key = self._shared_key(key, src, snk)
        if shared_key is not None:
            hit = self.shared.lookup(shared_key)
            if hit is not None:
                self.shared_hits += 1
                self.memo[key] = hit
                return self._replay(src, snk, hit)
            self.shared_misses += 1
        self.memo_misses += 1
        result = self._test_pair_uncached(src, snk, bounds)
        value = self._memo_value(result)
        self.memo[key] = value
        if shared_key is not None:
            self.shared.store(shared_key, value)
        return result

    def count_pruned(self, src: ArrayAccess, snk: ArrayAccess) -> PairResult:
        """Record a pair the driver rejected before any test ran.

        Pruned pairs are provably edge-free (same-statement with no
        common loops, or disjoint constant subscripts/sections), so the
        cheapest possible "test" disposed of them; they are counted as
        their own tier in the hierarchy statistics.
        """

        classic = _classic_pair(src, snk)
        self.tier_counts["pruned"] = self.tier_counts.get("pruned", 0) + 1
        return self._finish(src, snk, True, [], "pruned", {}, classic)

    def _pair_key(
        self,
        src: ArrayAccess,
        snk: ArrayAccess,
        bounds: Sequence[LoopBound],
        env: Optional[Env] = None,
    ) -> tuple:
        src_shape, src_names = src.signature()
        snk_shape, snk_names = snk.signature()
        if env is None:
            env = self.env
        if env:
            names = src_names | snk_names
            env_slice = tuple(
                sorted((n, env[n]) for n in names if n in env)
            )
        else:
            env_slice = ()
        return (
            src_shape,
            snk_shape,
            tuple((b.var, b.lo, b.hi) for b in bounds),
            env_slice,
        )

    def _compute_shared_ctx(self) -> Optional[tuple]:
        """The cross-unit part of the shared key, or None to opt out.

        Sharing requires an oracle whose full fact content digests to a
        hashable summary; ``max_nest`` joins the key because it bounds
        the direction-vector enumeration.
        """

        if self.shared is None:
            return None
        digest = self.oracle.digest()
        if digest is None:
            return None
        return (digest, self.max_nest)

    def _shared_key(
        self, key: tuple, src: ArrayAccess, snk: ArrayAccess
    ) -> Optional[tuple]:
        """Widen the local key with everything the symbol table adds.

        Subscript extraction consults the table only to resolve integer
        PARAMETER constants, so the local key plus a slice of those
        values over the pair's referenced names is a complete canonical
        form across units.  A name bound to a non-integer PARAMETER opts
        the pair out (returns None) — its printed text underdetermines
        the extraction.
        """

        ctx = self._shared_ctx
        if ctx is None:
            return None
        _, src_names = src.signature()
        _, snk_names = snk.signature()
        params = []
        for name in sorted(src_names | snk_names):
            value = self._param_value(name)
            if value is _UNSHAREABLE:
                return None
            if value is not None:
                params.append((name, value))
        return (ctx, key, tuple(params))

    def _param_value(self, name: str):
        try:
            return self._param_values[name]
        except KeyError:
            pass
        value = None
        if self.table is not None:
            expr = self.table.parameter_value(name)
            if expr is not None:
                const = int_const(expr, self.table)
                value = const if const is not None else _UNSHAREABLE
        self._param_values[name] = value
        return value

    @staticmethod
    def _memo_value(result: PairResult) -> tuple:
        return (
            result.independent,
            tuple(
                (vr.vector, vr.exists, vr.proven, vr.test)
                for vr in result.vectors
            ),
            result.resolved_by,
            tuple(sorted(result.tests_run.items())),
            result.classic,
        )

    def _replay(
        self, src: ArrayAccess, snk: ArrayAccess, value: tuple
    ) -> PairResult:
        """Rebuild a PairResult from the memo, re-bumping every counter
        exactly as the recorded run did."""

        independent, vectors, resolved_by, tests_run, classic = value
        for tier, n in tests_run:
            self.tier_counts[tier] = self.tier_counts.get(tier, 0) + n
        return self._finish(
            src,
            snk,
            independent,
            [VectorResult(v, e, p, t) for (v, e, p, t) in vectors],
            resolved_by,
            dict(tests_run),
            classic,
        )

    def _test_pair_uncached(
        self,
        src: ArrayAccess,
        snk: ArrayAccess,
        bounds: Sequence[LoopBound],
    ) -> PairResult:
        nest_vars = [b.var for b in bounds]
        pairs = pair_subscripts(
            src, snk, nest_vars, self.table, self.env, self.oracle
        )
        tests_run: Dict[str, int] = {}

        def bump(tier: str) -> None:
            tests_run[tier] = tests_run.get(tier, 0) + 1
            self.tier_counts[tier] = self.tier_counts.get(tier, 0) + 1

        classic = not any(sp.kind in (RANGE, FULL) for sp in pairs)

        # Tier 1: ZIV positions settle the pair for every direction at once.
        ts = self.tier_seconds
        for sp in pairs:
            if sp.kind == ZIV:
                bump("ziv")
                if ts is None:
                    out = ziv_test(sp.src.rem - sp.snk.rem, self.oracle)
                else:
                    t0 = perf_counter()
                    out = ziv_test(sp.src.rem - sp.snk.rem, self.oracle)
                    ts["ziv"] = ts.get("ziv", 0.0) + (perf_counter() - t0)
                if out.result == INDEP:
                    return self._finish(
                        src, snk, True, [], "ziv", tests_run, classic
                    )

        # Tier 2+: per direction vector.
        m = len(bounds)
        vectors: List[VectorResult] = []
        highest_tier_used = "ziv"
        if m == 0:
            exists, proven, tier, test = self._test_vector(pairs, bounds, (), bump)
            highest_tier_used = tier
            if exists:
                vectors.append(VectorResult((), True, proven, test))
        else:
            for direction in product((LT, EQ, GT), repeat=min(m, self.max_nest)):
                exists, proven, tier, test = self._test_vector(
                    pairs, bounds, direction, bump
                )
                if _TIER_ORDER.index(tier) > _TIER_ORDER.index(highest_tier_used):
                    highest_tier_used = tier
                if not exists:
                    continue
                vector = self._refine_vector(pairs, bounds, direction)
                vectors.append(VectorResult(vector, True, proven, test))

        independent = not vectors
        return self._finish(
            src, snk, independent, vectors, highest_tier_used, tests_run, classic
        )

    # -- internals ---------------------------------------------------------

    def _finish(
        self, src, snk, independent, vectors, tier, tests_run, classic=True
    ) -> PairResult:
        self.pair_resolution[tier] = self.pair_resolution.get(tier, 0) + 1
        if classic:
            self.pair_resolution_classic[tier] = (
                self.pair_resolution_classic.get(tier, 0) + 1
            )
        return PairResult(src, snk, independent, vectors, tier, tests_run, classic)

    def _test_vector(
        self,
        pairs: List[SubscriptPair],
        bounds: Sequence[LoopBound],
        direction: Tuple[str, ...],
        bump,
        bound_by_var: Optional[Dict[str, LoopBound]] = None,
    ) -> Tuple[bool, bool, str, str]:
        """Decide one direction vector.

        ``bound_by_var`` may be supplied by callers that test many
        directions over the same bounds (the batch executor); it must
        equal ``{b.var: b for b in bounds}``.

        Returns ``(dep_exists_or_assumed, proven, highest_tier, test_name)``.
        """

        if bound_by_var is None:
            bound_by_var = {b.var: b for b in bounds}
        ts = self.tier_seconds
        all_exact = True
        tier_used = "ziv"
        deciding_test = ""
        for sp in pairs:
            if sp.kind == ZIV:
                continue  # already handled; cannot disprove further by dir
            if sp.kind == NONLINEAR:
                all_exact = False
                continue  # no information
            if sp.kind in (RANGE, FULL):
                if ts is None:
                    out = self._range_overlap(sp, bounds, direction)
                else:
                    t0 = perf_counter()
                    out = self._range_overlap(sp, bounds, direction)
                    ts["banerjee"] = (
                        ts.get("banerjee", 0.0) + (perf_counter() - t0)
                    )
                bump("banerjee")
                tier_used = "banerjee"
                if out.result == INDEP:
                    return (False, False, tier_used, out.test)
                all_exact = False
                continue
            if sp.kind == SIV:
                if ts is None:
                    out = self._siv_position(
                        sp, bound_by_var, direction, bounds, bump
                    )
                else:
                    t0 = perf_counter()
                    out = self._siv_position(
                        sp, bound_by_var, direction, bounds, bump
                    )
                    ts["siv"] = ts.get("siv", 0.0) + (perf_counter() - t0)
                if tier_used == "ziv":
                    tier_used = "siv"
                if out.result == INDEP:
                    return (False, False, tier_used, out.test)
                if out.result == MAYBE:
                    # Exact SIV could not decide; Banerjee refines by
                    # direction before giving up.
                    bump("banerjee")
                    tier_used = "banerjee"
                    ban = self._timed_banerjee_position(sp, bounds, direction)
                    if ban.result == INDEP:
                        return (False, False, tier_used, ban.test)
                    all_exact = False
                else:
                    if out.test.startswith("weak"):
                        # Weak tests prove a dependence exists for *some*
                        # direction; Banerjee prunes infeasible vectors.
                        # The *decision* (a dependence exists) came from
                        # the exact test, so the pair still counts as
                        # SIV-resolved in the tier statistics.
                        bump("banerjee")
                        ban = self._timed_banerjee_position(
                            sp, bounds, direction
                        )
                        if ban.result == INDEP:
                            return (False, False, tier_used, ban.test)
                    deciding_test = out.test
                    if not out.exact:
                        all_exact = False
            else:  # MIV
                bump("gcd")
                if tier_used in ("ziv", "siv"):
                    tier_used = "gcd"
                src_c, snk_c, diff = self._miv_parts(sp)
                if ts is None:
                    out = gcd_test(src_c, snk_c, diff)
                else:
                    t0 = perf_counter()
                    out = gcd_test(src_c, snk_c, diff)
                    ts["gcd"] = ts.get("gcd", 0.0) + (perf_counter() - t0)
                if out.result == INDEP:
                    return (False, False, tier_used, out.test)
                bump("banerjee")
                tier_used = "banerjee"
                if ts is None:
                    ban = banerjee_test(
                        src_c, snk_c, diff, bounds, direction, self.oracle
                    )
                else:
                    t0 = perf_counter()
                    ban = banerjee_test(
                        src_c, snk_c, diff, bounds, direction, self.oracle
                    )
                    ts["banerjee"] = (
                        ts.get("banerjee", 0.0) + (perf_counter() - t0)
                    )
                if ban.result == INDEP:
                    return (False, False, tier_used, ban.test)
                all_exact = False
        return (True, all_exact, tier_used, deciding_test or "assumed")

    def _timed_banerjee_position(
        self,
        sp: SubscriptPair,
        bounds: Sequence[LoopBound],
        direction: Tuple[str, ...],
    ) -> TestOutcome:
        ts = self.tier_seconds
        if ts is None:
            return self._banerjee_position(sp, bounds, direction)
        t0 = perf_counter()
        out = self._banerjee_position(sp, bounds, direction)
        ts["banerjee"] = ts.get("banerjee", 0.0) + (perf_counter() - t0)
        return out

    def _siv_position(
        self,
        sp: SubscriptPair,
        bound_by_var: Dict[str, LoopBound],
        direction: Tuple[str, ...],
        bounds: Sequence[LoopBound],
        bump,
    ) -> TestOutcome:
        var = sp.index_vars()[0]
        a1 = sp.src.coeffs.get(var, 0)
        a2 = sp.snk.coeffs.get(var, 0)
        diff = sp.src.rem - sp.snk.rem
        bound = bound_by_var.get(var, LoopBound(var))
        level = self._level_of(var, bounds)
        rel = direction[level] if level is not None and level < len(direction) else ANY

        bump("siv")
        if a1 == a2 and a1 != 0:
            out = strong_siv_test(a1, diff, bound, self.oracle)
            if out.result == DEP and out.distance is not None and level is not None:
                # The exact distance fixes the direction at this level:
                # distance d = i' − i, so d>0 ⇒ '<'.
                required = EQ if out.distance == 0 else (LT if out.distance > 0 else GT)
                if rel != ANY and rel != required:
                    return TestOutcome(INDEP, exact=True, test="strong-siv")
            return out
        if a1 != 0 and a2 == 0:
            return weak_zero_siv_test(a1, diff, bound, self.oracle)
        if a1 == 0 and a2 != 0:
            return weak_zero_siv_test(-a2, -diff, bound, self.oracle)
        if a1 == -a2 and a1 != 0:
            return weak_crossing_siv_test(a1, diff, bound, self.oracle)
        return TestOutcome(MAYBE, test="siv")

    def _banerjee_position(
        self,
        sp: SubscriptPair,
        bounds: Sequence[LoopBound],
        direction: Tuple[str, ...],
    ) -> TestOutcome:
        src_c, snk_c, diff = self._miv_parts(sp)
        return banerjee_test(src_c, snk_c, diff, bounds, direction, self.oracle)

    def _miv_parts(self, sp: SubscriptPair):
        return (sp.src.coeffs, sp.snk.coeffs, sp.src.rem - sp.snk.rem)

    def _range_overlap(
        self,
        sp: SubscriptPair,
        bounds: Sequence[LoopBound],
        direction: Tuple[str, ...],
    ) -> TestOutcome:
        """Disprove overlap of two (possibly degenerate) ranges.

        The ranges ``[slo, shi]`` and ``[tlo, thi]`` are disjoint when
        ``slo − thi > 0`` or ``tlo − shi > 0`` everywhere in the constrained
        iteration space; each difference is bounded with the Banerjee
        machinery.
        """

        if sp.kind == FULL:
            return TestOutcome(MAYBE, test="section-full")
        src_r, snk_r = sp.src_range, sp.snk_range
        assert src_r is not None and snk_r is not None

        def gap(lo_side: AffineSub, hi_side: AffineSub) -> bool:
            coeffs_lo = dict(lo_side.coeffs)
            coeffs_hi = dict(hi_side.coeffs)
            diff = lo_side.rem - hi_side.rem
            out = banerjee_test(
                coeffs_lo,
                coeffs_hi,
                diff - Linear.constant(0),
                bounds,
                direction,
                self.oracle,
            )
            # banerjee_test checks whether f can be 0; we need "f ≥ 1
            # always", i.e. min(f) > 0.  Reuse the interval directly.
            lo_v, hi_v = _banerjee_interval(
                coeffs_lo, coeffs_hi, diff, bounds, direction, self.oracle
            )
            del out
            return lo_v > 0

        if gap(src_r.lo, snk_r.hi) or gap(snk_r.lo, src_r.hi):
            return TestOutcome(INDEP, exact=False, test="section")
        return TestOutcome(MAYBE, test="section")

    def _refine_vector(
        self,
        pairs: List[SubscriptPair],
        bounds: Sequence[LoopBound],
        direction: Tuple[str, ...],
    ) -> Tuple[object, ...]:
        """Replace direction symbols with exact distances where known."""

        out: List[object] = list(direction)
        for k, bound in enumerate(bounds):
            if k >= len(out):
                break
            var = bound.var
            dist: Optional[int] = None
            consistent = True
            for sp in pairs:
                if sp.kind != SIV or sp.index_vars() != (var,):
                    continue
                a1 = sp.src.coeffs.get(var, 0)
                a2 = sp.snk.coeffs.get(var, 0)
                if a1 == a2 and a1 != 0:
                    value = (sp.src.rem - sp.snk.rem).constant_value()
                    if value is None:
                        consistent = False
                        continue
                    from fractions import Fraction

                    d = Fraction(value, a1)
                    if d.denominator != 1:
                        consistent = False
                        continue
                    if dist is None:
                        dist = int(d)
                    elif dist != int(d):
                        consistent = False
            if dist is not None and consistent:
                required = EQ if dist == 0 else (LT if dist > 0 else GT)
                if direction[k] == required:
                    out[k] = dist
        return tuple(out)

    def _level_of(self, var: str, bounds: Sequence[LoopBound]) -> Optional[int]:
        for k, b in enumerate(bounds):
            if b.var == var:
                return k
        return None


def _banerjee_interval(src_coeffs, snk_coeffs, diff, bounds, direction, oracle):
    """The raw [min, max] interval of the Banerjee bounding step."""

    from .tests import _term_bounds

    c_lo, c_hi = oracle.range_of(diff)
    lo_total, hi_total = c_lo, c_hi
    for k, bound in enumerate(bounds):
        a = src_coeffs.get(bound.var, 0)
        b = snk_coeffs.get(bound.var, 0)
        rel = direction[k] if k < len(direction) else ANY
        t_lo, t_hi = _term_bounds(a, b, bound, rel)
        lo_total += t_lo
        hi_total += t_hi
    return lo_total, hi_total
