"""Array reference collection for dependence testing.

For every DO loop we gather the :class:`ArrayAccess` records inside its
body: ordinary subscripted references from assignments/conditions, the
implicit accesses of I/O statements, and — when an interprocedural section
provider is available — *section accesses* summarising what a procedure
call reads/writes of each array actual.  Each access knows its enclosing
loop stack so the tester can determine the common nest of a pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    CallStmt,
    DoLoop,
    Expr,
    If,
    IOStmt,
    Num,
    ProcedureUnit,
    Stmt,
    VarRef,
    walk_expr,
)


@dataclass
class SectionDim:
    """One dimension of a summarised (call-site) array access.

    ``lo``/``hi`` are expressions in caller terms; a single-point dimension
    has ``lo is hi``.  ``full`` marks a dimension the callee may touch in
    its entirety (unknown bounds).
    """

    lo: Optional[Expr] = None
    hi: Optional[Expr] = None
    full: bool = False

    @property
    def is_point(self) -> bool:
        return not self.full and self.lo is not None and self.lo is self.hi


@dataclass
class ArrayAccess:
    """One array access relevant to dependence testing.

    ``subs`` holds the subscript expressions for an ordinary element
    reference; ``section`` holds per-dimension ranges for a call-site
    summary access (exactly one of the two is set).  ``nest`` is the stack
    of enclosing DO loops from outermost to innermost.
    """

    array: str
    sid: int
    stmt: Stmt
    is_write: bool
    nest: Tuple[DoLoop, ...]
    subs: Optional[List[Expr]] = None
    section: Optional[List[SectionDim]] = None
    line: int = 0
    #: Lazily computed canonical signature / constant-dimension caches
    #: (see :meth:`signature` and :meth:`const_dims`).  Never compared.
    _sig: Optional[Tuple[tuple, frozenset]] = field(
        default=None, repr=False, compare=False
    )
    _const_dims: Optional[Tuple[Tuple[int, int, int], ...]] = field(
        default=None, repr=False, compare=False
    )
    #: Lazily computed :meth:`point_rank` (-1 = not all-point).
    _points: Optional[int] = field(default=None, repr=False, compare=False)

    @property
    def is_section(self) -> bool:
        return self.section is not None

    def common_nest(self, other: "ArrayAccess") -> Tuple[DoLoop, ...]:
        common: List[DoLoop] = []
        for a, b in zip(self.nest, other.nest):
            if a is b:
                common.append(a)
            else:
                break
        return tuple(common)

    def signature(self) -> Tuple[tuple, frozenset]:
        """Canonical, hashable shape of this access plus the variable
        names it mentions.

        The shape spells out every subscript (or section bound) as
        printed source text, so two accesses with the same signature put
        *identical inputs* in front of the dependence tester; the name
        set over-approximates which constant-environment entries can
        influence the affine extraction.  Computed once per access.
        """

        if self._sig is None:
            names: List[str] = []

            def scan(expr: Expr) -> str:
                from ..fortran.printer import expr_to_str

                for node in walk_expr(expr):
                    if isinstance(node, VarRef):
                        names.append(node.name)
                    elif isinstance(node, ArrayRef):
                        names.append(node.name)
                return expr_to_str(expr)

            if self.subs is not None:
                shape: tuple = ("subs", tuple(scan(e) for e in self.subs))
            else:
                dims = []
                for d in self.section or []:
                    if d.full:
                        dims.append(("full",))
                    else:
                        dims.append(
                            (
                                "range",
                                scan(d.lo) if d.lo is not None else None,
                                scan(d.hi)
                                if d.hi is not None and d.hi is not d.lo
                                else "=lo",
                                d.is_point,
                            )
                        )
                shape = ("section", tuple(dims))
            self._sig = (shape, frozenset(names))
        return self._sig

    def const_dims(self) -> Tuple[Tuple[int, int, int], ...]:
        """Constant-range dimensions, for cheap disjointness pruning.

        Sparse: one ``(dim_index, lo, hi)`` triple per dimension that is
        a literal integer subscript (or a section dimension with literal
        integer bounds), ascending by index — most accesses have none,
        so the pruner's common case is a single truth test.  Computed
        once per access.
        """

        if self._const_dims is None:
            out: List[Tuple[int, int, int]] = []
            if self.subs is not None:
                for pos, e in enumerate(self.subs):
                    if isinstance(e, Num) and isinstance(e.value, int):
                        out.append((pos, e.value, e.value))
            else:
                for pos, d in enumerate(self.section or []):
                    lo = hi = None
                    if not d.full:
                        if isinstance(d.lo, Num) and isinstance(d.lo.value, int):
                            lo = d.lo.value
                        if isinstance(d.hi, Num) and isinstance(d.hi.value, int):
                            hi = d.hi.value
                    if lo is not None and hi is not None and lo <= hi:
                        out.append((pos, lo, hi))
            self._const_dims = tuple(out)
        return self._const_dims

    def point_rank(self) -> int:
        """Dimension count when every position is a single point.

        Element references and all-point sections have a rank (their
        dimension count); a full or true-range section dimension yields
        ``-1``.  Two accesses pair "classically" — without RANGE/FULL
        positions — iff both ranks are equal and ≥ 0.  Computed once.
        """

        rank = self._points
        if rank is None:
            if self.subs is not None:
                rank = len(self.subs)
            else:
                dims = self.section or []
                if all(not d.full and d.is_point for d in dims):
                    rank = len(dims)
                else:
                    rank = -1
            self._points = rank
        return rank


#: Provider turning a call statement into summary accesses.  Returns None
#: when no summary is available (the caller falls back to conservative
#: whole-array may-touch behaviour).
SectionProvider = Callable[[CallStmt, ProcedureUnit], Optional[List[ArrayAccess]]]


@dataclass
class LoopNest:
    """A DO loop with its nesting context inside a procedure."""

    loop: DoLoop
    depth: int  # 1-based nesting depth within the procedure
    parents: Tuple[DoLoop, ...]  # outer loops, outermost first

    @property
    def index_vars(self) -> Tuple[str, ...]:
        return tuple(p.var for p in self.parents) + (self.loop.var,)


def collect_loops(unit: ProcedureUnit) -> List[LoopNest]:
    """All DO loops of ``unit`` in lexical order with nesting info."""

    out: List[LoopNest] = []

    def visit(body: Sequence[Stmt], parents: Tuple[DoLoop, ...]) -> None:
        for st in body:
            if isinstance(st, DoLoop):
                out.append(LoopNest(st, len(parents) + 1, parents))
                visit(st.body, parents + (st,))
            elif isinstance(st, If):
                for _, arm in st.arms:
                    visit(arm, parents)

    visit(unit.body, ())
    return out


def _expr_accesses(
    expr: Expr,
    sid: int,
    stmt: Stmt,
    nest: Tuple[DoLoop, ...],
    is_write: bool,
) -> Iterator[ArrayAccess]:
    for node in walk_expr(expr):
        if isinstance(node, ArrayRef):
            yield ArrayAccess(
                node.name,
                sid,
                stmt,
                is_write,
                nest,
                subs=list(node.subs),
                line=node.line,
            )


def collect_refs(
    unit: ProcedureUnit,
    section_provider: Optional[SectionProvider] = None,
) -> List[ArrayAccess]:
    """Every array access in ``unit`` with its loop nest.

    Call statements contribute either precise section accesses (when the
    ``section_provider`` yields a summary) or conservative full-array
    read+write accesses for each array actual and each COMMON array.
    """

    out: List[ArrayAccess] = []
    table = unit.symtab

    def conservative_call(st: CallStmt, nest: Tuple[DoLoop, ...]) -> None:
        touched: List[str] = []
        for arg in st.args:
            if isinstance(arg, VarRef) and table is not None:
                sym = table.get(arg.name)  # type: ignore[union-attr]
                if sym is not None and sym.is_array:
                    touched.append(arg.name)
            elif isinstance(arg, ArrayRef):
                touched.append(arg.name)
        if table is not None:
            from ..fortran.symbols import COMMON

            for sym in table.symbols.values():  # type: ignore[union-attr]
                if sym.storage == COMMON and sym.is_array:
                    touched.append(sym.name)
        for name in touched:
            sym = table.get(name) if table is not None else None  # type: ignore[union-attr]
            rank = sym.rank if sym is not None and sym.is_array else 1
            dims = [SectionDim(full=True) for _ in range(rank)]
            for w in (False, True):
                out.append(
                    ArrayAccess(
                        name, st.sid, st, w, nest, section=list(dims), line=st.line
                    )
                )

    def visit(body: Sequence[Stmt], nest: Tuple[DoLoop, ...]) -> None:
        for st in body:
            if isinstance(st, Assign):
                if isinstance(st.target, ArrayRef):
                    out.append(
                        ArrayAccess(
                            st.target.name,
                            st.sid,
                            st,
                            True,
                            nest,
                            subs=list(st.target.subs),
                            line=st.line,
                        )
                    )
                    for sub in st.target.subs:
                        out.extend(_expr_accesses(sub, st.sid, st, nest, False))
                out.extend(_expr_accesses(st.expr, st.sid, st, nest, False))
            elif isinstance(st, DoLoop):
                for e in (st.start, st.end, st.step):
                    if e is not None:
                        out.extend(_expr_accesses(e, st.sid, st, nest, False))
                visit(st.body, nest + (st,))
            elif isinstance(st, If):
                for cond, arm in st.arms:
                    if cond is not None:
                        out.extend(_expr_accesses(cond, st.sid, st, nest, False))
                    visit(arm, nest)
            elif isinstance(st, CallStmt):
                for arg in st.args:
                    out.extend(_expr_accesses(arg, st.sid, st, nest, False))
                summary = (
                    section_provider(st, unit) if section_provider is not None else None
                )
                if summary is not None:
                    for acc in summary:
                        acc.sid = st.sid
                        acc.stmt = st
                        acc.nest = nest
                        out.append(acc)
                else:
                    conservative_call(st, nest)
            elif isinstance(st, IOStmt):
                for e in list(st.spec) + list(st.items):
                    write = st.kind == "read" and e in st.items
                    if isinstance(e, ArrayRef):
                        out.append(
                            ArrayAccess(
                                e.name,
                                st.sid,
                                st,
                                write,
                                nest,
                                subs=list(e.subs),
                                line=st.line,
                            )
                        )
                        for sub in e.subs:
                            out.extend(_expr_accesses(sub, st.sid, st, nest, False))
                    else:
                        out.extend(_expr_accesses(e, st.sid, st, nest, False))

    visit(unit.body, ())
    return out
