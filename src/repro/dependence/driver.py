"""The dependence-analysis driver: one procedure in, one annotated
dependence graph plus per-loop parallelization verdicts out.

This is the analysis engine behind the Ped session.  Its
:class:`AnalysisConfig` exposes exactly the levers the experiences paper
evaluates in Table 3:

* ``effects`` / ``section_provider`` — interprocedural MOD/REF and regular
  section analysis (without them every call kills precision);
* ``inherited_constants`` — interprocedural constants;
* ``oracle`` — symbolic analysis sharpened by user assertions;
* ``use_kill`` — scalar kill analysis → privatization;
* ``use_reductions`` / ``use_inductions`` — idiom recognition that
  discounts the corresponding recurrences.

Toggling these and watching which loops become parallelizable regenerates
the paper's analysis-contribution table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..analysis.cfg import CFG, build_cfg
from ..analysis.constants import ConstantMap, propagate_constants
from ..analysis.defuse import (
    ConservativeEffects,
    DefUse,
    SideEffects,
    compute_defuse,
)
from ..analysis.induction import InductionVar, auxiliary_inductions
from ..analysis.kill import PrivatizableScalar, privatizable_scalars
from ..analysis.reductions import Reduction, find_reductions
from ..analysis.symbolic import Linear, linear_of_expr
from ..fortran.ast_nodes import (
    DoLoop,
    GotoStmt,
    IOStmt,
    ProcedureUnit,
    ReturnStmt,
    Stmt,
    StopStmt,
    walk_statements,
)
from ..fortran.symbols import SymbolTable
from .control import control_dependences
from .graph import (
    ANTI,
    CONTROL,
    Dependence,
    DependenceGraph,
    FLOW,
    INPUT,
    OUTPUT,
    PENDING,
    PROVEN,
)
from .hierarchy import DependenceTester, PairResult, VectorResult
from .references import (
    ArrayAccess,
    LoopNest,
    SectionProvider,
    collect_loops,
    collect_refs,
)
from .tests import EQ, GT, LT, LoopBound, Oracle


@dataclass
class HotPathConfig:
    """Switches for the result-preserving hot-path optimizations.

    Both default on; the parity suite and the scaling bench flip them to
    compare the optimized pipeline against the reference pipeline —
    graph fingerprints must be byte-identical either way.
    """

    prune_pairs: bool = True
    memoize_pairs: bool = True
    #: Consult/populate the program-scoped shared pair memo (requires
    #: ``memoize_pairs``; a config must still supply one).
    share_pairs: bool = True
    #: Collect every surviving pair of a unit into one batch and run the
    #: test hierarchy tier-by-tier over it (:mod:`repro.dependence.batch`)
    #: instead of pair-at-a-time; results, counters and fingerprints are
    #: identical either way.
    batch_pairs: bool = True
    #: Record per-tier wall time in every tester (``--profile``); off by
    #: default because the timing calls sit inside the test hierarchy.
    profile_tiers: bool = False


#: Process-wide hot-path switches (monkeypatched by parity tests/benches).
HOT_PATH = HotPathConfig()


class UnitStatementIndex:
    """Single-pass statement index of one procedure.

    Built once per :func:`analyze_unit` and shared by every consumer that
    previously re-walked the AST — scalar dependence collection, per-loop
    verdicts, the GOTO-target check and the editor's loop-body queries.
    ``loop_body[sid]`` lists the statements strictly inside that DO loop
    in :func:`walk_statements` order; ``label_to_sid`` maps statement
    labels to the first statement carrying them (lexical order, exactly
    what the old per-GOTO walk returned).
    """

    def __init__(self, unit: ProcedureUnit) -> None:
        self.label_to_sid: Dict[int, int] = {}
        self.loop_body: Dict[int, List[Stmt]] = {}
        self._body_sids: Dict[int, Set[int]] = {}
        self._build(unit.body, [])

    def _build(self, body: Sequence[Stmt], active: List[int]) -> None:
        for st in body:
            for sid in active:
                self.loop_body[sid].append(st)
            if st.label is not None and st.label not in self.label_to_sid:
                self.label_to_sid[st.label] = st.sid
            if isinstance(st, DoLoop):
                self.loop_body[st.sid] = []
                active.append(st.sid)
                self._build(st.body, active)
                active.pop()
            else:
                for blk in st.blocks():
                    self._build(blk, active)

    def body_statements(self, loop: DoLoop) -> List[Stmt]:
        """Statements inside ``loop`` (header excluded), lexical order."""

        stmts = self.loop_body.get(loop.sid)
        if stmts is None:  # loop not part of the indexed unit
            return list(walk_statements(loop.body))
        return stmts

    def body_sids(self, loop: DoLoop) -> Set[int]:
        sids = self._body_sids.get(loop.sid)
        if sids is None:
            sids = {st.sid for st in self.body_statements(loop)}
            self._body_sids[loop.sid] = sids
        return sids


@dataclass
class AnalysisConfig:
    """Feature switches for the analysis engine (the Table 3 levers)."""

    effects: Optional[SideEffects] = None
    section_provider: Optional[SectionProvider] = None
    oracle: Optional[Oracle] = None
    inherited_constants: Optional[Mapping[str, object]] = None
    use_constants: bool = True
    use_kill: bool = True
    use_reductions: bool = True
    use_inductions: bool = True
    input_deps: bool = False
    control_deps: bool = True
    #: Optional interprocedural array-kill hook: callable(loop, unit) →
    #: set of array names privatizable in that loop (fully overwritten
    #: before any read, every iteration).
    privatizable_arrays_fn: Optional[object] = None
    #: Program-scoped :class:`SharedPairMemo`; verdicts proved in one
    #: unit replay in every other unit keyed on the same canonical form.
    shared_memo: Optional[object] = None

    def resolved_effects(self) -> SideEffects:
        return self.effects or ConservativeEffects()

    def resolved_oracle(self) -> Oracle:
        return self.oracle or Oracle()


@dataclass
class LoopInfo:
    """Per-loop analysis verdict."""

    nest: LoopNest
    carried: List[Dependence] = field(default_factory=list)
    privatizable: List[PrivatizableScalar] = field(default_factory=list)
    privatizable_arrays: Set[str] = field(default_factory=set)
    reductions: List[Reduction] = field(default_factory=list)
    inductions: List[InductionVar] = field(default_factory=list)
    obstacles: List[str] = field(default_factory=list)
    parallelizable: bool = False

    @property
    def loop(self) -> DoLoop:
        return self.nest.loop

    def blocking_deps(self) -> List[Dependence]:
        """Carried dependences still standing after idiom discounts."""

        return [
            d
            for d in self.carried
            if d.blocks_parallelization
            and not d.reason
            and d.var not in self.privatizable_arrays
        ]


@dataclass
class UnitAnalysis:
    """All analysis artifacts of one procedure."""

    unit: ProcedureUnit
    cfg: CFG
    defuse: DefUse
    constants: ConstantMap
    loops: List[LoopNest]
    graph: DependenceGraph
    loop_info: Dict[int, LoopInfo]
    tester: DependenceTester
    pair_results: List[PairResult] = field(default_factory=list)
    stmt_index: Optional[UnitStatementIndex] = None
    #: Shared-memo export (fresh entries + counter deltas) recorded by
    #: worker tasks for merge-back; nulled once the engine absorbs it.
    memo_export: Optional[Dict[str, object]] = None
    #: Wall seconds of the whole graph build (pair testing + scalar +
    #: control dependences) and of the array-pair testing stage alone —
    #: what ``bench_batch.py`` compares batched vs scalar.  Read with
    #: ``getattr(..., 0.0)``: unpickled pre-upgrade records lack them.
    build_seconds: float = 0.0
    pair_seconds: float = 0.0

    def info_for(self, loop: DoLoop) -> LoopInfo:
        return self.loop_info[loop.sid]

    def parallel_loops(self) -> List[LoopInfo]:
        return [li for li in self.loop_info.values() if li.parallelizable]

    def body_sids(self, loop: DoLoop) -> Set[int]:
        """Statement sids inside ``loop`` (cached via the unit index)."""

        return self._index().body_sids(loop)

    def body_statements(self, loop: DoLoop) -> List[Stmt]:
        """Statements inside ``loop`` (cached via the unit index)."""

        return self._index().body_statements(loop)

    def _index(self) -> UnitStatementIndex:
        if self.stmt_index is None:
            self.stmt_index = UnitStatementIndex(self.unit)
        return self.stmt_index

    def hotpath_stats(self) -> Dict[str, int]:
        """Pair-pruning and memoization counters of this unit's run."""

        return {
            "pairs_pruned": self.tester.pair_resolution.get("pruned", 0),
            "memo_hits": self.tester.memo_hits,
            "memo_misses": self.tester.memo_misses,
            "shared_hits": self.tester.shared_hits,
            "shared_misses": self.tester.shared_misses,
        }


def analyze_unit(
    unit: ProcedureUnit, config: Optional[AnalysisConfig] = None
) -> UnitAnalysis:
    """Run the full intraprocedural analysis pipeline on ``unit``."""

    config = config or AnalysisConfig()
    effects = config.resolved_effects()
    oracle = config.resolved_oracle()

    cfg = build_cfg(unit)
    defuse = compute_defuse(unit, cfg, effects)
    inherited = dict(config.inherited_constants or {})
    # User value assertions ("assert n == 64") act as inherited constants:
    # the paper's "partial evaluation" prong of the symbolics programme.
    asserted = getattr(oracle, "constants", None)
    if callable(asserted):
        for name, value in asserted().items():
            inherited.setdefault(name, value)
    constants = propagate_constants(
        unit, cfg, effects, inherited
    ) if config.use_constants else ConstantMap()
    loops = collect_loops(unit)
    table: SymbolTable = unit.symtab  # type: ignore[assignment]
    stmt_index = UnitStatementIndex(unit)

    # Idiom recognition once per loop, shared by the graph builder (edge
    # annotation) and the per-loop verdicts (reporting).
    reductions: Dict[int, List[Reduction]] = {}
    inductions: Dict[int, List[InductionVar]] = {}
    for nest in loops:
        loop = nest.loop
        reductions[loop.sid] = (
            find_reductions(loop, table, effects)
            if config.use_reductions
            else []
        )
        inductions[loop.sid] = (
            auxiliary_inductions(loop, table, effects)
            if config.use_inductions
            else []
        )

    graph = DependenceGraph()
    shared = (
        config.shared_memo
        if HOT_PATH.share_pairs and HOT_PATH.memoize_pairs
        else None
    )
    tester = DependenceTester(
        table,
        oracle,
        memoize=HOT_PATH.memoize_pairs,
        shared=shared,
        profile=HOT_PATH.profile_tiers,
    )
    builder = _GraphBuilder(
        unit,
        cfg,
        defuse,
        constants,
        loops,
        graph,
        tester,
        config,
        stmt_index,
        reductions,
        inductions,
    )
    build_t0 = perf_counter()
    pair_results = builder.build()
    build_seconds = perf_counter() - build_t0
    # The memos have done their job for this unit; drop the local one and
    # detach the shared one so cached/pickled UnitAnalysis objects stay
    # lean (hit/miss counters survive).
    tester.memo.clear()
    tester.shared = None

    loop_info: Dict[int, LoopInfo] = {}
    for nest in loops:
        loop_info[nest.loop.sid] = _loop_verdict(
            nest,
            unit,
            graph,
            defuse,
            config,
            effects,
            table,
            stmt_index,
            reductions[nest.loop.sid],
            inductions[nest.loop.sid],
        )

    return UnitAnalysis(
        unit,
        cfg,
        defuse,
        constants,
        loops,
        graph,
        loop_info,
        tester,
        pair_results,
        stmt_index,
        build_seconds=build_seconds,
        pair_seconds=builder.pair_seconds,
    )


# ---------------------------------------------------------------------------
# Graph construction
# ---------------------------------------------------------------------------


class _GraphBuilder:
    def __init__(
        self,
        unit,
        cfg,
        defuse,
        constants,
        loops,
        graph,
        tester,
        config,
        stmt_index: Optional[UnitStatementIndex] = None,
        reductions: Optional[Dict[int, List[Reduction]]] = None,
        inductions: Optional[Dict[int, List[InductionVar]]] = None,
    ):
        self.unit = unit
        self.cfg = cfg
        self.defuse = defuse
        self.constants = constants
        self.loops = loops
        self.graph = graph
        self.tester = tester
        self.config = config
        self.table: SymbolTable = unit.symtab
        self.effects = config.resolved_effects()
        self.oracle = config.resolved_oracle()
        self.stmt_index = stmt_index or UnitStatementIndex(unit)
        self._seen_scalar: Set[Tuple] = set()
        #: Wall seconds of the array-pair testing stage of :meth:`build`.
        self.pair_seconds = 0.0
        # Idioms per loop, used to annotate (not suppress) edges.  The
        # caller normally precomputes them (analyze_unit shares one
        # recognition pass with the loop verdicts); recompute only when
        # constructed standalone.
        self.reduction_vars: Dict[int, Set[str]] = {}
        self.induction_vars: Dict[int, Set[str]] = {}
        for nest in loops:
            loop = nest.loop
            if reductions is not None:
                self.reduction_vars[loop.sid] = {
                    r.var for r in reductions.get(loop.sid, [])
                }
            elif config.use_reductions:
                self.reduction_vars[loop.sid] = {
                    r.var for r in find_reductions(loop, self.table, self.effects)
                }
            else:
                self.reduction_vars[loop.sid] = set()
            if inductions is not None:
                self.induction_vars[loop.sid] = {
                    iv.name for iv in inductions.get(loop.sid, [])
                }
            elif config.use_inductions:
                self.induction_vars[loop.sid] = {
                    iv.name
                    for iv in auxiliary_inductions(loop, self.table, self.effects)
                }
            else:
                self.induction_vars[loop.sid] = set()

    # -- bounds ----------------------------------------------------------

    def loop_bound(self, loop: DoLoop) -> LoopBound:
        env = self.constants.linear_env(loop.sid)
        lo_lin = linear_of_expr(loop.start, self.table, env)
        hi_lin = linear_of_expr(loop.end, self.table, env)
        lo = _lin_to_float(lo_lin, self.oracle, want_low=True)
        hi = _lin_to_float(hi_lin, self.oracle, want_low=False)
        return LoopBound(loop.var, lo, hi)

    def bounds_for(self, nest: Sequence[DoLoop]) -> List[LoopBound]:
        return [self.loop_bound(loop) for loop in nest]

    # -- array dependences --------------------------------------------------

    def build(self) -> List[PairResult]:
        refs = collect_refs(self.unit, self.config.section_provider)
        by_array: Dict[str, List[ArrayAccess]] = {}
        for r in refs:
            by_array.setdefault(r.array, []).append(r)

        prune = HOT_PATH.prune_pairs
        pair_t0 = perf_counter()
        if HOT_PATH.batch_pairs:
            results = self._build_batched(by_array, prune)
        else:
            results = []
            for array, a, b in self._array_pairs(by_array):
                if prune and _prunable_pair(a, b):
                    results.append(self.tester.count_pruned(a, b))
                    continue
                results.append(self._test_and_add(array, a, b))
        self.pair_seconds = perf_counter() - pair_t0
        self._scalar_dependences()
        self._procedure_scalar_deps()
        if self.config.control_deps:
            for a, c in control_dependences(self.cfg):
                sa = self.cfg.stmts[a]
                sc = self.cfg.stmts[c]
                self.graph.add(
                    CONTROL,
                    "",
                    a,
                    c,
                    (),
                    0,
                    marking=PROVEN,
                    src_line=sa.line,
                    dst_line=sc.line,
                )
        return results

    def _array_pairs(
        self, by_array: Dict[str, List[ArrayAccess]]
    ) -> Iterator[Tuple[str, ArrayAccess, ArrayAccess]]:
        """Surviving (array, src, snk) pairs in canonical driver order."""

        for array, accs in sorted(by_array.items()):
            for i in range(len(accs)):
                for j in range(i, len(accs)):
                    a, b = accs[i], accs[j]
                    if not a.is_write and not b.is_write:
                        if not self.config.input_deps:
                            continue
                    if i == j:
                        # A single access only matters against itself when
                        # it can recur across iterations (write in a loop).
                        if not a.nest or not a.is_write:
                            continue
                    yield array, a, b

    def _build_batched(
        self, by_array: Dict[str, List[ArrayAccess]], prune: bool
    ) -> List[PairResult]:
        """Batched pair testing: derive per-nest/per-statement context
        once, resolve every surviving pair against the batch memo plan
        in the same pass, run the test hierarchy tier-by-tier over the
        misses (:func:`repro.dependence.batch.run_uncached`), then emit
        results and graph edges in the scalar pair order — edge ids,
        fingerprints, tier counters and memo accounting are identical
        to the pair-at-a-time path."""

        from .batch import BatchPair, run_uncached

        tester = self.tester
        count_pruned = tester.count_pruned
        memoize = tester.memoize
        shared = tester.shared
        if memoize:
            version = tester.oracle.version()
            if version != tester._memo_oracle_version:
                # Assertions changed under us (see test_pair): recompute
                # the shared-key context so lookups land in the new
                # fact-space.
                tester.memo.clear()
                tester._memo_oracle_version = version
                tester._shared_ctx = tester._compute_shared_ctx()
        # Pruned pairs resolve during collection (no edges, additive
        # counters); tested pairs leave a ``None`` hole that the batch
        # results fill afterwards, so ``results`` keeps scalar pair order.
        results: List[Optional[PairResult]] = []
        holes: List[int] = []
        # One row per tested pair: (a, b, slot, array, common, nest_sids)
        # where ``slot`` is the pair's plan outcome — a shared-memo value
        # tuple, or the :class:`BatchPair` computing its canonical key.
        rows: List[tuple] = []
        # Batch memo plan: interned key id-tuple → slot.  First
        # occurrence of a key probes the shared memo and (on a miss)
        # becomes a BatchPair; every later occurrence is a local memo
        # hit, exactly as the scalar sequential order would produce.
        plan_map: Dict[tuple, object] = {}
        uniques: List[BatchPair] = []
        memo_hits = 0
        # Nest context per (src-nest, snk-nest) identity: the common
        # prefix, its bounds (and their key tuple) and the nest vars are
        # all functions of the two nest tuples, derived once per batch.
        # Keyed by id() — the tuples are held alive by the cache value.
        ctx_cache: Dict[Tuple[int, int], tuple] = {}
        bounds_cache: Dict[Tuple[int, ...], tuple] = {}
        env_cache: Dict[int, Dict] = {}
        slice_cache: Dict[tuple, tuple] = {}
        # Value-interning of key components.  Every canonical-key part
        # (signature shape, bounds key, env slice) is mapped to one
        # representative object per batch, so the plan keys — tuples of
        # the representatives' ids — are equal exactly when the deep
        # canonical keys are, and the memo plan hashes four ints per
        # pair instead of the full nested key.  The driver's caches keep
        # every representative alive for the batch.
        shape_intern: Dict[tuple, tuple] = {}
        acc_cache: Dict[int, tuple] = {}
        bk_intern: Dict[tuple, tuple] = {}
        slice_intern: Dict[tuple, tuple] = {}
        # Inlined :meth:`_array_pairs` enumeration (same canonical order)
        # so per-source context — sid, env, signature, nest identity — is
        # derived once per source access rather than once per pair.
        input_deps = self.config.input_deps
        constants = self.constants
        for array, accs in sorted(by_array.items()):
            n_acc = len(accs)
            for i in range(n_acc):
                a = accs[i]
                a_write = a.is_write
                a_self_ok = a_write and a.nest
                a_ready = False
                if prune:
                    # Per-source pruner state, open-coding
                    # :func:`_prunable_pair` with a's half hoisted.
                    a_sid = a.sid
                    a_no_nest = not a.nest
                    ca = a._const_dims
                    if ca is None:
                        ca = a.const_dims()
                # Everything the batch needs for a pair (a, b) is a pure
                # function of a's context plus (b's signature, b's nest)
                # — so with ``a`` fixed, one dict probe replaces the full
                # derivation for every later ``b`` that repeats the
                # combination (stencil statements do, constantly).
                pair_cache: Dict[Tuple[int, int], tuple] = {}
                for j in range(i, n_acc):
                    b = accs[j]
                    if not a_write and not b.is_write and not input_deps:
                        continue
                    if j == i and not a_self_ok:
                        continue
                    if prune:
                        if a_no_nest and b.sid == a_sid:
                            results.append(count_pruned(a, b))
                            continue
                        if ca:
                            cb = b._const_dims
                            if cb is None:
                                cb = b.const_dims()
                            if cb and _const_disjoint(ca, cb):
                                results.append(count_pruned(a, b))
                                continue
                    if not a_ready:
                        a_ready = True
                        a_nid = id(a.nest)
                        sid = a.sid
                        env = env_cache.get(sid)
                        if env is None:
                            env = constants.linear_env(sid)
                            env_cache[sid] = env
                        a_info = acc_cache.get(id(a))
                        if a_info is None:
                            shape, names = a._sig or a.signature()
                            rep = shape_intern.get(shape)
                            if rep is None:
                                shape_intern[shape] = rep = shape
                            a_info = (rep, names)
                            acc_cache[id(a)] = a_info
                        src_shape, src_names = a_info
                    b_sig = b._sig
                    if b_sig is None:
                        b_sig = b.signature()
                    pc_key = (id(b_sig), id(b.nest))
                    rec = pair_cache.get(pc_key)
                    if rec is None:
                        ctx = ctx_cache.get((a_nid, id(b.nest)))
                        if ctx is None:
                            common = a.common_nest(b)
                            nest_sids = tuple(loop.sid for loop in common)
                            cached = bounds_cache.get(nest_sids)
                            if cached is None:
                                bounds = self.bounds_for(common)
                                bk = tuple(
                                    (x.var, x.lo, x.hi) for x in bounds
                                )
                                rep = bk_intern.get(bk)
                                if rep is None:
                                    bk_intern[bk] = rep = bk
                                cached = (
                                    bounds,
                                    [x.var for x in bounds],
                                    rep,
                                )
                                bounds_cache[nest_sids] = cached
                            ctx = (a.nest, b.nest, common, nest_sids) + cached
                            ctx_cache[(a_nid, id(b.nest))] = ctx
                        _, _, common, nest_sids, bounds, nest_vars, bounds_key = ctx
                        b_info = acc_cache.get(id(b))
                        if b_info is None:
                            shape, names = b_sig
                            rep = shape_intern.get(shape)
                            if rep is None:
                                shape_intern[shape] = rep = shape
                            b_info = (rep, names)
                            acc_cache[id(b)] = b_info
                        snk_shape, snk_names = b_info
                        if env:
                            slice_key = (sid, src_names, snk_names)
                            env_slice = slice_cache.get(slice_key)
                            if env_slice is None:
                                names = src_names | snk_names
                                env_slice = tuple(
                                    sorted(
                                        (n, env[n]) for n in names if n in env
                                    )
                                )
                                rep = slice_intern.get(env_slice)
                                if rep is None:
                                    slice_intern[env_slice] = rep = env_slice
                                slice_cache[slice_key] = env_slice = rep
                        else:
                            env_slice = ()
                        key = (src_shape, snk_shape, bounds_key, env_slice)
                        ikey = (
                            id(src_shape),
                            id(snk_shape),
                            id(bounds_key),
                            id(env_slice),
                        )
                        rec = (key, ikey, common, nest_sids, bounds, nest_vars)
                        pair_cache[pc_key] = rec
                    slot = plan_map.get(rec[1])
                    if slot is None:
                        if memoize:
                            shared_key = tester._shared_key(rec[0], a, b)
                            if shared_key is not None:
                                slot = shared.lookup(shared_key)
                            if slot is not None:
                                tester.shared_hits += 1
                            else:
                                if shared_key is not None:
                                    tester.shared_misses += 1
                                tester.memo_misses += 1
                                slot = BatchPair(
                                    a, b, rec[4], rec[5], env, shared_key
                                )
                                uniques.append(slot)
                        else:
                            slot = BatchPair(a, b, rec[4], rec[5], env, None)
                            uniques.append(slot)
                        plan_map[rec[1]] = slot
                    elif memoize:
                        memo_hits += 1
                    holes.append(len(results))
                    results.append(None)
                    rows.append((a, b, slot, array, rec[2], rec[3]))
        if memoize:
            tester.memo_hits += memo_hits
        run_uncached(tester, uniques)
        if memoize:
            # Stores stay in discovery order.  Within one batch a store
            # can never feed a later lookup — distinct plan keys imply
            # distinct shared keys — so storing after the sweeps is
            # order-equivalent to the scalar interleaving.
            for u in uniques:
                if u.shared_key is not None:
                    shared.store(u.shared_key, u.value)
        # Emission: first occurrence of each unique hands out the result
        # the sweeps built (its counters are already bumped); every other
        # pair replays its recorded value — multiplicity-applied counter
        # bumps afterwards, one reconstructed vectors list per distinct
        # value, matching DependenceTester._replay pair-at-a-time.
        add_edge = self._add_vector_edge
        rcache: Dict[int, list] = {}
        for row, pos in zip(rows, holes):
            a, b, slot, array, common, nest_sids = row
            if type(slot) is BatchPair:
                if not slot.emitted:
                    slot.emitted = True
                    result = slot.result
                    results[pos] = result
                    for vr in result.vectors:
                        add_edge(
                            array, a, b, vr.vector, vr.proven, vr.test,
                            common, nest_sids,
                        )
                    continue
                value = slot.value
            else:
                value = slot
            cached = rcache.get(id(value))
            if cached is None:
                independent, vec_t, resolved_by, tr_items, classic = value
                vecs = [VectorResult(v, e, p, t) for (v, e, p, t) in vec_t]
                cached = [
                    independent, vecs, resolved_by, dict(tr_items), classic,
                    tr_items, value, 0,
                ]
                rcache[id(value)] = cached
            cached[7] += 1
            results[pos] = PairResult(
                a, b, cached[0], cached[1], cached[2], cached[3], cached[4]
            )
            for vr in cached[1]:
                add_edge(
                    array, a, b, vr.vector, vr.proven, vr.test,
                    common, nest_sids,
                )
        if rcache:
            tier_counts = tester.tier_counts
            pair_resolution = tester.pair_resolution
            resolution_classic = tester.pair_resolution_classic
            for cached in rcache.values():
                mult = cached[7]
                for tier, cnt in cached[5]:
                    tier_counts[tier] = (
                        tier_counts.get(tier, 0) + cnt * mult
                    )
                tier = cached[2]
                pair_resolution[tier] = (
                    pair_resolution.get(tier, 0) + mult
                )
                if cached[4]:
                    resolution_classic[tier] = (
                        resolution_classic.get(tier, 0) + mult
                    )
        return results

    def _test_and_add(
        self, array: str, a: ArrayAccess, b: ArrayAccess
    ) -> PairResult:
        common = a.common_nest(b)
        bounds = self.bounds_for(common)
        env = self.constants.linear_env(a.sid)
        self.tester.env = env
        result = self.tester.test_pair(a, b, bounds)
        nest_sids = tuple(loop.sid for loop in common)
        for vr in result.vectors:
            self._add_vector_edge(array, a, b, vr.vector, vr.proven, vr.test, common, nest_sids)
        return result

    def _add_vector_edge(
        self,
        array: str,
        a: ArrayAccess,
        b: ArrayAccess,
        vector: Tuple[object, ...],
        proven: bool,
        test: str,
        common: Tuple[DoLoop, ...],
        nest_sids: Tuple[int, ...],
    ) -> None:
        level = _first_nonequal_level(vector)
        if level is None:
            # Loop-independent: direction = execution order inside the
            # iteration. Self-pairs (same statement) carry no information.
            if a.sid == b.sid:
                return
            src, snk = (a, b) if a.sid < b.sid else (b, a)
            vec = vector
        else:
            elem = vector[level - 1]
            backwards = (isinstance(elem, int) and elem < 0) or elem == GT
            if backwards:
                src, snk = b, a
                vec = _reverse_vector(vector)
            else:
                src, snk = a, b
                vec = vector
        kind = _dep_kind(src.is_write, snk.is_write)
        reason = ""  # arrays are never reduction/induction idioms here
        self.graph.add(
            kind,
            array,
            src.sid,
            snk.sid,
            vec,
            level or 0,
            marking=PROVEN if proven else PENDING,
            test=test,
            src_line=src.line or src.stmt.line,
            dst_line=snk.line or snk.stmt.line,
            reason=reason,
            nest_sids=nest_sids,
        )

    # -- scalar dependences ---------------------------------------------------

    def _scalar_dependences(self) -> None:
        from ..analysis.kill import killed_scalars

        for nest in self.loops:
            loop = nest.loop
            body_stmts = self.stmt_index.body_statements(loop)
            defs_by_var: Dict[str, List[Stmt]] = {}
            uses_by_var: Dict[str, List[Stmt]] = {}
            for st in body_stmts:
                # May-defs matter too: a CALL that may modify a scalar
                # creates (pending) cross-iteration dependences — the very
                # imprecision interprocedural MOD/REF analysis removes.
                for v in self.defuse.may_defs.get(st.sid, ()):
                    if not self.table.ensure(v).is_array:
                        defs_by_var.setdefault(v, []).append(st)
                for v in self.defuse.uses.get(st.sid, ()):  # uses
                    if not self.table.ensure(v).is_array:
                        uses_by_var.setdefault(v, []).append(st)
            killed = (
                killed_scalars(loop, self.table, self.effects)
                if self.config.use_kill
                else set()
            )
            nest_loops = nest.parents + (loop,)
            nest_sids = tuple(x.sid for x in nest_loops)
            level = len(nest_loops)  # carried at this loop's level
            for var, def_sites in sorted(defs_by_var.items()):
                if var == loop.var:
                    continue
                use_sites = uses_by_var.get(var, [])
                reason = ""
                if var in self.reduction_vars[loop.sid]:
                    reason = "reduction"
                elif var in self.induction_vars[loop.sid]:
                    reason = "induction"
                if var in killed and not reason:
                    # Same-iteration flow only; no carried dependence, but
                    # privatization is required before parallelization —
                    # recorded via LoopInfo.privatizable.
                    continue
                vec = tuple([EQ] * (level - 1) + [LT])
                for d in def_sites:
                    for u in use_sites:
                        self._add_scalar_edge(FLOW, var, d, u, vec, level, nest_sids, reason)
                    for d2 in def_sites:
                        if d2.sid >= d.sid:
                            self._add_scalar_edge(
                                OUTPUT, var, d, d2, vec, level, nest_sids, reason
                            )
                for u in use_sites:
                    for d in def_sites:
                        self._add_scalar_edge(ANTI, var, u, d, vec, level, nest_sids, reason)

    def _procedure_scalar_deps(self) -> None:
        """Loop-independent scalar dependences across the procedure.

        Flow edges come from def-use chains; anti and output edges from
        textual def ordering.  These never block parallelization (level 0)
        but they are what the dependence pane shows between straight-line
        statements, and what statement interchange / distribution must
        respect.  Very heavily used scalars are capped to keep the graph
        readable (the pane filters would drown anyway).
        """

        from ..analysis.cfg import ENTRY

        cap = 24
        defs_by_var: Dict[str, List[int]] = {}
        uses_by_var: Dict[str, List[int]] = {}
        for sid in self.cfg.stmts:
            for v in self.defuse.must_defs.get(sid, ()):  # must defs only
                if not self.table.ensure(v).is_array:
                    defs_by_var.setdefault(v, []).append(sid)
            for v in self.defuse.uses.get(sid, ()):  # uses
                if not self.table.ensure(v).is_array:
                    uses_by_var.setdefault(v, []).append(sid)
        for sid, chains in self.defuse.ud.items():
            for var, def_sites in chains.items():
                if self.table.ensure(var).is_array:
                    continue
                if len(defs_by_var.get(var, [])) + len(
                    uses_by_var.get(var, [])
                ) > cap:
                    continue
                for d in def_sites:
                    if d == ENTRY or d == sid:
                        continue
                    self._add_scalar_edge(
                        FLOW,
                        var,
                        self.cfg.stmts[d],
                        self.cfg.stmts[sid],
                        (),
                        0,
                        (),
                        "",
                    )
        for var, defs in defs_by_var.items():
            if len(defs) + len(uses_by_var.get(var, [])) > cap:
                continue
            for u_sid in uses_by_var.get(var, []):
                for d_sid in defs:
                    if d_sid > u_sid:
                        self._add_scalar_edge(
                            ANTI,
                            var,
                            self.cfg.stmts[u_sid],
                            self.cfg.stmts[d_sid],
                            (),
                            0,
                            (),
                            "",
                        )
            for d1 in defs:
                for d2 in defs:
                    if d2 > d1:
                        self._add_scalar_edge(
                            OUTPUT,
                            var,
                            self.cfg.stmts[d1],
                            self.cfg.stmts[d2],
                            (),
                            0,
                            (),
                            "",
                        )

    def _add_scalar_edge(self, kind, var, src, dst, vec, level, nest_sids, reason):
        key = (kind, var, src.sid, dst.sid, level)
        if key in self._seen_scalar:
            return
        self._seen_scalar.add(key)
        self.graph.add(
            kind,
            var,
            src.sid,
            dst.sid,
            vec,
            level,
            marking=PENDING,
            test="scalar",
            src_line=src.line,
            dst_line=dst.line,
            reason=reason,
            nest_sids=nest_sids,
        )


# ---------------------------------------------------------------------------
# Loop verdicts
# ---------------------------------------------------------------------------


def _loop_verdict(
    nest: LoopNest,
    unit: ProcedureUnit,
    graph: DependenceGraph,
    defuse: DefUse,
    config: AnalysisConfig,
    effects: SideEffects,
    table: SymbolTable,
    stmt_index: Optional[UnitStatementIndex] = None,
    reductions: Optional[List[Reduction]] = None,
    inductions: Optional[List[InductionVar]] = None,
) -> LoopInfo:
    loop = nest.loop
    index = stmt_index or UnitStatementIndex(unit)
    info = LoopInfo(nest)
    info.carried = graph.carried_by(loop)
    if config.use_kill:
        info.privatizable = privatizable_scalars(loop, unit, defuse, effects)
    if config.privatizable_arrays_fn is not None:
        candidates = set(
            config.privatizable_arrays_fn(loop, unit)  # type: ignore[operator]
        )
        # A privatized array that is live after the loop would need a
        # last-value copy-out; without one, permuting iterations changes
        # the final contents.  Only discount arrays dead on the loop's
        # *exit edge* (array element defs never kill in liveness, so the
        # header's merged live-out would wrongly include body uses).
        body_sids = index.body_sids(loop)
        live_after: Set[str] = set()
        for succ in defuse.cfg.succ.get(loop.sid, ()):
            if succ not in body_sids:
                live_after |= set(defuse.live_in.get(succ, frozenset()))
        info.privatizable_arrays = {
            v for v in candidates if v not in live_after
        }
    if config.use_reductions:
        info.reductions = (
            reductions
            if reductions is not None
            else find_reductions(loop, table, effects)
        )
    if config.use_inductions:
        info.inductions = (
            inductions
            if inductions is not None
            else auxiliary_inductions(loop, table, effects)
        )

    obstacles: List[str] = []
    blocking = [
        d
        for d in info.carried
        if d.blocks_parallelization
        and not d.reason
        and d.var not in info.privatizable_arrays
    ]
    for dep in blocking:
        status = "proven" if dep.marking == "proven" else dep.marking
        obstacles.append(
            f"loop-carried {dep.kind} dependence on {dep.var} "
            f"{dep.vector_str()} [{status}]"
        )

    for st in index.body_statements(loop):
        if isinstance(st, IOStmt):
            obstacles.append(f"I/O statement at line {st.line}")
        elif isinstance(st, (ReturnStmt, StopStmt)):
            obstacles.append(f"premature exit at line {st.line}")
        elif isinstance(st, GotoStmt):
            target_sid = index.label_to_sid.get(st.target)
            if target_sid is None or target_sid not in index.body_sids(loop):
                obstacles.append(f"branch out of loop at line {st.line}")

    info.obstacles = obstacles
    info.parallelizable = not obstacles
    return info


def _label_target(unit: ProcedureUnit, label: int) -> Optional[int]:
    for st in walk_statements(unit.body):
        if st.label == label:
            return st.sid
    return None


def _prunable_pair(a: ArrayAccess, b: ArrayAccess) -> bool:
    """Can this pair be rejected without running any dependence test?

    Two structurally-provable cases, both edge-free by construction:

    * same statement with no enclosing loops — only carried vectors ever
      become edges for a same-statement pair, and there are none;
    * a subscript position where both sides are literal integer
      constants (or constant section ranges) that do not overlap — the
      ZIV / section-overlap tier would disprove every direction vector.
    """

    if a.sid == b.sid and not a.nest:
        return True
    ca = a._const_dims
    if ca is None:
        ca = a.const_dims()
    if not ca:
        return False
    cb = b._const_dims
    if cb is None:
        cb = b.const_dims()
    return bool(cb) and _const_disjoint(ca, cb)


def _const_disjoint(
    ca: Tuple[Tuple[int, int, int], ...], cb: Tuple[Tuple[int, int, int], ...]
) -> bool:
    """Disjoint constant ranges at any shared subscript position.

    Both sides are sparse ``(dim, lo, hi)`` tuples, ascending by dim; a
    dimension only prunes when constant on both sides.
    """

    for pos, alo, ahi in ca:
        for pos2, blo, bhi in cb:
            if pos2 == pos:
                if alo > bhi or blo > ahi:
                    return True
                break
            if pos2 > pos:
                break
    return False


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _lin_to_float(lin: Linear, oracle: Oracle, want_low: bool) -> float:
    value = lin.constant_value()
    if value is not None:
        return float(value)
    lo, hi = oracle.range_of(lin)
    return lo if want_low else hi


def _first_nonequal_level(vector: Tuple[object, ...]) -> Optional[int]:
    for k, elem in enumerate(vector):
        if isinstance(elem, int):
            if elem != 0:
                return k + 1
        elif elem != EQ:
            return k + 1
    return None


def _reverse_vector(vector: Tuple[object, ...]) -> Tuple[object, ...]:
    out: List[object] = []
    for elem in vector:
        if isinstance(elem, int):
            out.append(-elem)
        elif elem == LT:
            out.append(GT)
        elif elem == GT:
            out.append(LT)
        else:
            out.append(elem)
    return tuple(out)


def _dep_kind(src_write: bool, snk_write: bool) -> str:
    if src_write and snk_write:
        return OUTPUT
    if src_write:
        return FLOW
    if snk_write:
        return ANTI
    return INPUT
