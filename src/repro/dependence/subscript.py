"""Subscript extraction and ZIV/SIV/MIV classification.

For a pair of accesses to the same array, each subscript position yields a
:class:`SubscriptPair` carrying both sides as affine forms over the common
loop index variables.  The classification drives the test hierarchy:

* ``ZIV``  — neither side mentions a common index variable;
* ``SIV``  — exactly one common index variable occurs (on either side);
* ``MIV``  — more than one index variable occurs;
* ``RANGE``/``FULL`` — one side is a call-site section dimension (a range
  of elements, or an unbounded whole-dimension touch).

Nonlinear subscripts (index arrays like ``a(ip(j))``, products of index
variables) cannot be put in affine form; they classify as ``NONLINEAR``
and force conservative MAYBE results unless a user assertion removes them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fortran.ast_nodes import Expr
from ..fortran.symbols import SymbolTable
from ..analysis.symbolic import Env, Linear, affine
from .references import ArrayAccess, SectionDim

ZIV = "ZIV"
SIV = "SIV"
MIV = "MIV"
RANGE = "RANGE"
FULL = "FULL"
NONLINEAR = "NONLINEAR"


@dataclass
class AffineSub:
    """One side of a subscript position in affine form."""

    coeffs: Dict[str, int]
    rem: Linear

    def vars_used(self) -> Tuple[str, ...]:
        return tuple(v for v, c in self.coeffs.items() if c != 0)


@dataclass
class RangeSub:
    """A section dimension: inclusive range [lo, hi], or full dimension."""

    lo: Optional[AffineSub]
    hi: Optional[AffineSub]
    full: bool = False


@dataclass
class SubscriptPair:
    """One subscript position of an access pair, classified for testing."""

    kind: str
    position: int
    src: Optional[AffineSub] = None
    snk: Optional[AffineSub] = None
    src_range: Optional[RangeSub] = None
    snk_range: Optional[RangeSub] = None

    def index_vars(self) -> Tuple[str, ...]:
        seen: List[str] = []
        for side in (self.src, self.snk):
            if side is not None:
                for v in side.vars_used():
                    if v not in seen:
                        seen.append(v)
        return tuple(seen)


def _affine_side(
    expr: Expr,
    index_vars: Sequence[str],
    table: Optional[SymbolTable],
    env: Optional[Env],
) -> Optional[AffineSub]:
    got = affine(expr, index_vars, table, env)
    if got is None:
        return None
    coeffs, rem = got
    return AffineSub(coeffs, rem)


def _range_side(
    dim: SectionDim,
    index_vars: Sequence[str],
    table: Optional[SymbolTable],
    env: Optional[Env],
) -> Optional[RangeSub]:
    if dim.full:
        return RangeSub(None, None, True)
    lo = _affine_side(dim.lo, index_vars, table, env) if dim.lo is not None else None
    hi = _affine_side(dim.hi, index_vars, table, env) if dim.hi is not None else None
    if lo is None or hi is None:
        return RangeSub(None, None, True)  # unanalyzable -> treat as full
    return RangeSub(lo, hi, False)


def pair_subscripts(
    src: ArrayAccess,
    snk: ArrayAccess,
    index_vars: Sequence[str],
    table: Optional[SymbolTable] = None,
    env: Optional[Env] = None,
    oracle=None,
) -> List[SubscriptPair]:
    """Build the classified :class:`SubscriptPair` list for an access pair.

    ``index_vars`` are the common-nest induction variables (outer to
    inner).  Ranks are padded with FULL dimensions when they disagree
    (e.g. a whole-array actual of different declared shape).  ``oracle``
    enables looking *through* asserted-injective index arrays:
    ``a(ip(i))`` vs ``a(ip(j))`` reduces to testing ``ip``'s arguments.
    """

    src_dims = _dims_of(src)
    snk_dims = _dims_of(snk)
    n = max(len(src_dims), len(snk_dims))
    pairs: List[SubscriptPair] = []
    for pos in range(n):
        s = src_dims[pos] if pos < len(src_dims) else None
        t = snk_dims[pos] if pos < len(snk_dims) else None
        s, t = _look_through_injective(s, t, oracle)
        pairs.append(classify_pair(pos, s, t, index_vars, table, env))
    return pairs


def _look_through_injective(src_dim, snk_dim, oracle):
    """Replace ``ip(e1)`` vs ``ip(e2)`` by ``e1`` vs ``e2`` when ``ip`` is
    asserted injective: distinct arguments then imply distinct values, so
    the element test on the arguments is exact."""

    if oracle is None or src_dim is None or snk_dim is None:
        return src_dim, snk_dim
    from ..fortran.ast_nodes import ArrayRef as _AR

    sk, sv = src_dim
    tk, tv = snk_dim
    if (
        sk == "expr"
        and tk == "expr"
        and isinstance(sv, _AR)
        and isinstance(tv, _AR)
        and sv.name == tv.name
        and len(sv.subs) == 1
        and len(tv.subs) == 1
        and oracle.injective(sv.name)
    ):
        return ("expr", sv.subs[0]), ("expr", tv.subs[0])
    return src_dim, snk_dim


def _dims_of(acc: ArrayAccess):
    if acc.subs is not None:
        return [("expr", e) for e in acc.subs]
    return [("dim", d) for d in (acc.section or [])]


def classify_pair(
    position: int,
    src_dim,
    snk_dim,
    index_vars: Sequence[str],
    table: Optional[SymbolTable],
    env: Optional[Env],
) -> SubscriptPair:
    """Classify one subscript position of an access pair."""

    if src_dim is None or snk_dim is None:
        return SubscriptPair(FULL, position)

    def build(dim):
        kind, payload = dim
        if kind == "expr":
            side = _affine_side(payload, index_vars, table, env)
            return ("point", side)
        d: SectionDim = payload
        if d.is_point:
            side = _affine_side(d.lo, index_vars, table, env)
            return ("point", side)
        return ("range", _range_side(d, index_vars, table, env))

    src_kind, src_val = build(src_dim)
    snk_kind, snk_val = build(snk_dim)

    if src_kind == "point" and snk_kind == "point":
        if src_val is None or snk_val is None:
            return SubscriptPair(NONLINEAR, position)
        pair = SubscriptPair(ZIV, position, src=src_val, snk=snk_val)
        nvars = len(pair.index_vars())
        if nvars == 1:
            pair.kind = SIV
        elif nvars > 1:
            pair.kind = MIV
        return pair

    # At least one range side.
    def as_range(kind, val) -> RangeSub:
        if kind == "range":
            return val
        if val is None:
            return RangeSub(None, None, True)
        return RangeSub(val, val, False)

    src_r = as_range(src_kind, src_val)
    snk_r = as_range(snk_kind, snk_val)
    if src_r.full or snk_r.full:
        return SubscriptPair(FULL, position, src_range=src_r, snk_range=snk_r)
    return SubscriptPair(RANGE, position, src_range=src_r, snk_range=snk_r)
