"""Dependence analysis: reference collection, the hierarchical test suite,
direction/distance vectors, and the statement-level dependence graph."""

from .references import ArrayAccess, LoopNest, collect_loops, collect_refs  # noqa: F401
from .subscript import SubscriptPair, classify_pair, pair_subscripts  # noqa: F401
from .tests import (  # noqa: F401
    DEP,
    INDEP,
    MAYBE,
    TestOutcome,
    banerjee_test,
    gcd_test,
    strong_siv_test,
    weak_crossing_siv_test,
    weak_zero_siv_test,
    ziv_test,
)
from .hierarchy import DependenceTester, PairResult, SharedPairMemo  # noqa: F401
from .graph import (  # noqa: F401
    ANTI,
    CONTROL,
    Dependence,
    DependenceGraph,
    FLOW,
    INPUT,
    OUTPUT,
)
from .control import control_dependences  # noqa: F401
from .driver import LoopInfo, UnitAnalysis, analyze_unit, AnalysisConfig  # noqa: F401
