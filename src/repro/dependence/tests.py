"""The hierarchical suite of dependence tests.

"A hierarchical suite of tests is used, starting with inexpensive tests,
to prove or disprove that a dependence exists" (Goff–Kennedy–Tseng,
*Practical dependence testing*).  This module implements the individual
tests; :mod:`repro.dependence.hierarchy` sequences them.

Each test examines one subscript position of an access pair under a
direction-vector constraint and returns a :class:`TestOutcome`:

* ``INDEP``  — dependence disproved (for this position ⇒ for the pair);
* ``DEP``    — dependence proved by an exact test, possibly with a known
  distance at the tested level;
* ``MAYBE``  — the test cannot decide; the pair stays *pending* unless a
  later (more expensive) test or a user assertion resolves it.

Symbolic terms are carried as :class:`Linear` remainders; an optional
*oracle* (the assertion engine) answers sign/range queries about symbolic
differences, which is how user assertions sharpen the tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Optional, Sequence, Tuple

from ..analysis.symbolic import Linear

DEP = "dep"
INDEP = "indep"
MAYBE = "maybe"

#: Direction symbols.  '<' means the source iteration precedes the sink
#: iteration at that level, '=' equal, '>' follows, '*' unconstrained.
LT, EQ, GT, ANY = "<", "=", ">", "*"

INF = math.inf
NEG_INF = -math.inf


@dataclass
class TestOutcome:
    """Result of one dependence test at one subscript position."""

    result: str  # DEP | INDEP | MAYBE
    distance: Optional[int] = None  # iteration distance when exactly known
    exact: bool = False  # produced by an exact test
    test: str = ""  # which test decided (for the pane and the benches)


class Oracle:
    """Interface for symbolic fact queries (backed by user assertions).

    ``nonzero(lin)``: can ``lin`` be proved ≠ 0 for all runtime values?
    ``range_of(lin)``: best known inclusive integer bounds (may be ±inf).
    """

    def nonzero(self, lin: Linear) -> bool:
        return False

    def range_of(self, lin: Linear) -> Tuple[float, float]:
        if lin.is_constant:
            value = float(lin.const)
            return (value, value)
        return (NEG_INF, INF)

    def injective(self, name: str) -> bool:
        """Was array ``name`` asserted to hold pairwise-distinct values?"""

        return False

    def version(self) -> int:
        """Mutation counter consulted by pair-test memoization.

        Memoized verdicts are only replayed while the oracle's version is
        unchanged; mutable oracles (the assertion database) bump this on
        every fact change.  Immutable oracles stay at 0.
        """

        return 0

    def digest(self) -> Optional[tuple]:
        """Hashable summary of every fact this oracle can contribute.

        Two oracles with equal digests must answer every ``nonzero`` /
        ``range_of`` / ``injective`` query identically — that is the
        contract the program-scoped shared pair memo keys on, so that
        verdicts proved in one unit (or session) can be replayed in
        another.  ``None`` opts out of sharing entirely; the base class
        returns a digest only for exact :class:`Oracle` instances, since
        an unknown subclass may answer queries we cannot summarize.
        """

        if type(self) is Oracle:
            return ("oracle",)
        return None


_DEFAULT_ORACLE = Oracle()


@dataclass
class LoopBound:
    """Known integer bounds of one loop's index variable (or ±inf)."""

    var: str
    lo: float = NEG_INF
    hi: float = INF

    @property
    def trip(self) -> float:
        if self.lo == NEG_INF or self.hi == INF:
            return INF
        return max(0.0, self.hi - self.lo + 1)


# ---------------------------------------------------------------------------
# ZIV
# ---------------------------------------------------------------------------


def ziv_test(diff: Linear, oracle: Optional[Oracle] = None) -> TestOutcome:
    """Zero-index-variable test on ``diff = src_sub − snk_sub``.

    Constant nonzero difference ⇒ independent; zero ⇒ the references
    always collide (dependence with distance 0 in every common loop).
    Symbolic differences consult the oracle.
    """

    oracle = oracle or _DEFAULT_ORACLE
    value = diff.constant_value()
    if value is not None:
        if value != 0:
            return TestOutcome(INDEP, exact=True, test="ziv")
        return TestOutcome(DEP, distance=0, exact=True, test="ziv")
    if oracle.nonzero(diff):
        return TestOutcome(INDEP, exact=True, test="ziv-assert")
    lo, hi = oracle.range_of(diff)
    if lo > 0 or hi < 0:
        return TestOutcome(INDEP, exact=True, test="ziv-assert")
    return TestOutcome(MAYBE, test="ziv")


# ---------------------------------------------------------------------------
# SIV family
# ---------------------------------------------------------------------------


def strong_siv_test(
    a: int,
    diff: Linear,
    bound: LoopBound,
    oracle: Optional[Oracle] = None,
) -> TestOutcome:
    """Strong SIV: ``a·i + c1`` vs ``a·i' + c2`` with equal coefficient.

    The dependence equation gives the *distance* ``d = i' − i =
    (c1 − c2)/a`` where ``diff = c1 − c2``.  Non-integer distance ⇒
    independent; integer distance beyond the trip count ⇒ independent;
    otherwise a proven dependence with exactly that distance.
    """

    oracle = oracle or _DEFAULT_ORACLE
    value = diff.constant_value()
    if value is None:
        if oracle.nonzero(diff):
            # Nonzero symbolic difference: distance unknown but never 0 —
            # still a possible dependence at some distance, so MAYBE unless
            # the range excludes multiples of a within the trip count.
            lo, hi = oracle.range_of(diff)
            if _range_excludes_feasible_distance(lo, hi, a, bound):
                return TestOutcome(INDEP, exact=True, test="strong-siv-assert")
            return TestOutcome(MAYBE, test="strong-siv")
        lo, hi = oracle.range_of(diff)
        if _range_excludes_feasible_distance(lo, hi, a, bound):
            return TestOutcome(INDEP, exact=True, test="strong-siv-assert")
        return TestOutcome(MAYBE, test="strong-siv")
    d = Fraction(value, a)
    if d.denominator != 1:
        return TestOutcome(INDEP, exact=True, test="strong-siv")
    dist = int(d)
    if bound.trip is not INF and abs(dist) >= bound.trip:
        return TestOutcome(INDEP, exact=True, test="strong-siv")
    return TestOutcome(DEP, distance=dist, exact=True, test="strong-siv")


def _range_excludes_feasible_distance(
    lo: float, hi: float, a: int, bound: LoopBound
) -> bool:
    """True when every integer in [lo, hi] maps to an infeasible distance."""

    if lo == NEG_INF or hi == INF:
        return False
    trip = bound.trip
    if trip is INF:
        # Distances of any magnitude are feasible; only an empty multiple-
        # free interval disproves. Check that no multiple of a lies within.
        first = math.ceil(lo / a) * a
        return not (lo <= first <= hi)
    for value in range(math.ceil(lo), math.floor(hi) + 1):
        if value % a == 0 and abs(value // a) < trip:
            return False
    return True


def weak_zero_siv_test(
    a: int,
    diff: Linear,
    bound: LoopBound,
    oracle: Optional[Oracle] = None,
) -> TestOutcome:
    """Weak-zero SIV: ``a·i + c1`` vs ``c2`` (sink coefficient zero).

    Solves ``i = (c2 − c1)/a = −diff/a``; dependence exists only when that
    single iteration is integral and within the loop bounds.
    """

    oracle = oracle or _DEFAULT_ORACLE
    value = diff.constant_value()
    if value is None:
        if oracle.nonzero(diff):
            return TestOutcome(MAYBE, test="weak-zero-siv")
        return TestOutcome(MAYBE, test="weak-zero-siv")
    i = Fraction(-value, a)
    if i.denominator != 1:
        return TestOutcome(INDEP, exact=True, test="weak-zero-siv")
    iv = int(i)
    if bound.lo != NEG_INF and iv < bound.lo:
        return TestOutcome(INDEP, exact=True, test="weak-zero-siv")
    if bound.hi != INF and iv > bound.hi:
        return TestOutcome(INDEP, exact=True, test="weak-zero-siv")
    return TestOutcome(DEP, exact=True, test="weak-zero-siv")


def weak_crossing_siv_test(
    a: int,
    diff: Linear,
    bound: LoopBound,
    oracle: Optional[Oracle] = None,
) -> TestOutcome:
    """Weak-crossing SIV: ``a·i + c1`` vs ``−a·i' + c2``.

    Dependences cross at ``i + i' = (c2 − c1)/a``; a dependence exists only
    when that sum is integral and within ``[2·lo, 2·hi]``.
    """

    oracle = oracle or _DEFAULT_ORACLE
    value = diff.constant_value()
    if value is None:
        return TestOutcome(MAYBE, test="weak-crossing-siv")
    total = Fraction(-value, a)
    if total.denominator != 1:
        return TestOutcome(INDEP, exact=True, test="weak-crossing-siv")
    tv = int(total)
    if bound.lo != NEG_INF and tv < 2 * bound.lo:
        return TestOutcome(INDEP, exact=True, test="weak-crossing-siv")
    if bound.hi != INF and tv > 2 * bound.hi:
        return TestOutcome(INDEP, exact=True, test="weak-crossing-siv")
    return TestOutcome(DEP, exact=True, test="weak-crossing-siv")


# ---------------------------------------------------------------------------
# MIV tests
# ---------------------------------------------------------------------------


def gcd_test(
    src_coeffs: Dict[str, int],
    snk_coeffs: Dict[str, int],
    diff: Linear,
) -> TestOutcome:
    """GCD test: a solution of ``Σaᵢ·i − Σbⱼ·i' = c2 − c1`` requires
    gcd(all coefficients) to divide the constant difference."""

    value = diff.constant_value()
    if value is None or value.denominator != 1:
        return TestOutcome(MAYBE, test="gcd")
    coeffs = [abs(c) for c in src_coeffs.values() if c] + [
        abs(c) for c in snk_coeffs.values() if c
    ]
    if not coeffs:
        return TestOutcome(MAYBE, test="gcd")
    g = 0
    for c in coeffs:
        g = math.gcd(g, c)
    if g and int(value) % g != 0:
        return TestOutcome(INDEP, exact=True, test="gcd")
    return TestOutcome(MAYBE, test="gcd")


def banerjee_test(
    src_coeffs: Dict[str, int],
    snk_coeffs: Dict[str, int],
    diff: Linear,
    bounds: Sequence[LoopBound],
    direction: Sequence[str],
    oracle: Optional[Oracle] = None,
) -> TestOutcome:
    """Banerjee inequality under a direction vector.

    Bounds ``f = Σ aₖ·iₖ − Σ bₖ·i'ₖ + (c1 − c2)`` over the iteration space
    restricted by ``direction``; if 0 lies outside [min, max] the
    dependence is disproved for that direction.  Symbolic constant parts
    widen the interval using the oracle's range.
    """

    oracle = oracle or _DEFAULT_ORACLE
    c_lo, c_hi = oracle.range_of(diff)
    lo_total = c_lo
    hi_total = c_hi
    for k, bound in enumerate(bounds):
        a = src_coeffs.get(bound.var, 0)
        b = snk_coeffs.get(bound.var, 0)
        rel = direction[k] if k < len(direction) else ANY
        t_lo, t_hi = _term_bounds(a, b, bound, rel)
        lo_total += t_lo
        hi_total += t_hi
        if math.isnan(lo_total) or math.isnan(hi_total):
            return TestOutcome(MAYBE, test="banerjee")
    if lo_total > 0 or hi_total < 0:
        return TestOutcome(INDEP, exact=False, test="banerjee")
    return TestOutcome(MAYBE, test="banerjee")


def _term_bounds(a: int, b: int, bound: LoopBound, rel: str) -> Tuple[float, float]:
    """Bounds of ``a·i − b·i'`` for ``i, i' ∈ [L, U]`` with ``i rel i'``."""

    L, U = bound.lo, bound.hi
    if a == 0 and b == 0:
        return (0.0, 0.0)
    if rel == EQ:
        return _linear_bounds(a - b, L, U)
    if rel == ANY:
        lo1, hi1 = _linear_bounds(a, L, U)
        lo2, hi2 = _linear_bounds(-b, L, U)
        return (lo1 + lo2, hi1 + hi2)
    # i < i'  ⇔  i' = i + d with d ≥ 1 (and i ≤ U − 1).
    if rel == LT:
        return _shifted_bounds(a, b, L, U)
    # i > i'  ⇔  i = i' + d, d ≥ 1: symmetric with roles swapped & negated.
    lo, hi = _shifted_bounds(b, a, L, U)
    return (-hi, -lo)


def _linear_bounds(c: int, L: float, U: float) -> Tuple[float, float]:
    if c == 0:
        return (0.0, 0.0)
    lo = c * L if c > 0 else c * U
    hi = c * U if c > 0 else c * L
    # inf * 0 never occurs (c != 0); inf propagates correctly.
    return (lo, hi)


def _shifted_bounds(a: int, b: int, L: float, U: float) -> Tuple[float, float]:
    """Bounds of ``a·i − b·i'`` with ``i' = i + d``, ``d ∈ [1, U − i]``,
    ``i ∈ [L, U − 1]``: evaluates the linear form on the triangle's corners.
    """

    if L == NEG_INF or U == INF:
        # Unbounded region: only the d-coefficient structure can help.
        # f = (a − b)·i − b·d.  With unbounded i the form is unbounded
        # unless a == b; then f = −b·d with d ∈ [1, ∞).
        if a == b:
            if b == 0:
                return (0.0, 0.0)
            if b > 0:
                return (NEG_INF, -b)  # d ≥ 1 ⇒ f ≤ −b
            return (-b, INF)
        return (NEG_INF, INF)
    if U - 1 < L:
        # No feasible (i, i') with i < i': empty region disproves the
        # direction entirely; signal with an empty interval.
        return (INF, NEG_INF)
    corners = [
        (L, 1),
        (U - 1, 1),
        (L, U - L),
    ]
    values = [a * i - b * (i + d) for (i, d) in corners]
    return (min(values), max(values))
