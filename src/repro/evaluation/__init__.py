"""Evaluation harness: regenerates every table and figure of the paper."""

from .tables import (  # noqa: F401
    Table1Row,
    Table2Row,
    Table3Row,
    format_table,
    table1_suite,
    table2_transformations,
    table3_analysis,
)
from .figures import figure1_window, figure2_worked_examples  # noqa: F401
from .speedup import speedup_table  # noqa: F401
from .hierarchy_stats import dependence_test_stats  # noqa: F401
