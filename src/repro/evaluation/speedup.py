"""Experiment S1: simulated speedups of the parallelized suite.

For every suite program: replay its Ped session, then simulate execution
of the transformed program at several processor counts.  The shapes that
must reproduce the paper's discussion:

* parallelized programs speed up with processors, flattening from
  fork/join overhead and serial residue (Amdahl);
* *inner-loop* (fine-grain) parallelism is markedly worse than
  outer-loop parallelism at equal correctness — the granularity story
  told with spec77/gloop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..editor.commands import CommandInterpreter
from ..editor.session import PedSession
from ..fortran.ast_nodes import DoLoop, walk_statements
from ..fortran.symbols import parse_and_bind
from ..perf.machine import MachineModel
from ..perf.simulate import simulate_speedup
from ..workloads.suite import SUITE


@dataclass
class SpeedupRow:
    name: str
    speedups: List[Tuple[int, float]]  # (procs, speedup)


def speedup_table(
    names: Optional[Sequence[str]] = None,
    procs: Sequence[int] = (1, 2, 4, 8),
    machine: Optional[MachineModel] = None,
) -> List[SpeedupRow]:
    """Simulated speedups of each program after its Ped session."""

    rows: List[SpeedupRow] = []
    for name in names or SUITE:
        prog = SUITE[name]
        session = PedSession(prog.source)
        ci = CommandInterpreter(session)
        ci.run_script(prog.script)
        speedups = []
        for p in procs:
            result = simulate_speedup(session.sf, p, machine)
            speedups.append((p, result.speedup))
        rows.append(SpeedupRow(name, speedups))
    return rows


def granularity_comparison(
    procs: int = 8, machine: Optional[MachineModel] = None
) -> Dict[str, float]:
    """The gloop granularity experiment: outer- vs inner-loop parallelism.

    Parallelizing the *column loop* in gloop (outer, interprocedural —
    what sections analysis enables) is compared against parallelizing the
    *inner loops inside each callee* (what a naive tool without
    interprocedural analysis would offer).  Returns the two speedups; the
    outer version must win by a wide margin.
    """

    prog = SUITE["spec77"]

    # Outer: the Ped session (parallel gloop column loop).
    session = PedSession(prog.source)
    ci = CommandInterpreter(session)
    ci.run_script(prog.script)
    outer = simulate_speedup(session.sf, procs, machine).speedup

    # Inner: parallelize every loop inside the column routines instead.
    sf = parse_and_bind(prog.source)
    for unit in sf.units:
        if unit.name in ("spec77", "gloop"):
            continue
        for st in walk_statements(unit.body):
            if isinstance(st, DoLoop):
                st.parallel = True
    inner = simulate_speedup(sf, procs, machine).speedup
    return {"outer": outer, "inner": inner}
