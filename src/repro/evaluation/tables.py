"""Tables 1–3 of the experiences paper, regenerated over the synthetic
suite.

* **Table 1** — the program suite: name, domain, contributor, lines,
  procedures.
* **Table 2** — what it took to parallelize each program: the user
  actions and transformations its scripted Ped session performed, and the
  loops parallelized with Ped versus with the naive automatic baseline
  (dependence testing alone, no interaction).
* **Table 3** — analysis contribution: for each program, which analysis
  capabilities are *required* for its key loops (turning the feature off
  makes a key loop serial) — the reproduction of "the importance of
  existing analysis and the need for additional analysis".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..editor.commands import CommandInterpreter
from ..editor.session import PedSession
from ..fortran.symbols import parse_and_bind
from ..interproc.program import FeatureSet, analyze_program
from ..workloads.suite import SUITE

#: Table 3 columns, in paper order: the levers under evaluation.
TABLE3_FEATURES = [
    "modref",
    "sections",
    "ip_constants",
    "scalar_kill",
    "array_kill",
    "reductions",
]


@dataclass
class Table1Row:
    name: str
    domain: str
    contributor: str
    lines: int
    procedures: int


def table1_suite() -> List[Table1Row]:
    """Regenerate Table 1 (the program suite)."""

    rows = []
    for prog in SUITE.values():
        rows.append(
            Table1Row(
                prog.name, prog.domain, prog.contributor, prog.lines, prog.procedures
            )
        )
    return rows


@dataclass
class Table2Row:
    name: str
    actions: List[str]  # user actions / transformations from the session
    auto_parallel: int  # loops parallelizable with the naive baseline
    ped_parallel: int  # loops parallelizable after the Ped session
    total_loops: int


_ACTION_COMMANDS = {
    "apply": lambda rest: rest.split()[0],
    "assert": lambda rest: "assertion",
    "mark": lambda rest: "dependence marking",
    "classify": lambda rest: "reclassification",
}


def _session_actions(script: Sequence[str]) -> List[str]:
    actions: List[str] = []
    for line in script:
        parts = line.split(None, 1)
        if not parts:
            continue
        fn = _ACTION_COMMANDS.get(parts[0])
        if fn is not None:
            action = fn(parts[1] if len(parts) > 1 else "")
            if action not in actions:
                actions.append(action)
    return actions


def table2_transformations(names: Optional[Sequence[str]] = None) -> List[Table2Row]:
    """Regenerate Table 2 (user actions and parallelization outcomes)."""

    rows = []
    for name in names or SUITE:
        prog = SUITE[name]
        sf = parse_and_bind(prog.source)
        baseline = analyze_program(sf, FeatureSet.minimal())
        auto = baseline.parallel_loop_count()
        total = baseline.loop_count()
        session = PedSession(prog.source)
        ci = CommandInterpreter(session)
        ci.run_script(prog.script)
        ped = sum(
            len(ua.parallel_loops()) for ua in session.analysis.units.values()
        )
        rows.append(
            Table2Row(name, _session_actions(prog.script), auto, ped, total)
        )
    return rows


@dataclass
class Table3Row:
    name: str
    required: Dict[str, bool]  # feature -> required for the key loops
    needs_assertion: bool
    expected: Dict[str, bool]  # the paper-derived expectation (from needs)


def _key_loops_parallel(prog, features: FeatureSet) -> bool:
    """Are all the program's target loops parallelizable under features?

    Assertions from the program's script are replayed when the feature
    set leaves them meaningful (they are user input, not analysis)."""

    session = PedSession(prog.source, features=features)
    ci = CommandInterpreter(session)
    for line in prog.script:
        if line.startswith(("assert ", "classify ", "mark ", "unit ", "select ")):
            ci.execute(line)
    for unit, idx in prog.target_loops:
        ua = session.analysis.unit(unit)
        if idx >= len(ua.loops):
            return False
        info = ua.info_for(ua.loops[idx].loop)
        if not info.parallelizable:
            return False
    return True


def table3_analysis(names: Optional[Sequence[str]] = None) -> List[Table3Row]:
    """Regenerate Table 3: which analyses each program *requires*.

    A feature is required when disabling it (from the full configuration)
    makes some key loop serial.  Assertion dependence is measured by
    replaying the session without its ``assert`` commands.
    """

    rows = []
    for name in names or SUITE:
        prog = SUITE[name]
        full = FeatureSet()
        required: Dict[str, bool] = {}
        for feature in TABLE3_FEATURES:
            toggled = full.with_feature(feature, False)
            required[feature] = not _key_loops_parallel(prog, toggled)
        # Assertion need: full features but *no* assert commands.
        needs_assertion = not _all_parallel_without_asserts(prog)
        expected = {f: prog.needs.get(f, False) for f in TABLE3_FEATURES}
        rows.append(Table3Row(name, required, needs_assertion, expected))
    return rows


def _all_parallel_without_asserts(prog) -> bool:
    session = PedSession(prog.source)
    for unit, idx in prog.target_loops:
        ua = session.analysis.unit(unit)
        info = ua.info_for(ua.loops[idx].loop)
        if not info.parallelizable:
            return False
    return True


# ---------------------------------------------------------------------------
# formatting
# ---------------------------------------------------------------------------


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width text table (deterministic; used by benches and docs)."""

    widths = [len(h) for h in headers]
    str_rows = [[str(c) for c in row] for row in rows]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def render_table1() -> str:
    rows = [
        (r.name, r.domain, str(r.lines), str(r.procedures))
        for r in table1_suite()
    ]
    return format_table(["name", "description", "lines", "procedures"], rows)


def render_table2() -> str:
    rows = [
        (
            r.name,
            ", ".join(r.actions),
            f"{r.auto_parallel}/{r.total_loops}",
            f"{r.ped_parallel}/{r.total_loops}",
        )
        for r in table2_transformations()
    ]
    return format_table(
        ["name", "user actions & transformations", "auto", "with Ped"], rows
    )


def render_table3() -> str:
    headers = ["name"] + TABLE3_FEATURES + ["assertions"]
    rows = []
    for r in table3_analysis():
        cells = [r.name]
        for f in TABLE3_FEATURES:
            cells.append("yes" if r.required[f] else "-")
        cells.append("yes" if r.needs_assertion else "-")
        rows.append(cells)
    return format_table(headers, rows)
