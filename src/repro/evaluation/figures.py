"""Figures: the Ped window (Figure 1) and the SC'89 worked examples.

``figure1_window`` renders the editor over a representative program with
a loop selected, reproducing the paper's window layout: source pane on
top, then the loop list, the dependence pane with its filter line, and
the variable pane.

``figure2_worked_examples`` regenerates the SC'89 paper's style of
worked tool-interaction examples: the dependence display for a loop with
a recurrence, and a before/after transformation pair (interchange and
distribution), as deterministic text.
"""

from __future__ import annotations

from typing import List

from ..editor.commands import CommandInterpreter
from ..editor.display import render_window
from ..editor.session import PedSession
from ..workloads.suite import SUITE

_EXAMPLE = """      program example
      integer n
      parameter (n = 64)
      real a(n, n), b(n), s
      s = 0.0
      do i = 2, n
         do j = 1, n - 1
            a(i, j) = a(i-1, j+1) + a(i-1, j)
         end do
      end do
      do i = 1, n
         b(i) = b(i) + 2.0
         s = s + b(i)
      end do
      write (6, *) s
      end
"""


def figure1_window(program: str = "arc3d") -> str:
    """Figure 1: the Ped window over a suite program, loop selected."""

    prog = SUITE[program]
    session = PedSession(prog.source)
    ci = CommandInterpreter(session)
    for line in prog.script:
        out = ci.execute(line)
        if line == "loops":
            break
        del out
    # Select the key loop in the key unit for the screenshot.
    unit, idx = prog.target_loops[0]
    session.select_unit(unit)
    session.select_loop(idx)
    return render_window(session)


def figure2_worked_examples() -> List[str]:
    """SC'89-style worked examples as (titled) text sections."""

    sections: List[str] = []
    session = PedSession(_EXAMPLE)
    ci = CommandInterpreter(session)

    # (a) dependence display for the wavefront nest: vectors (1,-1), (1,0)
    ci.execute("select 0")
    deps = ci.execute("deps")
    sections.append("(a) dependence display for the wavefront nest:\n" + deps)

    # (b) power steering refuses the illegal interchange — the (1,-1)
    # vector would become lexicographically negative — and suggests
    # skewing as the enabling step.
    advice = ci.execute("advice interchange")
    skew_advice = ci.execute("advice skew")
    sections.append(
        "(b) power steering, interchange on the wavefront:\n"
        + advice
        + "\n"
        + skew_advice
    )

    # (c) distribution of the second loop isolates the reduction
    ci.execute("select 2")
    advice = ci.execute("advice distribute")
    applied = ci.execute("apply distribute")
    loops = ci.execute("loops")
    sections.append(
        "(c) loop distribution separates the reduction:\n"
        + advice
        + "\n"
        + applied
        + "\n"
        + loops
    )

    # (d) parallelize the distributed update loop
    ci.execute("select 2")
    applied = ci.execute("apply parallelize")
    src = session.source
    sections.append("(d) parallelized update loop:\n" + applied + "\n" + src)
    return sections
