"""Experiment M1: the dependence-test hierarchy statistics.

"A hierarchical suite of tests is used, starting with inexpensive tests"
— the engineering claim is that the cheap tiers (ZIV and the exact SIV
family) dispose of the large majority of reference pairs, leaving only a
small residue for GCD/Banerjee.  This module aggregates, over the whole
suite, how many access pairs each tier resolved and how many individual
tests ran per tier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..fortran.symbols import parse_and_bind
from ..interproc.program import FeatureSet, analyze_program
from ..workloads.suite import SUITE


@dataclass
class HierarchyStats:
    """Aggregate tier statistics over a set of programs."""

    pairs_resolved: Dict[str, int] = field(default_factory=dict)
    classic_resolved: Dict[str, int] = field(default_factory=dict)
    tests_run: Dict[str, int] = field(default_factory=dict)
    total_pairs: int = 0
    total_classic: int = 0

    def resolved_fraction(self, tier: str) -> float:
        if not self.total_pairs:
            return 0.0
        return self.pairs_resolved.get(tier, 0) / self.total_pairs

    def cheap_fraction(self) -> float:
        """Fraction of *classic element-reference pairs* settled by the
        cheap tiers (structural pruning, ZIV and exact SIV) — the paper's
        engineering claim.  Call-site section pairs are excluded: they
        always need the range-overlap (Banerjee-machinery) tier by
        construction.  Pairs the driver pruned before any test ran are
        the cheapest disposal of all, so they count toward the claim."""

        if not self.total_classic:
            return 0.0
        cheap = (
            self.classic_resolved.get("pruned", 0)
            + self.classic_resolved.get("ziv", 0)
            + self.classic_resolved.get("siv", 0)
        )
        return cheap / self.total_classic


def dependence_test_stats(
    names: Optional[Sequence[str]] = None,
    features: Optional[FeatureSet] = None,
) -> HierarchyStats:
    """Run dependence analysis over the suite and aggregate tier stats."""

    stats = HierarchyStats()
    for name in names or SUITE:
        prog = SUITE[name]
        sf = parse_and_bind(prog.source)
        pa = analyze_program(sf, features or FeatureSet())
        for ua in pa.units.values():
            for tier, count in ua.tester.pair_resolution.items():
                stats.pairs_resolved[tier] = (
                    stats.pairs_resolved.get(tier, 0) + count
                )
                stats.total_pairs += count
            for tier, count in ua.tester.pair_resolution_classic.items():
                stats.classic_resolved[tier] = (
                    stats.classic_resolved.get(tier, 0) + count
                )
                stats.total_classic += count
            for tier, count in ua.tester.tier_counts.items():
                stats.tests_run[tier] = stats.tests_run.get(tier, 0) + count
    return stats
