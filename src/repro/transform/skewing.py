"""Loop skewing.

Skewing replaces the inner index ``j`` of a perfect 2-nest by
``jj = j + f·i``: the inner bounds shift by ``f·i`` and every use of the
old index becomes ``jj − f·i``.  As a pure change of variables it is
always safe; its value is that it turns ``(<, >)`` dependence vectors
into ``(<, ≤)`` form, after which interchange (and then inner-loop
parallelization of the wavefront) becomes legal.
"""

from __future__ import annotations

from ..fortran.ast_nodes import BinOp, DoLoop, Num, VarRef, copy_expr
from .base import (
    Advice,
    TransformContext,
    Transformation,
    TransformError,
    perfect_nest,
)
from .subst import substitute_in_body


class LoopSkewing(Transformation):
    name = "skew"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, factor: int = 1, **kwargs
    ) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        nest = perfect_nest(loop)
        if len(nest) < 2:
            return Advice.no("skewing needs a perfect 2-nest")
        if factor == 0:
            return Advice.no("skew factor must be nonzero")
        helps = self._enables_interchange(ctx, nest[0], nest[1])
        return Advice(
            True,
            True,
            helps,
            ["change of variables; always semantics-preserving"]
            + (["prepares the nest for interchange"] if helps else []),
        )

    def _enables_interchange(self, ctx, outer, inner) -> bool:
        # Only edges whose common nest mentions the outer loop can mention
        # both loops; the nest index narrows the scan to exactly those.
        for dep in ctx.analysis.graph.in_nest(outer.sid):
            sids = dep.nest_sids
            if outer.sid in sids and inner.sid in sids:
                ko = sids.index(outer.sid) + 1
                ki = sids.index(inner.sid) + 1
                if dep.direction_at(ko) == "<" and dep.direction_at(ki) == ">":
                    return True
        return False

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, factor: int = 1, **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, factor=factor)
        if not advice.ok:
            raise TransformError(f"skew: {advice.describe()}")
        nest = perfect_nest(loop)
        outer, inner = nest[0], nest[1]
        i, j = outer.var, inner.var
        f_times_i: BinOp = BinOp(
            0, "*", Num(0, factor), VarRef(0, i)
        )
        # New bounds: [lo + f·i, hi + f·i].
        inner.start = BinOp(0, "+", copy_expr(inner.start), copy_expr(f_times_i))
        inner.end = BinOp(0, "+", copy_expr(inner.end), copy_expr(f_times_i))
        # Body: j := j − f·i.
        replacement = BinOp(0, "-", VarRef(0, j), copy_expr(f_times_i))
        substitute_in_body(inner.body, j, replacement)
        return f"skewed loop {j} by {factor}*{i}"
