"""Compound transformation recipes.

Ped's users discovered multi-step idioms — "the loops of the called
procedures were first fused before applying interchange" — and asked the
tool for more guidance in selecting transformations.  A :class:`Recipe`
packages such an idiom: an ordered list of (transformation, kwargs)
steps, applied through a session with power-steering checks at every
step; the recipe stops cleanly at the first step whose diagnosis fails,
reporting how far it got.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..editor.session import PedError, PedSession


@dataclass
class RecipeStep:
    transform: str
    kwargs: Dict = field(default_factory=dict)
    #: re-select this loop index before the step (None keeps selection)
    select: Optional[int] = None


@dataclass
class RecipeResult:
    applied: List[str] = field(default_factory=list)
    stopped_at: Optional[str] = None
    reason: str = ""

    @property
    def complete(self) -> bool:
        return self.stopped_at is None


@dataclass
class Recipe:
    """An ordered idiom of power-steered steps."""

    name: str
    description: str
    steps: List[RecipeStep]

    def apply(self, session: PedSession) -> RecipeResult:
        result = RecipeResult()
        for step in self.steps:
            if step.select is not None:
                loops = session.loops()
                if step.select >= len(loops):
                    result.stopped_at = step.transform
                    result.reason = f"no loop [{step.select}] to select"
                    return result
                session.select_loop(step.select)
            advice = session.diagnose(step.transform, **step.kwargs)
            if not (advice.applicable and advice.safe):
                result.stopped_at = step.transform
                result.reason = advice.describe()
                return result
            try:
                summary = session.apply(step.transform, **step.kwargs)
            except PedError as exc:
                result.stopped_at = step.transform
                result.reason = str(exc)
                return result
            result.applied.append(f"{step.transform}: {summary}")
        return result


def outer_parallel_recipe(loop_index: int = 0) -> Recipe:
    """Distribute if possible, then parallelize the outermost piece."""

    return Recipe(
        "outer-parallel",
        "distribute the selected loop, then parallelize the first piece",
        [
            RecipeStep("distribute", select=loop_index),
            RecipeStep("parallelize", select=loop_index),
        ],
    )


def fuse_then_parallelize(loop_index: int = 0) -> Recipe:
    """The granularity recipe: merge adjacent loops, then go parallel."""

    return Recipe(
        "fuse-parallel",
        "fuse the selected loop with its successor, then parallelize",
        [
            RecipeStep("fuse", select=loop_index),
            RecipeStep("parallelize", select=loop_index),
        ],
    )


def embed_fuse_parallelize(call_line: int, loop_index: int = 0) -> Recipe:
    """The full gloop recipe: embedding + fusion + parallelization."""

    return Recipe(
        "embed-fuse-parallel",
        "inline the call, fuse the adjacent column loops, parallelize",
        [
            RecipeStep("inline", {"line": call_line}),
            RecipeStep("fuse", select=loop_index),
            RecipeStep("parallelize", select=loop_index),
        ],
    )
