"""Loop reversal.

Running iterations in the opposite order flips the sign of every carried
direction at the loop's level, so reversal is safe exactly when the loop
carries no dependence (all its vectors are '=' at that level).  Reversal
is rarely useful alone; it enables fusion/interchange in combination.
"""

from __future__ import annotations

from ..fortran.ast_nodes import DoLoop, Num, UnOp, copy_expr
from .base import Advice, TransformContext, Transformation, TransformError


class LoopReversal(Transformation):
    name = "reverse"

    def diagnose(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        info = ctx.analysis.loop_info.get(loop.sid)
        if info is None:
            return Advice.no("selection is not a DO loop of this procedure")
        carried = [d for d in info.carried if d.blocks_parallelization]
        if carried:
            return Advice.unsafe(
                f"loop carries {len(carried)} dependence(s); reversal would "
                "reverse their direction"
            )
        return Advice.yes("no carried dependences", profitable=False)

    def apply(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> str:
        advice = self.diagnose(ctx, loop=loop)
        if not advice.ok:
            raise TransformError(f"reverse: {advice.describe()}")
        old_start, old_end = loop.start, loop.end
        loop.start, loop.end = old_end, old_start
        step = loop.step if loop.step is not None else Num(loop.line, 1)
        if isinstance(step, UnOp) and step.op == "-":
            loop.step = step.operand  # −(−s) = s
        elif isinstance(step, Num) and step.value == 1:
            loop.step = UnOp(loop.line, "-", Num(loop.line, 1))
        else:
            loop.step = UnOp(loop.line, "-", copy_expr(step))
        return f"reversed loop {loop.var}"
