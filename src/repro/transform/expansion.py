"""Scalar expansion.

A scalar ``t`` that is written and read inside a loop creates anti and
output dependences between iterations even when each iteration's value is
independent.  Expansion replaces ``t`` with a fresh array indexed by the
loop variable, breaking those dependences outright (Blume–Eigenmann found
scalar expansion "the only transformation that consistently improved
performance").  When the scalar is live after the loop, a copy-out of the
last element preserves semantics.
"""

from __future__ import annotations


from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    DoLoop,
    Entity,
    TypeDecl,
    VarRef,
    copy_expr,
    walk_statements,
)
from ..fortran.symbols import SymbolTable
from .base import Advice, TransformContext, Transformation, TransformError, find_parent
from .subst import map_scalar_to_array


class ScalarExpansion(Transformation):
    name = "expand"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> Advice:
        if loop is None or not isinstance(loop, DoLoop):
            return Advice.no("no DO loop selected")
        if not var:
            return Advice.no("no scalar selected for expansion")
        var = var.lower()
        table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        sym = table.get(var)
        if sym is None or sym.is_array:
            return Advice.no(f"{var} is not a scalar of this procedure")
        if var == loop.var:
            return Advice.no("cannot expand the loop control variable")
        assigned = False
        from ..analysis.defuse import stmt_defs

        for st in walk_statements(loop.body):
            must, _ = stmt_defs(st, table)
            if var in must:
                assigned = True
        if not assigned:
            return Advice.no(f"{var} is not assigned inside the loop")
        # Expansion needs a known extent for the expansion array: the loop
        # bounds must be affine in visible symbols.
        info = ctx.analysis.loop_info.get(loop.sid)
        killed = {p.name for p in info.privatizable} if info else set()
        reasons = ["breaks anti/output dependences on " + var]
        if var not in killed:
            reasons.append(
                f"{var} is upward exposed in the body: first iteration reads "
                "the pre-loop value — expansion keeps it via t$(lo−1) "
                "semantics only if the body assigns before use; verify"
            )
        live_after = var in ctx.analysis.defuse.live_out.get(loop.sid, frozenset())
        if live_after:
            reasons.append("live after loop: last-value copy-out added")
        return Advice(True, True, True, reasons)

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, var=var)
        if not advice.ok:
            raise TransformError(f"expand: {advice.describe()}")
        var = var.lower()
        table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        array_name = _fresh(table, var + "x")
        # Declare the expansion array with the loop's upper bound extent.
        decl = TypeDecl(
            loop.line,
            None,
            -1,
            table.ensure(var).typename,
            [Entity(array_name, [(None, copy_expr(loop.end))], loop.line)],
        )
        ctx.unit.decls.append(decl)
        sym = table.ensure(array_name)
        sym.typename = table.ensure(var).typename
        sym.dims = [(None, copy_expr(loop.end))]
        map_scalar_to_array(loop.body, var, array_name, VarRef(0, loop.var))
        summary = f"expanded scalar {var} into {array_name}({loop.var})"
        live_after = var in ctx.analysis.defuse.live_out.get(loop.sid, frozenset())
        if live_after:
            where = find_parent(ctx.unit, loop)
            if where is not None:
                body_list, index = where
                copy_out = Assign(
                    loop.line,
                    None,
                    -1,
                    VarRef(0, var),
                    ArrayRef(0, array_name, [copy_expr(loop.end)]),
                )
                body_list.insert(index + 1, copy_out)
                summary += "; last value copied out"
        return summary


def _fresh(table: SymbolTable, base: str) -> str:
    name = base
    k = 1
    while table.get(name) is not None:
        name = f"{base}{k}"
        k += 1
    return name
