"""Power-steered source-to-source transformations.

Each transformation follows Ped's *power steering* paradigm: the user
selects the transformation, the system diagnoses whether it is
**applicable** (syntactically possible), **safe** (semantics preserving,
per the dependence graph) and **profitable** (worth doing), and then — on
request — performs the mechanical rewrite.
"""

from .base import Advice, TransformContext, Transformation, find_parent  # noqa: F401
from .subst import substitute_var, rename_var  # noqa: F401
from .parallelize import Parallelize  # noqa: F401
from .interchange import LoopInterchange  # noqa: F401
from .distribution import LoopDistribution  # noqa: F401
from .fusion import LoopFusion  # noqa: F401
from .reversal import LoopReversal  # noqa: F401
from .skewing import LoopSkewing  # noqa: F401
from .stripmine import StripMine  # noqa: F401
from .unroll import LoopUnroll  # noqa: F401
from .expansion import ScalarExpansion  # noqa: F401
from .privatize import Privatize  # noqa: F401
from .reduction import ReductionRewrite  # noqa: F401
from .statements import StatementInterchange  # noqa: F401
from .registry import TRANSFORMATIONS, get_transformation  # noqa: F401
