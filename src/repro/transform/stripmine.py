"""Strip mining.

``DO I = 1, N`` becomes an outer strip loop over blocks of ``size`` and an
inner loop over one strip.  Always semantics-preserving; used to tile for
the memory hierarchy and to coarsen parallel-loop granularity (each strip
becomes one task).
"""

from __future__ import annotations

from ..fortran.ast_nodes import BinOp, DoLoop, FuncRef, Num, VarRef, copy_expr
from .base import Advice, TransformContext, Transformation, TransformError, find_parent


class StripMine(Transformation):
    name = "stripmine"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, size: int = 32, **kwargs
    ) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        if size < 2:
            return Advice.no("strip size must be at least 2")
        if loop.step is not None:
            from ..fortran.ast_nodes import Num as _Num

            if not (isinstance(loop.step, _Num) and loop.step.value == 1):
                return Advice.no("strip mining requires unit step")
        return Advice.yes(
            f"strips of {size} iterations; always semantics-preserving"
        )

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, size: int = 32, **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, size=size)
        if not advice.ok:
            raise TransformError(f"stripmine: {advice.describe()}")
        where = find_parent(ctx.unit, loop)
        if where is None:
            raise TransformError("stripmine: loop not found in unit")
        strip_var = _fresh_name(ctx, loop.var + "s")
        inner = DoLoop(
            loop.line,
            None,
            -1,
            loop.var,
            VarRef(0, strip_var),
            FuncRef(
                0,
                "min",
                [
                    BinOp(
                        0,
                        "+",
                        VarRef(0, strip_var),
                        Num(0, size - 1),
                    ),
                    copy_expr(loop.end),
                ],
                intrinsic=True,
            ),
            None,
            loop.body,
        )
        loop.var = strip_var
        loop.step = Num(0, size)
        loop.body = [inner]
        return f"strip mined into blocks of {size} (strip variable {strip_var})"


def _fresh_name(ctx: TransformContext, base: str) -> str:
    table = ctx.unit.symtab
    name = base
    k = 1
    while table is not None and table.get(name) is not None:
        name = f"{base}{k}"
        k += 1
    if table is not None:
        table.ensure(name)
    return name
