"""Procedure extraction (outlining) — the other half of the missing pair.

"Embedding and extraction are not currently implemented in Ped."  Where
embedding exposes a callee's loops to the caller, *extraction* pulls a
loop's body out into a new subroutine called once per iteration — the
restructuring that turns an unwieldy monolithic loop into the
gloop-shaped form interprocedural analysis handles well, and the basic
move for sharing per-iteration work between drivers.

The new subroutine receives every non-COMMON name the body references as
a by-reference formal (the loop variable first); COMMON blocks used by
the body are redeclared with the caller's layout; PARAMETER constants are
re-stated.  Bodies containing RETURN/STOP/GOTO are rejected (control
could escape the new procedure boundary).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..fortran.ast_nodes import (
    CallStmt,
    CommonDecl,
    DoLoop,
    Entity,
    GotoStmt,
    ParameterDecl,
    ProcedureUnit,
    ReturnStmt,
    StopStmt,
    TypeDecl,
    VarRef,
    copy_expr,
    copy_stmt,
    walk_statements,
)
from ..fortran.symbols import COMMON, PARAM, SymbolTable
from .base import Advice, TransformContext, Transformation, TransformError


class ExtractLoopBody(Transformation):
    """Outline the selected loop's body into a fresh subroutine."""

    name = "extract"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, unit_name: str = "", **kwargs
    ) -> Advice:
        if loop is None or not isinstance(loop, DoLoop):
            return Advice.no("no DO loop selected")
        if ctx.source_file is None:
            return Advice.no("no whole-program context for the new unit")
        for st in walk_statements(loop.body):
            if isinstance(st, (ReturnStmt, StopStmt)):
                return Advice.no("body contains RETURN/STOP")
            if isinstance(st, GotoStmt):
                return Advice.no("body contains GOTO")
        new_name = self._unit_name(ctx, unit_name or "body")
        names = self._referenced(ctx, loop)
        formals = self._formal_list(ctx, loop, names)
        if len(formals) > 12:
            return Advice(
                True,
                True,
                False,
                [f"{len(formals)} formals needed: consider COMMON first"],
            )
        return Advice.yes(
            f"extracts {len(loop.body)} statement(s) into subroutine "
            f"{new_name}({', '.join(formals)})",
            profitable=False,
        )

    # -- helpers -----------------------------------------------------------

    def _unit_name(self, ctx: TransformContext, base: str) -> str:
        sf = ctx.source_file
        existing = {u.name for u in sf.units}  # type: ignore[union-attr]
        name = base
        k = 1
        while name in existing:
            name = f"{base}{k}"
            k += 1
        return name

    def _referenced(self, ctx: TransformContext, loop: DoLoop) -> Set[str]:
        from ..analysis.defuse import stmt_defs, stmt_uses

        table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        names: Set[str] = set()
        for st in walk_statements(loop.body):
            names |= stmt_uses(st, table)
            _, may = stmt_defs(st, table)
            names |= may
        return {n for n in names if table.get(n) is not None}

    def _formal_list(
        self, ctx: TransformContext, loop: DoLoop, names: Set[str]
    ) -> List[str]:
        table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        formals = [loop.var]
        extra: Set[str] = set()
        for n in sorted(names):
            sym = table[n]
            if sym.storage in (COMMON, PARAM, "function") or n == loop.var:
                continue
            formals.append(n)
            # Adjustable array bounds pull their symbols in as formals too.
            if sym.dims is not None:
                for lo, hi in sym.dims:
                    for bound in (lo, hi):
                        if bound is None:
                            continue
                        from ..fortran.ast_nodes import walk_expr

                        for node in walk_expr(bound):
                            if isinstance(node, VarRef) and node.name != "*":
                                bsym = table.get(node.name)
                                if bsym is not None and bsym.storage not in (
                                    COMMON,
                                    PARAM,
                                ):
                                    extra.add(node.name)
        for n in sorted(extra):
            if n not in formals:
                formals.append(n)
        return formals

    # -- apply ----------------------------------------------------------------

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, unit_name: str = "", **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, unit_name=unit_name)
        if not advice.ok:
            raise TransformError(f"extract: {advice.describe()}")
        sf = ctx.source_file
        table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        new_name = self._unit_name(ctx, unit_name or "body")
        names = self._referenced(ctx, loop)
        formals = self._formal_list(ctx, loop, names)

        decls = []
        # PARAMETER constants used anywhere in the body or in the
        # dimension bounds of anything we are about to redeclare.
        params_used = {n for n in names if table[n].storage == PARAM}
        blocks_used0 = {
            table[n].common_block for n in names if table[n].storage == COMMON
        }
        dim_owners = list(formals)
        for block in blocks_used0:
            if block is not None:
                dim_owners.extend(table.common_blocks[block])
        from ..fortran.ast_nodes import walk_expr

        for n in dim_owners:
            sym = table.get(n)
            if sym is None or sym.dims is None:
                continue
            for lo, hi in sym.dims:
                for bound in (lo, hi):
                    if bound is None:
                        continue
                    for node in walk_expr(bound):
                        if isinstance(node, VarRef) and node.name != "*":
                            bsym = table.get(node.name)
                            if bsym is not None and bsym.storage == PARAM:
                                params_used.add(node.name)
        for decl in ctx.unit.decls:
            if isinstance(decl, ParameterDecl):
                keep = [(n, copy_expr(e)) for n, e in decl.assigns if n in params_used]
                if keep:
                    decls.append(ParameterDecl(0, None, -1, keep))
        # Type declarations for formals.
        for n in formals:
            sym = table[n]
            ent = Entity(
                n,
                None
                if sym.dims is None
                else [
                    (None if lo is None else copy_expr(lo), copy_expr(hi))
                    for lo, hi in sym.dims
                ],
                0,
            )
            decls.append(TypeDecl(0, None, -1, sym.typename, [ent]))
        # COMMON blocks whose members the body touches.
        blocks_used = {
            table[n].common_block for n in names if table[n].storage == COMMON
        }
        for block in sorted(b for b in blocks_used if b is not None):
            members = table.common_blocks[block]
            entities = []
            for m in members:
                msym = table[m]
                if msym.dims is not None:
                    decls.append(
                        TypeDecl(
                            0,
                            None,
                            -1,
                            msym.typename,
                            [
                                Entity(
                                    m,
                                    [
                                        (
                                            None if lo is None else copy_expr(lo),
                                            copy_expr(hi),
                                        )
                                        for lo, hi in msym.dims
                                    ],
                                    0,
                                )
                            ],
                        )
                    )
                    entities.append(Entity(m, None, 0))
                else:
                    decls.append(
                        TypeDecl(0, None, -1, msym.typename, [Entity(m, None, 0)])
                    )
                    entities.append(Entity(m, None, 0))
            decls.append(CommonDecl(0, None, -1, block, entities))

        body = [copy_stmt(st) for st in loop.body]
        new_unit = ProcedureUnit(
            "subroutine",
            new_name,
            formals,
            None,
            decls,
            body + [ReturnStmt(0, None, -1)],
            loop.line,
        )
        sf.units.append(new_unit)  # type: ignore[union-attr]

        loop.body = [
            CallStmt(
                loop.line,
                None,
                -1,
                new_name,
                [VarRef(0, f) for f in formals],
            )
        ]
        return (
            f"extracted body into subroutine {new_name}"
            f"({', '.join(formals)})"
        )
