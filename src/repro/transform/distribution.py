"""Loop distribution (loop fission).

Partition the loop body's statements into the strongly connected
components of its dependence subgraph; each SCC becomes its own loop, in a
topological order of the condensation.  Statements not involved in any
recurrence separate into loops that may individually parallelize even
when the original loop could not — the classic way to isolate a serial
recurrence.
"""

from __future__ import annotations

from typing import Dict, List, Set

from ..fortran.ast_nodes import DoLoop, copy_expr, walk_statements
from .base import Advice, TransformContext, Transformation, TransformError, find_parent


class LoopDistribution(Transformation):
    name = "distribute"

    def diagnose(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        if loop.sid not in ctx.analysis.loop_info:
            return Advice.no("selection is not a DO loop of this procedure")
        groups = self._partition(ctx, loop)
        if groups is None:
            return Advice.no("control flow in body prevents distribution")
        if len(groups) < 2:
            return Advice(
                True,
                True,
                False,
                ["body is one dependence group; distribution would be a no-op"],
            )
        return Advice.yes(
            f"body splits into {len(groups)} independent loops",
        )

    def _partition(self, ctx: TransformContext, loop: DoLoop):
        """Top-level statement groups in topological order, or None."""

        top = loop.body
        # Map every contained statement sid to its top-level statement.
        owner: Dict[int, int] = {}
        for idx, st in enumerate(top):
            for inner in walk_statements([st]):
                owner[inner.sid] = idx
        n = len(top)
        table = ctx.unit.symtab
        succ: Dict[int, Set[int]] = {i: set() for i in range(n)}
        # Only edges with both endpoints inside the body can constrain the
        # partition; the endpoint indices deliver exactly those.
        for dep in ctx.analysis.graph.edges_within(owner):
            a = owner.get(dep.src_sid)
            b = owner.get(dep.dst_sid)
            if a is None or b is None or a == b:
                continue
            if dep.kind == "control":
                return None  # cross-statement control flow: bail out
            if not dep.blocks_parallelization:
                continue
            sym = table.get(dep.var) if table is not None else None
            is_scalar = sym is None or not sym.is_array
            if is_scalar and dep.var and dep.var != loop.var:
                # A scalar carries only its most recent value: statements
                # communicating through one must stay in the same loop
                # (splitting them would hand every iteration of the later
                # loop the *final* value instead of its own).  Scalar
                # expansion is the transformation that relaxes this.
                succ[a].add(b)
                succ[b].add(a)
                continue
            # Array dependences constrain statement order across the
            # distributed loops; loop-carried backward deps force the two
            # statements into one SCC (edge both ways).
            succ[a].add(b)
            if dep.loop_carried and b < a:
                # A carried dep from a later statement back to an earlier
                # one creates a recurrence between the groups.
                succ[b].add(a)
        sccs = _tarjan_ints(n, succ)
        return sccs

    def apply(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> str:
        advice = self.diagnose(ctx, loop=loop)
        if not advice.ok:
            raise TransformError(f"distribute: {advice.describe()}")
        groups = self._partition(ctx, loop)
        if groups is None or len(groups) < 2:
            raise TransformError("distribute: nothing to distribute")
        where = find_parent(ctx.unit, loop)
        if where is None:
            raise TransformError("distribute: loop not found in unit")
        body_list, index = where
        new_loops: List[DoLoop] = []
        for group in groups:
            stmts = [loop.body[i] for i in sorted(group)]
            new_loops.append(
                DoLoop(
                    loop.line,
                    None,
                    -1,
                    loop.var,
                    copy_expr(loop.start),
                    copy_expr(loop.end),
                    copy_expr(loop.step) if loop.step is not None else None,
                    stmts,
                )
            )
        body_list[index : index + 1] = new_loops
        return f"distributed into {len(new_loops)} loops"


def _tarjan_ints(n: int, succ: Dict[int, Set[int]]) -> List[Set[int]]:
    """SCCs of an integer graph in topological order of the condensation."""

    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    stack: List[int] = []
    on_stack: Set[int] = set()
    out: List[Set[int]] = []
    counter = [0]

    def visit(v: int) -> None:
        index[v] = low[v] = counter[0]
        counter[0] += 1
        stack.append(v)
        on_stack.add(v)
        for w in sorted(succ.get(v, ())):
            if w not in index:
                visit(w)
                low[v] = min(low[v], low[w])
            elif w in on_stack:
                low[v] = min(low[v], index[w])
        if low[v] == index[v]:
            scc: Set[int] = set()
            while True:
                w = stack.pop()
                on_stack.discard(w)
                scc.add(w)
                if w == v:
                    break
            out.append(scc)

    for v in range(n):
        if v not in index:
            visit(v)
    # Tarjan emits SCCs in reverse topological order; statements must keep
    # dependence order, so reverse — then stably order groups that are
    # mutually unconstrained by their original text position.
    out.reverse()
    out.sort(key=min)
    # Re-check: sorting by min original position is safe because any data
    # dependence between groups goes from a textually earlier statement to
    # a later one after the carried-backward case merged them into one SCC.
    return out
