"""Statement-level reordering.

Two adjacent statements may be interchanged when no dependence connects
them (in either direction).  Ped offered statement interchange to expose
distribution/fusion opportunities and tidy transformed code.
"""

from __future__ import annotations

from ..fortran.ast_nodes import Stmt, walk_statements
from .base import Advice, TransformContext, Transformation, TransformError, find_parent


class StatementInterchange(Transformation):
    name = "swap"

    def diagnose(self, ctx: TransformContext, stmt: Stmt = None, **kwargs) -> Advice:
        """Diagnose swapping ``stmt`` with the statement after it."""

        if stmt is None:
            return Advice.no("no statement selected")
        where = find_parent(ctx.unit, stmt)
        if where is None:
            return Advice.no("statement not found in this procedure")
        body, idx = where
        if idx + 1 >= len(body):
            return Advice.no("no statement follows the selection")
        nxt = body[idx + 1]
        a_sids = {s.sid for s in walk_statements([stmt])}
        b_sids = {s.sid for s in walk_statements([nxt])}
        graph = ctx.analysis.graph
        connecting = graph.edges_between(a_sids, b_sids) + graph.edges_between(
            b_sids, a_sids
        )
        for dep in connecting:
            if not dep.blocks_parallelization:
                continue
            if dep.loop_independent:
                return Advice.unsafe(
                    f"{dep.kind} dependence on {dep.var} connects the two "
                    "statements"
                )
        return Advice.yes("no dependence between the statements")

    def apply(self, ctx: TransformContext, stmt: Stmt = None, **kwargs) -> str:
        advice = self.diagnose(ctx, stmt=stmt)
        if not advice.ok:
            raise TransformError(f"swap: {advice.describe()}")
        where = find_parent(ctx.unit, stmt)
        assert where is not None
        body, idx = where
        body[idx], body[idx + 1] = body[idx + 1], body[idx]
        return f"swapped statements at lines {stmt.line} and {body[idx].line}"
