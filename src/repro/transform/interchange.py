"""Loop interchange.

Swapping two perfectly nested loops permutes every dependence's
direction vector; the interchange is safe iff no vector becomes
lexicographically negative — equivalently, no dependence carried on the
outer loop has direction ``(<, >)`` (or distance signs ``(+, −)``) over
the pair being swapped.

Interchange is the workhorse for granularity: moving a parallel inner
loop outward multiplies the work per fork ("A solution that combines the
granularity of the outer loop with the parallelism of the inner loop is
to perform loop interchange").
"""

from __future__ import annotations

from typing import List

from ..fortran.ast_nodes import DoLoop
from .base import (
    Advice,
    TransformContext,
    Transformation,
    TransformError,
    perfect_nest,
)


class LoopInterchange(Transformation):
    name = "interchange"

    def diagnose(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> Advice:
        """Diagnose interchanging ``loop`` with the loop immediately inside."""

        if loop is None:
            return Advice.no("no loop selected")
        nest = perfect_nest(loop)
        if len(nest) < 2:
            return Advice.no(
                "loop body is not a single nested DO (interchange needs a "
                "perfect 2-nest)"
            )
        outer, inner = nest[0], nest[1]
        # Inner loop bounds must not depend on the outer index (that would
        # be a triangular nest; interchange then needs bound rewriting we
        # diagnose as inapplicable, matching Ped's behaviour).
        from ..fortran.ast_nodes import walk_expr, VarRef

        for e in (inner.start, inner.end, inner.step):
            if e is None:
                continue
            for node in walk_expr(e):
                if isinstance(node, VarRef) and node.name == outer.var:
                    return Advice.no(
                        f"inner bounds depend on {outer.var}: triangular nest"
                    )
        bad = self._illegal_deps(ctx, outer, inner)
        if bad:
            return Advice.unsafe(
                "interchange would reverse dependences: "
                + ", ".join(bad[:3])
            )
        profitable = True
        reasons = ["moves parallelism outward / improves granularity"]
        return Advice(True, True, profitable, reasons)

    def _illegal_deps(
        self, ctx: TransformContext, outer: DoLoop, inner: DoLoop
    ) -> List[str]:
        bad: List[str] = []
        table = ctx.unit.symtab
        graph = ctx.analysis.graph
        # The carrier index delivers exactly the carried data edges of the
        # two loops being swapped (control / loop-independent edges never
        # appear in it).
        for dep in graph.carried_by_sid(outer.sid) + graph.carried_by_sid(
            inner.sid
        ):
            if not dep.blocks_parallelization:
                continue
            if dep.reason:
                continue  # reduction/induction recurrences: reorderable
            sids = dep.nest_sids
            # A carried recurrence through a *scalar* folds over the
            # traversal order itself; interchanging reorders the traversal
            # and changes which value each iteration observes.  Killed
            # scalars carry nothing (no edges); reductions/inductions are
            # order-insensitive by recognition (reason set).
            sym = table.get(dep.var) if table is not None else None
            if dep.var and (sym is None or not sym.is_array):
                bad.append(
                    f"scalar recurrence on {dep.var} {dep.vector_str()}"
                )
                continue
            if outer.sid not in sids or inner.sid not in sids:
                continue
            ko = sids.index(outer.sid) + 1
            ki = sids.index(inner.sid) + 1
            d_out = dep.direction_at(ko)
            d_in = dep.direction_at(ki)
            if d_out == "<" and d_in == ">":
                bad.append(f"{dep.kind} dep on {dep.var} {dep.vector_str()}")
            elif d_out == "*" and d_in in (">", "*"):
                bad.append(
                    f"{dep.kind} dep on {dep.var} {dep.vector_str()} (unknown direction)"
                )
        return bad

    def apply(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> str:
        advice = self.diagnose(ctx, loop=loop)
        if not advice.ok:
            raise TransformError(f"interchange: {advice.describe()}")
        nest = perfect_nest(loop)
        outer, inner = nest[0], nest[1]
        # Swap the loop headers in place: exchanging control variables,
        # bounds and steps leaves the bodies untouched.
        outer.var, inner.var = inner.var, outer.var
        outer.start, inner.start = inner.start, outer.start
        outer.end, inner.end = inner.end, outer.end
        outer.step, inner.step = inner.step, outer.step
        outer.parallel, inner.parallel = inner.parallel, outer.parallel
        outer.private, inner.private = inner.private, outer.private
        outer.reductions, inner.reductions = inner.reductions, outer.reductions
        return f"interchanged loops {inner.var} and {outer.var}"
