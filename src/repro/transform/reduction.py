"""Parallel reduction rewrite.

Marks a recognised reduction on the loop so the parallel code generator
gives each processor a partial accumulator combined after the loop — the
enhancement the experiences paper asks for ("Five of the programs contain
sum reductions which go unrecognized by Ped").
"""

from __future__ import annotations

from ..fortran.ast_nodes import DoLoop
from .base import Advice, TransformContext, Transformation, TransformError


class ReductionRewrite(Transformation):
    name = "reduction"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        info = ctx.analysis.loop_info.get(loop.sid)
        if info is None:
            return Advice.no("selection is not a DO loop of this procedure")
        if not info.reductions:
            return Advice.no("no reduction idiom recognised in this loop")
        if var:
            var = var.lower()
            match = [r for r in info.reductions if r.var == var]
            if not match:
                return Advice.no(f"{var} is not a recognised reduction variable")
            red = match[0]
            return Advice.yes(
                f"{red.op}-reduction on {red.var} "
                f"({len(red.sids)} update site(s)); parallel combining is "
                "associative-only (floating-point order changes)"
            )
        names = ", ".join(f"{r.op}:{r.var}" for r in info.reductions)
        return Advice.yes(f"recognised reductions: {names}")

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, var=var)
        if not advice.ok:
            raise TransformError(f"reduction: {advice.describe()}")
        info = ctx.analysis.loop_info[loop.sid]
        applied = []
        for red in info.reductions:
            if var and red.var != var.lower():
                continue
            entry = (red.op, red.var)
            if entry not in loop.reductions:
                loop.reductions.append(entry)
            applied.append(f"{red.op}:{red.var}")
        return "reduction(" + ", ".join(applied) + f") marked on loop {loop.var}"
