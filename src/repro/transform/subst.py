"""Variable substitution and renaming over AST fragments.

Used by unrolling (induction variable → literal), skewing (index change of
variables), scalar expansion (scalar → array element) and privatization
(renaming into a fresh local).
"""

from __future__ import annotations

from typing import List

from ..fortran.ast_nodes import (
    ArrayRef,
    Assign,
    BinOp,
    CallStmt,
    DoLoop,
    Expr,
    FuncRef,
    If,
    IOStmt,
    NameArgs,
    Stmt,
    UnOp,
    VarRef,
    copy_expr,
)


def substitute_var(expr: Expr, name: str, replacement: Expr) -> Expr:
    """Return ``expr`` with every ``VarRef(name)`` replaced (fresh copies).

    The replacement expression is deep-copied at each site.
    """

    if isinstance(expr, VarRef):
        if expr.name == name:
            return copy_expr(replacement)
        return expr
    if isinstance(expr, BinOp):
        expr.left = substitute_var(expr.left, name, replacement)
        expr.right = substitute_var(expr.right, name, replacement)
        return expr
    if isinstance(expr, UnOp):
        expr.operand = substitute_var(expr.operand, name, replacement)
        return expr
    if isinstance(expr, ArrayRef):
        expr.subs = [substitute_var(s, name, replacement) for s in expr.subs]
        return expr
    if isinstance(expr, (FuncRef, NameArgs)):
        expr.args = [substitute_var(a, name, replacement) for a in expr.args]
        return expr
    return expr


def substitute_in_stmt(st: Stmt, name: str, replacement: Expr) -> None:
    """Substitute a variable through one statement (recursively)."""

    if isinstance(st, Assign):
        st.target = substitute_var(st.target, name, replacement)
        st.expr = substitute_var(st.expr, name, replacement)
    elif isinstance(st, DoLoop):
        st.start = substitute_var(st.start, name, replacement)
        st.end = substitute_var(st.end, name, replacement)
        if st.step is not None:
            st.step = substitute_var(st.step, name, replacement)
        for inner in st.body:
            substitute_in_stmt(inner, name, replacement)
    elif isinstance(st, If):
        st.arms = [
            (
                substitute_var(c, name, replacement) if c is not None else None,
                b,
            )
            for c, b in st.arms
        ]
        for _, body in st.arms:
            for inner in body:
                substitute_in_stmt(inner, name, replacement)
    elif isinstance(st, CallStmt):
        st.args = [substitute_var(a, name, replacement) for a in st.args]
    elif isinstance(st, IOStmt):
        st.spec = [substitute_var(e, name, replacement) for e in st.spec]
        st.items = [substitute_var(e, name, replacement) for e in st.items]


def substitute_in_body(body: List[Stmt], name: str, replacement: Expr) -> None:
    for st in body:
        substitute_in_stmt(st, name, replacement)


def rename_var(body: List[Stmt], old: str, new: str) -> None:
    """Rename a scalar throughout a statement list (targets included)."""

    substitute_in_body(body, old, VarRef(0, new))


def map_scalar_to_array(
    body: List[Stmt], scalar: str, array: str, index: Expr
) -> None:
    """Rewrite every occurrence of ``scalar`` as ``array(index)``.

    Used by scalar expansion: the replacement ArrayRef gets a fresh copy of
    ``index`` at each site.
    """

    substitute_in_body(body, scalar, ArrayRef(0, array, [copy_expr(index)]))
