"""Transformation registry: name → instance, for the editor's command
interpreter and the benchmarks."""

from __future__ import annotations

from typing import Dict

from .base import Transformation
from .distribution import LoopDistribution
from .expansion import ScalarExpansion
from .extract import ExtractLoopBody
from .fusion import LoopFusion
from .inline import InlineCall
from .interchange import LoopInterchange
from .parallelize import Parallelize
from .privatize import Privatize
from .reduction import ReductionRewrite
from .reversal import LoopReversal
from .skewing import LoopSkewing
from .statements import StatementInterchange
from .stripmine import StripMine
from .unroll import LoopUnroll

TRANSFORMATIONS: Dict[str, Transformation] = {
    t.name: t
    for t in (
        Parallelize(),
        LoopInterchange(),
        LoopDistribution(),
        LoopFusion(),
        LoopReversal(),
        LoopSkewing(),
        StripMine(),
        LoopUnroll(),
        ScalarExpansion(),
        Privatize(),
        ReductionRewrite(),
        StatementInterchange(),
        InlineCall(),
        ExtractLoopBody(),
    )
}


def get_transformation(name: str) -> Transformation:
    """Look up a transformation by its command name."""

    try:
        return TRANSFORMATIONS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(TRANSFORMATIONS))
        raise KeyError(f"unknown transformation {name!r}; known: {known}") from None
