"""Loop unrolling.

Full unrolling (constant small trip count) replicates the body once per
iteration with the index substituted; partial unrolling by factor ``k``
replicates the body ``k`` times inside a stepped loop plus a remainder
loop.  Always semantics-preserving; profitable for tiny hot loops where
the branch overhead dominates (a memory-hierarchy transformation in
ParaScope's compiler family).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.symbolic import linear_of_expr
from ..fortran.ast_nodes import (
    BinOp,
    DoLoop,
    Num,
    Stmt,
    VarRef,
    copy_stmt,
)
from .base import Advice, TransformContext, Transformation, TransformError, find_parent
from .subst import substitute_in_stmt


class LoopUnroll(Transformation):
    name = "unroll"

    def diagnose(
        self,
        ctx: TransformContext,
        loop: DoLoop = None,
        factor: Optional[int] = None,
        **kwargs,
    ) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        if loop.step is not None and not (
            isinstance(loop.step, Num) and loop.step.value == 1
        ):
            return Advice.no("unrolling requires unit step")
        trip = self._const_trip(ctx, loop)
        if factor is None:  # full unroll
            if trip is None:
                return Advice.no("trip count unknown: full unroll impossible")
            if trip > 16:
                return Advice(
                    True, True, False, [f"trip count {trip} > 16: code bloat"]
                )
            return Advice.yes(f"fully unrolls {trip} iterations")
        if factor < 2:
            return Advice.no("unroll factor must be ≥ 2")
        return Advice.yes(f"unrolls {factor}× with remainder loop")

    def _const_trip(self, ctx: TransformContext, loop: DoLoop) -> Optional[int]:
        table = ctx.unit.symtab
        env = ctx.analysis.constants.linear_env(loop.sid)
        diff = (
            linear_of_expr(loop.end, table, env)
            - linear_of_expr(loop.start, table, env)
        ).int_value()
        return None if diff is None else diff + 1

    def apply(
        self,
        ctx: TransformContext,
        loop: DoLoop = None,
        factor: Optional[int] = None,
        **kwargs,
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, factor=factor)
        if not advice.ok:
            raise TransformError(f"unroll: {advice.describe()}")
        if factor is None:
            return self._full(ctx, loop)
        return self._partial(ctx, loop, factor)

    def _full(self, ctx: TransformContext, loop: DoLoop) -> str:
        table = ctx.unit.symtab
        env = ctx.analysis.constants.linear_env(loop.sid)
        start = linear_of_expr(loop.start, table, env).int_value()
        trip = self._const_trip(ctx, loop)
        if start is None or trip is None:
            raise TransformError("unroll: bounds not constant")
        where = find_parent(ctx.unit, loop)
        if where is None:
            raise TransformError("unroll: loop not found")
        body_list, index = where
        out: List[Stmt] = []
        for k in range(trip):
            for st in loop.body:
                clone = copy_stmt(st)
                substitute_in_stmt(clone, loop.var, Num(0, start + k))
                out.append(clone)
        body_list[index : index + 1] = out
        return f"fully unrolled {trip} iterations of loop {loop.var}"

    def _partial(self, ctx: TransformContext, loop: DoLoop, factor: int) -> str:
        # do i = lo, hi  →
        #   do i = lo, hi − (factor−1), factor
        #     body(i) … body(i + factor−1)
        #   end do
        #   do i = i_resume, hi   (remainder — expressed with a fresh var)
        where = find_parent(ctx.unit, loop)
        if where is None:
            raise TransformError("unroll: loop not found")
        body_list, index = where
        original_body = [copy_stmt(st) for st in loop.body]
        new_body: List[Stmt] = []
        for k in range(factor):
            for st in loop.body if k == 0 else original_body:
                clone = copy_stmt(st)
                if k:
                    substitute_in_stmt(
                        clone,
                        loop.var,
                        BinOp(0, "+", VarRef(0, loop.var), Num(0, k)),
                    )
                new_body.append(clone)
        from ..fortran.ast_nodes import copy_expr

        remainder = DoLoop(
            loop.line,
            None,
            -1,
            loop.var,
            # Remainder start: lo + ((hi − lo + 1) / factor) * factor
            BinOp(
                0,
                "+",
                copy_expr(loop.start),
                BinOp(
                    0,
                    "*",
                    BinOp(
                        0,
                        "/",
                        BinOp(
                            0,
                            "+",
                            BinOp(0, "-", copy_expr(loop.end), copy_expr(loop.start)),
                            Num(0, 1),
                        ),
                        Num(0, factor),
                    ),
                    Num(0, factor),
                ),
            ),
            copy_expr(loop.end),
            None,
            [copy_stmt(st) for st in loop.body],
        )
        loop.end = BinOp(0, "-", copy_expr(loop.end), Num(0, factor - 1))
        loop.step = Num(0, factor)
        loop.body = new_body
        body_list.insert(index + 1, remainder)
        return f"unrolled loop {loop.var} by {factor} (remainder loop added)"
