"""Transformation framework: Advice, contexts, and the base protocol.

"The system advises whether the transformation is applicable (is
syntactically correct), safe (preserves the semantics of the program) and
profitable (contributes to parallelization)."  :class:`Advice` carries
those three verdicts with human-readable reasons; the editor displays them
verbatim in the transformation dialog.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..dependence.driver import UnitAnalysis
from ..fortran.ast_nodes import DoLoop, ProcedureUnit, Stmt


@dataclass
class Advice:
    """Power-steering diagnosis for one transformation request."""

    applicable: bool
    safe: bool
    profitable: bool
    reasons: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.applicable and self.safe

    @staticmethod
    def no(reason: str) -> "Advice":
        return Advice(False, False, False, [reason])

    @staticmethod
    def unsafe(reason: str) -> "Advice":
        return Advice(True, False, False, [reason])

    @staticmethod
    def yes(*reasons: str, profitable: bool = True) -> "Advice":
        return Advice(True, True, profitable, list(reasons))

    def describe(self) -> str:
        verdict = []
        verdict.append("applicable" if self.applicable else "not applicable")
        verdict.append("safe" if self.safe else "UNSAFE")
        verdict.append("profitable" if self.profitable else "questionable profit")
        text = ", ".join(verdict)
        if self.reasons:
            text += ": " + "; ".join(self.reasons)
        return text


@dataclass
class TransformContext:
    """Everything a transformation needs: the unit and its analysis.

    Analyses go stale after ``apply``; the editor session reanalyzes the
    unit after every transformation (Ped's incremental-update behaviour,
    modelled here as a full per-procedure reanalysis).  ``source_file``
    gives interprocedural transformations (embedding) access to callee
    definitions.
    """

    unit: ProcedureUnit
    analysis: UnitAnalysis
    source_file: Optional[object] = None  # repro.fortran.SourceFile


class Transformation:
    """Base protocol.  Subclasses set ``name`` and implement both hooks."""

    name: str = "?"

    def diagnose(self, ctx: TransformContext, **kwargs) -> Advice:
        raise NotImplementedError

    def apply(self, ctx: TransformContext, **kwargs) -> str:
        """Perform the rewrite in place; returns a short change summary.

        Callers must have obtained an ``Advice`` with ``ok`` first —
        ``apply`` raises :class:`TransformError` otherwise.
        """

        raise NotImplementedError


class TransformError(Exception):
    """Raised when apply() is invoked for an inapplicable/unsafe request."""


def find_parent(
    unit: ProcedureUnit, target: Stmt
) -> Optional[Tuple[List[Stmt], int]]:
    """Locate the statement list containing ``target`` (and its index)."""

    def search(body: List[Stmt]) -> Optional[Tuple[List[Stmt], int]]:
        for i, st in enumerate(body):
            if st is target:
                return (body, i)
            for blk in st.blocks():
                got = search(blk)
                if got is not None:
                    return got
        return None

    return search(unit.body)


def perfect_nest(loop: DoLoop) -> List[DoLoop]:
    """The maximal perfect nest rooted at ``loop`` (outermost first)."""

    nest = [loop]
    body = loop.body
    while len(body) == 1 and isinstance(body[0], DoLoop):
        nest.append(body[0])
        body = body[0].body
    return nest


def require_ok(advice: Advice, name: str) -> None:
    if not advice.ok:
        raise TransformError(f"{name}: {advice.describe()}")
