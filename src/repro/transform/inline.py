"""Procedure embedding (inlining) — the paper's missing transformation.

"Embedding and extraction are not currently implemented in Ped."  The
experiences paper lists procedure embedding as the enhancement needed to
finish the gloop story: after fusing the callee loops, *interchange
across the procedure boundary* requires the callee's loop to be visible
in the caller.  This module implements embedding for CALL statements:

* formals are bound to actuals — scalar formals by substitution when the
  actual is a name or constant (safe because standard-conforming Fortran
  forbids writing through aliased arguments), array formals by rewriting
  element references onto the actual array (whole-array actuals map
  dimensions 1:1; the classic column-pass ``a(1, j)`` actual maps a
  rank-1 formal onto ``a(i, j)``);
* callee locals are renamed into fresh caller locals;
* COMMON declarations must agree (same block layout) and then need no
  rewriting;
* a single trailing RETURN is dropped; any other RETURN/STOP or DATA
  initialisation in the callee makes the embedding inapplicable.

After embedding, the ordinary intraprocedural machinery — interchange,
fusion, parallelization — applies to what used to be hidden behind the
call, which is precisely the interprocedural-transformation recipe of
Hall–Kennedy–McKinley.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..fortran.ast_nodes import (
    ArrayRef,
    CallStmt,
    DataDecl,
    DoLoop,
    Expr,
    Num,
    ProcedureUnit,
    ReturnStmt,
    SourceFile,
    Stmt,
    StopStmt,
    VarRef,
    copy_expr,
    copy_stmt,
    walk_expr,
    walk_statements,
)
from ..fortran.symbols import COMMON, FORMAL, PARAM, SymbolTable
from .base import Advice, TransformContext, Transformation, TransformError
from .subst import substitute_in_stmt


class InlineCall(Transformation):
    """Embed a callee's body at a CALL site."""

    name = "inline"

    def __init__(self, source: Optional[SourceFile] = None) -> None:
        self.source = source

    def _find_callee(self, ctx: TransformContext, name: str) -> Optional[ProcedureUnit]:
        sf = self.source or ctx.source_file
        if sf is None:
            return None
        try:
            return sf.unit(name)  # type: ignore[union-attr]
        except KeyError:
            return None

    def diagnose(self, ctx: TransformContext, call: CallStmt = None, **kwargs) -> Advice:
        if call is None or not isinstance(call, CallStmt):
            return Advice.no("no CALL statement selected")
        callee = self._find_callee(ctx, call.name)
        if callee is None:
            return Advice.no(f"no source for callee {call.name!r}")
        if callee.kind != "subroutine":
            return Advice.no("only subroutines can be embedded")
        if len(call.args) != len(callee.formals):
            return Advice.no("argument count mismatch")
        problems = self._check_body(callee)
        if problems:
            return Advice.no(problems)
        bind_issue = self._check_bindings(ctx, call, callee)
        if bind_issue:
            return Advice.no(bind_issue)
        common_issue = self._check_commons(ctx.unit, callee)
        if common_issue:
            return Advice.no(common_issue)
        has_loop = any(
            isinstance(st, DoLoop) for st in walk_statements(callee.body)
        )
        return Advice(
            True,
            True,
            has_loop,
            [
                f"embeds {call.name}'s body at line {call.line}",
                "exposes the callee's loops to interchange/fusion"
                if has_loop
                else "callee is straight-line code",
            ],
        )

    # -- checks ----------------------------------------------------------

    def _check_body(self, callee: ProcedureUnit) -> str:
        stmts = list(walk_statements(callee.body))
        for i, st in enumerate(stmts):
            if isinstance(st, StopStmt):
                return "callee contains STOP"
            if isinstance(st, ReturnStmt):
                is_last_top = (
                    st is callee.body[-1] and i == len(stmts) - 1
                )
                if not is_last_top:
                    return "callee has an early RETURN"
        for decl in callee.decls:
            if isinstance(decl, DataDecl):
                return "callee has DATA initialisation (SAVE semantics)"
        return ""

    def _check_bindings(
        self, ctx: TransformContext, call: CallStmt, callee: ProcedureUnit
    ) -> str:
        caller_table: SymbolTable = ctx.unit.symtab  # type: ignore[assignment]
        callee_table: SymbolTable = callee.symtab  # type: ignore[assignment]
        for idx, formal in enumerate(callee.formals):
            fsym = callee_table[formal]
            actual = call.args[idx]
            if fsym.is_array:
                if isinstance(actual, VarRef):
                    asym = caller_table.get(actual.name)
                    if asym is None or not asym.is_array:
                        return f"array formal {formal} bound to scalar actual"
                    if asym.rank != fsym.rank:
                        return (
                            f"array formal {formal}: rank mismatch "
                            f"({fsym.rank} vs {asym.rank})"
                        )
                elif isinstance(actual, ArrayRef):
                    asym = caller_table.get(actual.name)
                    if asym is None or not asym.is_array:
                        return f"unknown array actual for {formal}"
                    if fsym.rank != 1:
                        return (
                            f"array formal {formal}: element actuals are "
                            "supported for rank-1 formals only"
                        )
                    lead = actual.subs[0]
                    if not (isinstance(lead, Num) and lead.value == 1):
                        return (
                            f"array formal {formal}: only unit-offset "
                            "column actuals are supported"
                        )
                else:
                    return f"array formal {formal} bound to an expression"
            else:
                # Scalar formal: written formals need a name actual.
                if not isinstance(actual, (VarRef, Num)):
                    written = self._writes_formal(callee, formal)
                    if written:
                        return (
                            f"scalar formal {formal} is assigned but the "
                            "actual is an expression"
                        )
        return ""

    def _writes_formal(self, callee: ProcedureUnit, formal: str) -> bool:
        from ..analysis.defuse import stmt_defs

        for st in walk_statements(callee.body):
            must, may = stmt_defs(st, callee.symtab)  # type: ignore[arg-type]
            if formal in may:
                return True
        return False

    def _check_commons(self, caller: ProcedureUnit, callee: ProcedureUnit) -> str:
        ct: SymbolTable = caller.symtab  # type: ignore[assignment]
        et: SymbolTable = callee.symtab  # type: ignore[assignment]
        for block, members in et.common_blocks.items():
            caller_members = ct.common_blocks.get(block)
            if caller_members is None:
                return (
                    f"callee uses common /{block}/ not declared in the "
                    "caller (declare it first)"
                )
            if caller_members != members:
                return (
                    f"common /{block}/ member names differ between caller "
                    "and callee (positional remap not supported)"
                )
        return ""

    # -- apply -------------------------------------------------------------

    def apply(self, ctx: TransformContext, call: CallStmt = None, **kwargs) -> str:
        advice = self.diagnose(ctx, call=call)
        if not advice.ok:
            raise TransformError(f"inline: {advice.describe()}")
        callee = self._find_callee(ctx, call.name)
        assert callee is not None
        caller = ctx.unit
        caller_table: SymbolTable = caller.symtab  # type: ignore[assignment]
        callee_table: SymbolTable = callee.symtab  # type: ignore[assignment]

        body = [copy_stmt(st) for st in callee.body]
        if body and isinstance(body[-1], ReturnStmt):
            body.pop()

        # 1. Rename callee locals (incl. loop variables) to fresh names.
        renames: Dict[str, str] = {}
        for name, sym in callee_table.symbols.items():
            if sym.storage in (FORMAL, COMMON, PARAM, "function"):
                continue
            fresh = self._fresh(caller_table, name)
            renames[name] = fresh
            new_sym = caller_table.ensure(fresh)
            new_sym.typename = sym.typename
            if sym.dims is not None:
                new_sym.dims = [
                    (lo if lo is None else copy_expr(lo), copy_expr(hi))
                    for lo, hi in sym.dims
                ]
        for st in body:
            for old, new in renames.items():
                substitute_in_stmt(st, old, VarRef(0, new))
                _rename_loop_vars(st, old, new)
                _rename_array_targets(st, old, new)

        # 2. Parameters of the callee fold to their constant values.
        for name, sym in callee_table.symbols.items():
            if sym.storage == PARAM and sym.const_value is not None:
                for st in body:
                    substitute_in_stmt(st, name, copy_expr(sym.const_value))

        # 3. Bind formals.
        for idx, formal in enumerate(callee.formals):
            fsym = callee_table[formal]
            actual = call.args[idx]
            if fsym.is_array and isinstance(actual, ArrayRef):
                _rebase_array(body, formal, actual)
            else:
                for st in body:
                    substitute_in_stmt(st, formal, copy_expr(actual))
                    if isinstance(actual, VarRef):
                        _rename_loop_vars(st, formal, actual.name)
                        _rename_array_targets(st, formal, actual.name)

        # 4. Splice into the caller.
        from .base import find_parent

        where = find_parent(caller, call)
        if where is None:
            raise TransformError("inline: call site not found")
        parent_body, index = where
        parent_body[index : index + 1] = body
        return f"embedded {call.name} ({len(body)} statements)"

    def _fresh(self, table: SymbolTable, base: str) -> str:
        name = f"{base}_in"
        k = 1
        while table.get(name) is not None:
            name = f"{base}_in{k}"
            k += 1
        return name


def _rename_loop_vars(st: Stmt, old: str, new: str) -> None:
    for inner in walk_statements([st]):
        if isinstance(inner, DoLoop) and inner.var == old:
            inner.var = new


def _rename_array_targets(st: Stmt, old: str, new: str) -> None:
    """substitute_in_stmt rewrites VarRef targets but ArrayRef *names*
    live on the node; rename them explicitly."""

    for inner in walk_statements([st]):
        for expr in _stmt_exprs(inner):
            for node in walk_expr(expr):
                if isinstance(node, ArrayRef) and node.name == old:
                    node.name = new


def _stmt_exprs(st: Stmt):
    from ..fortran.ast_nodes import statement_exprs

    return list(statement_exprs(st))


def _rebase_array(body: List[Stmt], formal: str, actual: ArrayRef) -> None:
    """Map rank-r formal references ``x(s1..sr)`` onto the actual array:
    ``a(1, e2.., ek)`` actual → ``a(s1.., e2.., ek)``."""

    trailing = [copy_expr(e) for e in actual.subs[1:]]

    def rewrite(expr: Expr) -> None:
        for node in walk_expr(expr):
            if isinstance(node, ArrayRef) and node.name == formal:
                node.name = actual.name
                node.subs = list(node.subs) + [copy_expr(e) for e in trailing]

    for st in walk_statements(body):
        for expr in _stmt_exprs(st):
            rewrite(expr)
