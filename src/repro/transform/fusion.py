"""Loop fusion.

Two adjacent loops with conformable headers fuse into one, raising
granularity and enabling interchange across what used to be separate
loops (the gloop recipe: "loops in gloop contained multiple calls so the
loops of the called procedures were first fused before applying
interchange").

Safety — the classic fusion-preventing condition: a dependence from the
first loop's body to the second's that would become *backward
loop-carried* after fusion (the fused iteration ``i`` of the second body
would need a value the first body only produces at some iteration
``> i``).  The check builds the fused candidate, runs the dependence
analyzer on it, and looks for carried edges from former-second-body
statements to former-first-body statements.
"""

from __future__ import annotations

from typing import List, Optional

from ..fortran.ast_nodes import DoLoop, ProcedureUnit, copy_stmt, walk_statements
from ..fortran.printer import expr_to_str
from .base import Advice, TransformContext, Transformation, TransformError, find_parent


class LoopFusion(Transformation):
    name = "fuse"

    def diagnose(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> Advice:
        """Diagnose fusing ``loop`` with the loop textually after it."""

        if loop is None:
            return Advice.no("no loop selected")
        nxt = self._next_loop(ctx.unit, loop)
        if nxt is None:
            return Advice.no("no adjacent DO loop follows the selection")
        if not self._headers_conform(loop, nxt):
            return Advice.no(
                "loop headers differ (bounds/step must match textually)"
            )
        scalar_issue = self._scalar_crossflow(ctx, loop, nxt)
        if scalar_issue:
            return Advice.unsafe(scalar_issue)
        if self._fusion_preventing(ctx, loop, nxt):
            return Advice.unsafe(
                "fusion-preventing dependence: the second loop consumes "
                "values the first produces in later iterations"
            )
        return Advice.yes("headers conform; no fusion-preventing dependence")

    def _scalar_crossflow(self, ctx: TransformContext, a: DoLoop, b: DoLoop) -> str:
        """Scalars flowing between the loops prevent fusion.

        The second loop's upward-exposed scalar reads see the first loop's
        *final* value; interleaving the bodies would feed them
        per-iteration values instead (and symmetrically for scalars the
        second loop writes that the first reads across what used to be a
        complete execution).  Loop control variables are exempt — fusion
        renames them.
        """

        from ..analysis.defuse import stmt_defs
        from ..analysis.kill import upward_exposed

        table = ctx.unit.symtab

        def scalar_defs(loop: DoLoop):
            out = set()
            for st in walk_statements(loop.body):
                must, may = stmt_defs(st, table)
                out |= {
                    v
                    for v in may
                    if (sym := table.get(v)) is not None and not sym.is_array
                }
            return out - {loop.var, a.var, b.var}

        def exposed_scalars(loop: DoLoop):
            return {
                v
                for v in upward_exposed(loop, table)
                if (sym := table.get(v)) is not None and not sym.is_array
            } - {loop.var, a.var, b.var}

        forward = scalar_defs(a) & exposed_scalars(b)
        if forward:
            return (
                "scalar(s) flow between the loops: "
                + ", ".join(sorted(forward))
                + " — the second loop reads the first loop's final value"
            )
        backward = scalar_defs(b) & exposed_scalars(a)
        if backward:
            return (
                "the first loop reads scalar(s) the second overwrites: "
                + ", ".join(sorted(backward))
            )
        return ""

    def _next_loop(self, unit: ProcedureUnit, loop: DoLoop) -> Optional[DoLoop]:
        where = find_parent(unit, loop)
        if where is None:
            return None
        body, idx = where
        if idx + 1 < len(body) and isinstance(body[idx + 1], DoLoop):
            return body[idx + 1]
        return None

    def _headers_conform(self, a: DoLoop, b: DoLoop) -> bool:
        def step_str(lp: DoLoop) -> str:
            return expr_to_str(lp.step) if lp.step is not None else "1"

        return (
            expr_to_str(a.start) == expr_to_str(b.start)
            and expr_to_str(a.end) == expr_to_str(b.end)
            and step_str(a) == step_str(b)
        )

    def _fusion_preventing(
        self, ctx: TransformContext, a: DoLoop, b: DoLoop
    ) -> bool:
        from ..dependence.driver import AnalysisConfig, analyze_unit
        from ..fortran.ast_nodes import number_statements

        # Build a candidate: a throwaway clone of the unit with the loops
        # fused, analyzed in isolation.
        unit = ctx.unit
        clone = ProcedureUnit(
            unit.kind,
            unit.name,
            list(unit.formals),
            unit.rettype,
            unit.decls,
            [copy_stmt(st) for st in unit.body],
            unit.line,
            unit.symtab,
        )
        # Locate the cloned loops by structural position.
        path = _path_to(unit.body, a)
        a2 = _by_path(clone.body, path)
        where = find_parent(clone, a2)
        assert where is not None
        body, idx = where
        b2 = body[idx + 1]
        n_first = len(a2.body)
        fused = DoLoop(
            a2.line,
            None,
            -1,
            a2.var,
            a2.start,
            a2.end,
            a2.step,
            list(a2.body) + [_renamed(st, b2.var, a2.var) for st in b2.body],
        )
        body[idx : idx + 2] = [fused]
        number_statements(clone)
        analysis = analyze_unit(clone, AnalysisConfig(control_deps=False))
        first_sids = {st.sid for st in walk_statements(fused.body[:n_first])}
        second_sids = {st.sid for st in walk_statements(fused.body[n_first:])}
        for dep in analysis.graph.carried_by(fused):
            if dep.src_sid in second_sids and dep.dst_sid in first_sids:
                return True
        return False

    def apply(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> str:
        advice = self.diagnose(ctx, loop=loop)
        if not advice.ok:
            raise TransformError(f"fuse: {advice.describe()}")
        nxt = self._next_loop(ctx.unit, loop)
        assert nxt is not None
        where = find_parent(ctx.unit, loop)
        assert where is not None
        body, idx = where
        loop.body.extend(_renamed(st, nxt.var, loop.var) for st in nxt.body)
        del body[idx + 1]
        return f"fused loop {nxt.var} (line {nxt.line}) into loop {loop.var}"


def _renamed(st, old: str, new: str):
    from .subst import substitute_in_stmt
    from ..fortran.ast_nodes import VarRef

    if old != new:
        substitute_in_stmt(st, old, VarRef(0, new))
    return st


def _path_to(body, target) -> List[int]:
    """Structural index path from a body list to a statement."""

    def search(stmts, path):
        for i, st in enumerate(stmts):
            if st is target:
                return path + [i]
            j = 0
            for blk in st.blocks():
                got = search(blk, path + [i, j])
                if got is not None:
                    return got
                j += 1
        return None

    got = search(body, [])
    if got is None:
        raise ValueError("statement not found")
    return got


def _by_path(body, path: List[int]):
    """Follow a structural index path produced by :func:`_path_to`."""

    stmts = body
    i = 0
    while True:
        idx = path[i]
        st = stmts[idx]
        if i == len(path) - 1:
            return st
        blk_idx = path[i + 1]
        blocks = list(st.blocks())
        stmts = blocks[blk_idx]
        i += 2
