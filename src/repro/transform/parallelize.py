"""Loop parallelization — the end goal of every Ped session.

Safety: the loop may run its iterations concurrently when no loop-carried
data dependence remains after discounting dependences removable by
privatization (killed scalars, killed arrays), recognised reductions and
auxiliary induction variables, and after honouring the user's dependence
markings (rejected edges do not block).  I/O statements and premature
exits stay sequential.

Profitability: a parallel loop must amortise its fork/join overhead; the
diagnosis consults the static performance estimator when available, and
otherwise falls back to a trip-count heuristic.
"""

from __future__ import annotations

from typing import List

from ..fortran.ast_nodes import DoLoop
from .base import Advice, TransformContext, Transformation, TransformError


class Parallelize(Transformation):
    name = "parallelize"

    def diagnose(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        info = ctx.analysis.loop_info.get(loop.sid)
        if info is None:
            return Advice.no("selection is not a DO loop of this procedure")
        blocking = info.blocking_deps()
        reasons: List[str] = []
        if blocking:
            shown = ", ".join(
                f"{d.kind} dep on {d.var} {d.vector_str()}" for d in blocking[:4]
            )
            more = f" (+{len(blocking) - 4} more)" if len(blocking) > 4 else ""
            return Advice.unsafe(f"loop-carried dependences remain: {shown}{more}")
        hard = [o for o in info.obstacles if "I/O" in o or "exit" in o or "branch" in o]
        if hard:
            return Advice.unsafe("; ".join(hard))
        if info.privatizable:
            names = ", ".join(p.name for p in info.privatizable)
            reasons.append(f"privatizes scalars: {names}")
        if info.privatizable_arrays:
            reasons.append(
                "privatizes arrays: " + ", ".join(sorted(info.privatizable_arrays))
            )
        if info.reductions:
            reasons.append(
                "parallel reductions: " + ", ".join(r.var for r in info.reductions)
            )
        profitable, estimate_note = self._profitable(ctx, loop)
        if estimate_note:
            reasons.append(estimate_note)
        return Advice(True, True, profitable, reasons)

    def _profitable(self, ctx: TransformContext, loop: DoLoop):
        """Consult the static performance estimator: parallel execution
        must beat sequential under the machine model's fork/join cost —
        the paper's requested "guidance in selecting transformations"."""

        from ..perf.estimator import PerformanceEstimator

        est = PerformanceEstimator()
        ce = est.loop_estimate(loop, ctx.analysis)
        if ce.parallel < ce.sequential:
            return True, (
                f"estimated speedup {ce.speedup:.1f}x on "
                f"{est.machine.n_procs} procs"
            )
        return False, (
            f"estimated slowdown: fork/join ({est.machine.fork_join:.0f} "
            f"cycles) dominates {ce.sequential:.0f}-cycle loop"
        )

    def apply(self, ctx: TransformContext, loop: DoLoop = None, **kwargs) -> str:
        advice = self.diagnose(ctx, loop=loop)
        if not advice.ok:
            raise TransformError(f"parallelize: {advice.describe()}")
        info = ctx.analysis.loop_info[loop.sid]
        loop.parallel = True
        loop.private = sorted(
            {p.name for p in info.privatizable} | set(info.privatizable_arrays)
        )
        loop.reductions = [(r.op, r.var) for r in info.reductions]
        parts = [f"loop {loop.var} marked DOALL"]
        if loop.private:
            parts.append(f"private({', '.join(loop.private)})")
        if loop.reductions:
            parts.append(
                "reduction(" + ", ".join(f"{op}:{v}" for op, v in loop.reductions) + ")"
            )
        return "; ".join(parts)
