"""Privatization: give each iteration its own copy of a scalar or array.

Safe for scalars proved killed on every iteration (scalar kill analysis)
and arrays fully overwritten before any read (array kill analysis —
``slab2d``'s requirement).  The rewrite records the name on the loop's
``private`` list; the parallel code generator/simulator allocates
per-iteration storage.
"""

from __future__ import annotations

from ..fortran.ast_nodes import DoLoop
from .base import Advice, TransformContext, Transformation, TransformError


class Privatize(Transformation):
    name = "privatize"

    def diagnose(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> Advice:
        if loop is None:
            return Advice.no("no loop selected")
        if not var:
            return Advice.no("no variable selected")
        var = var.lower()
        info = ctx.analysis.loop_info.get(loop.sid)
        if info is None:
            return Advice.no("selection is not a DO loop of this procedure")
        scalars = {p.name: p for p in info.privatizable}
        if var in scalars:
            extra = (
                ["live after loop: last-value copy required"]
                if scalars[var].needs_last_value
                else []
            )
            return Advice.yes(
                f"{var} is killed on every iteration (scalar kill analysis)",
                *extra,
            )
        if var in info.privatizable_arrays:
            return Advice.yes(
                f"array {var} is fully overwritten before any read each "
                "iteration (array kill analysis)"
            )
        table = ctx.unit.symtab
        sym = table.get(var) if table is not None else None
        if sym is None:
            return Advice.no(f"unknown variable {var}")
        return Advice.unsafe(
            f"{var} may carry a value between iterations (not killed); "
            "privatizing it would change results"
        )

    def apply(
        self, ctx: TransformContext, loop: DoLoop = None, var: str = "", **kwargs
    ) -> str:
        advice = self.diagnose(ctx, loop=loop, var=var)
        if not advice.ok:
            raise TransformError(f"privatize: {advice.describe()}")
        var = var.lower()
        if var not in loop.private:
            loop.private.append(var)
            loop.private.sort()
        return f"{var} marked private on loop {loop.var}"
