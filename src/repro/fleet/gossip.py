"""Cross-shard memo gossip: warm pair-test verdicts fleet-wide.

Each shard server keeps a :class:`~repro.dependence.hierarchy.SharedPairMemo`
— content-addressed pair-test verdicts that make re-analysis of a
program (or an edited variant of it) cheap.  On one host the memo-delta
files under the store directory spread verdicts between processes; in a
fleet the shards share no filesystem, so :class:`MemoGossip` moves the
same entries over the protocol instead.

One gossip round is pull-then-push:

1. ``memo.pull`` every shard's entries (cheap: entries are small tuples
   of scalars, capped by the memo's own ``MAX_ENTRIES``);
2. form the union;
3. ``memo.push`` to each shard exactly the entries it is missing.

Entries are content-addressed and ``absorb`` is an idempotent monotone
merge, so rounds are safe to repeat, overlap with live analysis, and
tolerate any interleaving with other gossipers — the same reasoning
that makes the on-disk delta exchange safe (see
:mod:`repro.service.storelock`).  An unreachable shard is simply
skipped for the round and caught up on the next one; gossip is an
optimization, never a correctness requirement.

Run it inside the router process (``fleet route --gossip-interval N``)
or standalone; it only needs shard addresses.
"""

from __future__ import annotations

import logging
import threading
from typing import Dict, List, Optional

from ..incremental.stats import EngineStats
from ..service import protocol
from ..service.client import PedClient, PedRequestError, ServerUnavailableError

__all__ = ["MemoGossip"]

log = logging.getLogger(__name__)


class MemoGossip:
    """Periodic pull/union/push of shared pair-test memos across shards."""

    def __init__(
        self,
        shards: List[str],
        *,
        interval: float = 5.0,
        retries: int = 1,
        backoff: float = 0.05,
        jitter: float = 0.25,
        timeout: float = 60.0,
        stats: Optional[EngineStats] = None,
    ) -> None:
        if not shards:
            raise ValueError("gossip needs at least one shard")
        self.shards = list(shards)
        self.interval = interval
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.timeout = timeout
        self.stats = stats or EngineStats()
        self._clients: Dict[str, PedClient] = {}
        self._clients_lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------

    def _client(self, shard: str) -> PedClient:
        with self._clients_lock:
            client = self._clients.get(shard)
            if client is not None:
                return client
        host, _, port = shard.rpartition(":")
        client = PedClient.connect(
            host or "127.0.0.1",
            int(port),
            retries=self.retries,
            backoff=self.backoff,
            jitter=self.jitter,
        )
        with self._clients_lock:
            race = self._clients.setdefault(shard, client)
        if race is not client:
            client.close()
        return race

    def _drop(self, shard: str) -> None:
        with self._clients_lock:
            client = self._clients.pop(shard, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass

    # ------------------------------------------------------------------

    def run_once(self) -> Dict:
        """One pull/union/push round; returns a summary for logs/tests."""

        per_shard: Dict[str, Dict] = {}
        union: Dict = {}
        unreachable: List[str] = []
        for shard in self.shards:
            try:
                result = self._client(shard).request(
                    "memo.pull", wait=self.timeout
                )
                entries = protocol.decode_memo_entries(
                    result.get("entries") or []
                )
            except (ServerUnavailableError, PedRequestError, OSError) as exc:
                self._drop(shard)
                unreachable.append(shard)
                log.debug("gossip pull from %s failed: %s", shard, exc)
                continue
            per_shard[shard] = entries
            for key, value in entries.items():
                union.setdefault(key, value)
        pushed = 0
        for shard, have in per_shard.items():
            missing = {
                key: value
                for key, value in union.items()
                if key not in have
            }
            if not missing:
                continue
            try:
                self._client(shard).request(
                    "memo.push",
                    wait=self.timeout,
                    entries=protocol.encode_memo_entries(missing),
                )
            except (ServerUnavailableError, PedRequestError, OSError) as exc:
                self._drop(shard)
                unreachable.append(shard)
                log.debug("gossip push to %s failed: %s", shard, exc)
                continue
            pushed += len(missing)
        self.stats.bump("gossip.rounds")
        self.stats.bump("gossip.pulled", sum(map(len, per_shard.values())))
        self.stats.bump("gossip.pushed", pushed)
        if unreachable:
            self.stats.bump("gossip.unreachable", len(unreachable))
        return {
            "shards": len(per_shard),
            "union": len(union),
            "pushed": pushed,
            "unreachable": sorted(set(unreachable)),
        }

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Gossip every ``interval`` seconds on a daemon thread."""

        if self._thread is not None:
            return

        def loop() -> None:
            while not self._stop.wait(self.interval):
                try:
                    self.run_once()
                except Exception:  # noqa: BLE001 — keep gossiping
                    log.warning("gossip round failed", exc_info=True)

        self._thread = threading.Thread(
            target=loop, name="memo-gossip", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._clients_lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass
