"""The shard router: one addressable front end over a ring of shards.

A :class:`FleetRouter` speaks the same host interface the asyncio
transport serves (``execute(req, emit)`` + lifecycle attributes), so a
router *process* is just the fleet transport wrapped around this class
instead of a :class:`~repro.service.session_host.PedServer`.  Clients
cannot tell the difference: same envelopes, same error types, same
streamed events — the router forwards transparently.

**Routing.**  Every request carries a *program key*: the ``session``
name for editing ops, the program name for corpus programs.  Keys map
onto shard servers through a consistent-hash ring
(:class:`~repro.fleet.ring.HashRing`), so a fleet of N shards serves
one corpus with each program's analysis (and its session state, warm
memos, cached records) living on exactly one shard.  Ops with no key
(``graph.describe``) hash on the op name — any shard answers
identically.

**Fan-out.**  ``corpus.submit`` partitions the batch's programs onto
the ring and forwards one sub-batch per shard in parallel; per-shard
partial snapshots merge into one aggregate reply (and streamed
``corpus.program`` events are renumbered to fleet-wide ``done/total``
counts).  ``corpus.status`` / ``corpus.results`` merge the same way.
``corpus.query`` pulls every shard's raw result records and runs the
*same* rollup code a single host runs over the union — fleet aggregates
are byte-identical to the single-host run by construction.

**Shard death.**  Forwarding uses the retrying client
(:class:`~repro.service.client.ServerUnavailableError` after bounded
exponential backoff).  When a shard stays unreachable the router marks
it dead, rehashes the work onto the next node in the key's ring
preference and counts ``router.rehash``; corpus programs whose retry
budget exhausts become ``shard-lost`` error records in the merged reply
— the batch completes, losses are explicit, nothing hangs.  Dead shards
are retried last on later requests, so a restarted shard heals back
into the ring without operator action.

**Shard wire mode.**  Each lazily created shard client climbs the v6
negotiation ladder to ``wire`` ("json", "frames" or the default
"compress"), falling back gracefully one rung at a time — a fleet can
mix v6 shards with older ones and every hop just runs at the best level
both ends speak.  When a compressed shard coalesces a burst of progress
events into one multi-record frame, the router relays the burst *as a
burst*: the shard client delivers it as one list, the router re-emits
it as one ``events.batch`` pseudo-event, and the client-facing
transport ships it as one frame again (re-deflated against that
connection's own dictionaries — dictionaries are per-connection
baselines, so bytes are re-encoded but the frame structure, ordering
and event payloads survive the hop intact).

**Memo gossip.**  ``memo.pull`` unions the shared pair-test memo across
shards and ``memo.push`` fans entries to every shard — the ops
:class:`~repro.fleet.gossip.MemoGossip` drives on an interval so a
verdict proved on one shard warms the whole fleet.

Cancellation (``cancel``) is connection-local on the router: forwarded
requests run under the shard client's own correlation ids, so the
router acknowledges cancels but cannot retarget in-flight shard work.
"""

from __future__ import annotations

import logging
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Set

from ..incremental.stats import EngineStats
from ..pipeline.aggregate import AGGREGATES, run_aggregate
from ..service import protocol
from ..service.client import (
    PedClient,
    PedRequestError,
    ServerUnavailableError,
)
from ..service.metrics import ConnectionGauge
from .ring import HashRing

__all__ = ["FleetRouter"]

log = logging.getLogger(__name__)


class _BadRequest(Exception):
    pass


class _ShardLost(Exception):
    """Every candidate shard for a key is unreachable."""


class FleetRouter:
    """Routes protocol requests onto a consistent-hash ring of shards."""

    def __init__(
        self,
        shards: List[str],
        *,
        retries: int = 2,
        backoff: float = 0.05,
        jitter: float = 0.25,
        replicas: int = 64,
        max_workers: int = 16,
        max_request_bytes: int = protocol.MAX_REQUEST_BYTES,
        forward_timeout: float = 600.0,
        stats: Optional[EngineStats] = None,
        wire: str = "compress",
    ) -> None:
        if not shards:
            raise ValueError("a fleet router needs at least one shard")
        if wire not in ("json", "frames", "compress"):
            raise ValueError(
                f"wire must be 'json', 'frames' or 'compress', not {wire!r}"
            )
        self.ring = HashRing(shards, replicas=replicas)
        self.wire = wire
        self.retries = retries
        self.backoff = backoff
        self.jitter = jitter
        self.forward_timeout = forward_timeout
        self.stats = stats or EngineStats()
        self.max_request_bytes = max_request_bytes
        self.connections = ConnectionGauge()
        self.started_monotonic = time.monotonic()
        self.shutdown_event = threading.Event()
        self._work = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="fleet-route"
        )
        # Fan-out runs on its own pool: ``_work`` is the pool the
        # transport drives ``execute`` on, and a corpus fan-out waiting
        # for sub-tasks queued behind it on the same pool would deadlock.
        self._fan = ThreadPoolExecutor(
            max_workers=max(4, max_workers), thread_name_prefix="fleet-fan"
        )
        self._clients: Dict[str, PedClient] = {}
        self._clients_lock = threading.Lock()
        self._dead: Set[str] = set()
        self._listeners: Dict[int, Callable[[str, Dict], None]] = {}
        self._listeners_lock = threading.Lock()
        self._listener_ids = 0
        #: Corpus job -> the shards holding its programs.
        self._job_shards: Dict[str, Set[str]] = {}
        #: Corpus job -> program -> shard-lost error record.
        self._lost: Dict[str, Dict[str, Dict]] = {}
        self._jobs_lock = threading.Lock()
        self._job_ids = 0

    # ------------------------------------------------------------------
    # host interface (what the transport needs)
    # ------------------------------------------------------------------

    @property
    def executor(self) -> ThreadPoolExecutor:
        return self._work

    def close(self) -> None:
        self.shutdown_event.set()
        self._work.shutdown(wait=False, cancel_futures=True)
        self._fan.shutdown(wait=False, cancel_futures=True)
        with self._clients_lock:
            clients, self._clients = dict(self._clients), {}
        for client in clients.values():
            try:
                client.close()
            except Exception:  # noqa: BLE001 — teardown best-effort
                pass

    def request_cancel(self, target) -> None:
        # Connection-local (see module docstring): acknowledge, no-op.
        self.stats.bump("router.cancel_ignored")

    def add_listener(self, sink: Callable[[str, Dict], None]) -> int:
        with self._listeners_lock:
            self._listener_ids += 1
            token = self._listener_ids
            self._listeners[token] = sink
        return token

    def remove_listener(self, token: int) -> None:
        with self._listeners_lock:
            self._listeners.pop(token, None)

    def _notify(self, kind: str, data: Dict) -> None:
        with self._listeners_lock:
            sinks = list(self._listeners.values())
        for sink in sinks:
            try:
                sink(kind, data)
            except Exception:  # noqa: BLE001 — one dead sink ≠ all
                log.warning("broadcast sink failed", exc_info=True)

    # ------------------------------------------------------------------
    # shard connections
    # ------------------------------------------------------------------

    def _client(self, shard: str) -> PedClient:
        """The (shared, lazily created) client for one shard."""

        with self._clients_lock:
            client = self._clients.get(shard)
        if client is not None:
            return client
        host, _, port = shard.rpartition(":")
        client = PedClient.connect(
            host or "127.0.0.1",
            int(port),
            retries=self.retries,
            backoff=self.backoff,
            jitter=self.jitter,
        )
        # Relay shard broadcasts (invalidation) to this router's
        # clients; the shard's null-id events keep their null id.
        client.add_event_listener(
            lambda ev: self._notify(ev.kind, ev.data)
        )
        # Climb the negotiation ladder to the configured wire mode;
        # every rung falls back gracefully, so an old shard that only
        # speaks JSON or v5 frames still joins the ring.
        if self.wire in ("frames", "compress"):
            if client.negotiate_frames():
                self.stats.bump("router.wire_frames")
                if self.wire == "compress" and client.negotiate_compression():
                    self.stats.bump("router.wire_compress")
        with self._clients_lock:
            race = self._clients.get(shard)
            if race is not None:
                client.close()
                return race
            self._clients[shard] = client
        self._dead.discard(shard)
        return client

    def _drop_client(self, shard: str) -> None:
        with self._clients_lock:
            client = self._clients.pop(shard, None)
        if client is not None:
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass
        self._dead.add(shard)
        self.stats.bump("router.shard_lost")
        log.warning("shard %s unreachable — marked dead", shard)

    def _candidates(self, key: str) -> List[str]:
        """Ring preference for ``key``, live shards first, dead ones
        last (so a restarted shard heals without operator action)."""

        pref = self.ring.preference(key)
        live = [s for s in pref if s not in self._dead]
        dead = [s for s in pref if s in self._dead]
        return live + dead

    def _forward(
        self,
        shard: str,
        op: str,
        params: Dict,
        emit: Optional[Callable[[str, Dict], None]] = None,
        on_event: Optional[Callable] = None,
        on_batch: Optional[Callable] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """One request to one shard; raises on transport loss."""

        try:
            client = self._client(shard)
        except ServerUnavailableError:
            self._drop_client(shard)
            raise
        stream = emit is not None or on_event is not None
        sink = on_event
        batch_sink = on_batch
        if sink is None and emit is not None:
            def sink(ev):  # noqa: E306 — local relay
                emit(ev.kind, ev.data)

            if batch_sink is None:
                # A coalesced shard frame relays as one batch event, so
                # the client-facing transport ships one frame again.
                def batch_sink(evs):  # noqa: E306 — local relay
                    self.stats.bump("router.batches_relayed")
                    emit(
                        protocol.EV_BATCH,
                        {
                            "events": [
                                {"kind": ev.kind, "data": ev.data}
                                for ev in evs
                            ]
                        },
                    )
        try:
            pending = client.submit(
                op,
                stream=stream,
                on_event=sink,
                on_batch=batch_sink,
                **params,
            )
            result = pending.result(timeout or self.forward_timeout)
        except ServerUnavailableError:
            self._drop_client(shard)
            raise
        except PedRequestError as exc:
            if exc.type == "connection":
                # The shard died with this request in flight.
                self._drop_client(shard)
                raise ServerUnavailableError(exc.message) from exc
            raise
        self.stats.bump("router.forwarded")
        return result

    def _forward_routed(
        self,
        key: str,
        op: str,
        params: Dict,
        emit: Optional[Callable[[str, Dict], None]] = None,
        timeout: Optional[float] = None,
    ) -> Dict:
        """Forward along ``key``'s ring preference until a shard
        answers; bounded by ring size, counts each rehash."""

        last: Optional[Exception] = None
        for attempt, shard in enumerate(self._candidates(key)):
            if attempt:
                self.stats.bump("router.rehash")
            try:
                return self._forward(
                    shard, op, params, emit=emit, timeout=timeout
                )
            except ServerUnavailableError as exc:
                last = exc
                continue
        raise _ShardLost(
            f"no shard reachable for key {key!r}: {last}"
        )

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(
        self,
        req: Dict,
        emit: Optional[Callable[[str, Dict], None]] = None,
    ) -> Dict:
        """Run one request to a terminal reply envelope (host API)."""

        rid = req.get("id")
        op = req.get("op")
        streaming = emit if (emit is not None and req.get("stream")) else None
        try:
            if not isinstance(op, str):
                raise _BadRequest("request needs an 'op' string")
            with self.stats.timer(f"req.{op}"):
                local = getattr(
                    self,
                    f"_op_{op.replace('-', '_').replace('.', '_')}",
                    None,
                )
                if local is not None:
                    result = local(req, streaming)
                else:
                    result = self._route(req, streaming)
            return protocol.reply_ok(rid, result)
        except _BadRequest as exc:
            return protocol.reply_error(rid, protocol.BAD_REQUEST, str(exc))
        except _ShardLost as exc:
            return protocol.reply_error(rid, protocol.SHARD_LOST, str(exc))
        except PedRequestError as exc:
            # Transparent: the shard's structured error passes through.
            return protocol.reply_error(rid, exc.type, exc.message)
        except Exception as exc:  # noqa: BLE001 — must answer the client
            log.exception("router error handling %r", op)
            return protocol.reply_error(
                rid, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )

    def _route(self, req: Dict, emit) -> Dict:
        """Default path: one shard, chosen by the request's key."""

        op = req["op"]
        session = req.get("session")
        key = session if isinstance(session, str) and session else op
        params = {
            k: v
            for k, v in req.items()
            if k not in ("id", "op", "stream", "seq")
        }
        timeout = params.get("timeout")
        return self._forward_routed(
            key,
            op,
            params,
            emit=emit,
            timeout=float(timeout) + 5.0 if timeout is not None else None,
        )

    # ------------------------------------------------------------------
    # local ops
    # ------------------------------------------------------------------

    def _op_ping(self, req: Dict, emit) -> Dict:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "fleet": {
                "shards": len(self.ring),
                "dead": sorted(self._dead),
            },
        }

    def _op_fleet_topology(self, req: Dict, emit) -> Dict:
        return {
            "shards": self.ring.nodes,
            "dead": sorted(self._dead),
            "replicas": self.ring.replicas,
        }

    def _op_shutdown(self, req: Dict, emit) -> Dict:
        if req.get("fleet"):
            for shard in self.ring.nodes:
                try:
                    self._forward(shard, "shutdown", {}, timeout=10.0)
                except (ServerUnavailableError, PedRequestError):
                    pass
        self.shutdown_event.set()
        return {"shutting_down": True}

    def _op_stats(self, req: Dict, emit) -> Dict:
        return self.stats.snapshot()

    def _op_metrics(self, req: Dict, emit) -> Dict:
        """Fleet-wide metrics: per-shard counters summed, router gauges
        overlaid (``server.*`` describes *this* routing tier)."""

        merged: Dict[str, float] = {}
        reachable = 0
        for shard in self.ring.nodes:
            try:
                shard_metrics = self._forward(
                    shard, "metrics", {}, timeout=30.0
                )["metrics"]
            except (ServerUnavailableError, PedRequestError, _ShardLost):
                continue
            reachable += 1
            for key, value in shard_metrics.items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        for key, value in self.stats.counters.items():
            merged[key] = merged.get(key, 0) + value
        merged["server.connections.open"] = self.connections.open
        merged["server.connections.peak"] = self.connections.peak
        merged["server.uptime_s"] = (
            time.monotonic() - self.started_monotonic
        )
        merged["fleet.shards"] = len(self.ring)
        merged["fleet.shards.reachable"] = reachable
        merged["fleet.shards.dead"] = len(self._dead)
        # Ratios don't sum — recompute the fleet-wide one from totals.
        raw = merged.get("net.bytes_out_raw", 0)
        merged["net.compress_ratio"] = (
            merged.get("net.bytes_out", 0) / raw if raw else 1.0
        )
        return {"metrics": merged}

    # ------------------------------------------------------------------
    # memo gossip fan-out
    # ------------------------------------------------------------------

    def _op_memo_pull(self, req: Dict, emit) -> Dict:
        """Union of every reachable shard's shared memo entries."""

        union: Dict = {}
        for shard in self.ring.nodes:
            try:
                result = self._forward(shard, "memo.pull", {}, timeout=60.0)
            except (ServerUnavailableError, PedRequestError):
                continue
            for key, value in protocol.decode_memo_entries(
                result.get("entries") or []
            ).items():
                union.setdefault(key, value)
        return {
            "count": len(union),
            "total": len(union),
            "entries": protocol.encode_memo_entries(union),
        }

    def _op_memo_push(self, req: Dict, emit) -> Dict:
        """Fan pushed entries to every reachable shard."""

        entries = req.get("entries")
        absorbed = 0
        reached = 0
        for shard in self.ring.nodes:
            try:
                result = self._forward(
                    shard, "memo.push", {"entries": entries}, timeout=60.0
                )
            except (ServerUnavailableError, PedRequestError):
                continue
            reached += 1
            absorbed += result.get("absorbed", 0)
        if reached == 0:
            raise _ShardLost("no shard reachable for memo.push")
        return {"absorbed": absorbed, "shards": reached}

    # ------------------------------------------------------------------
    # corpus fan-out
    # ------------------------------------------------------------------

    def _corpus_key(self, req: Dict, field: str = "job") -> str:
        job = req.get(field)
        if not isinstance(job, str) or not job:
            raise _BadRequest(f"corpus op needs a '{field}' id")
        return job

    def _job_shard_set(self, job: str) -> Set[str]:
        with self._jobs_lock:
            shards = self._job_shards.get(job)
        if shards is None:
            raise _BadRequest(f"no corpus job named {job!r}")
        return set(shards)

    def _op_corpus_submit(self, req: Dict, emit) -> Dict:
        programs = req.get("programs")
        if not isinstance(programs, list) or not programs:
            raise _BadRequest(
                "corpus.submit needs 'programs': a non-empty list of "
                "{'name', 'source'} objects"
            )
        by_name: Dict[str, Dict] = {}
        for item in programs:
            if not isinstance(item, dict) or not item.get("name"):
                raise _BadRequest("each corpus program must be an object "
                                  "with a 'name'")
            by_name[item["name"]] = item
        job = req.get("job")
        if not isinstance(job, str) or not job:
            with self._jobs_lock:
                self._job_ids += 1
                job = f"f{self._job_ids}"
        wait = bool(emit) or bool(req.get("wait"))
        total = len(by_name)
        progress_lock = threading.Lock()
        done_counter = {"n": 0}

        def renumber(data: Dict) -> Dict:
            # Renumber per-shard progress to fleet-wide done/total.
            # Callers hold ``progress_lock``.
            data = dict(data)
            if data.get("phase") == "corpus.program":
                done_counter["n"] += 1
                data["done"] = done_counter["n"]
                data["total"] = total
            return data

        def shard_event(ev) -> None:
            if emit is None:
                return
            with progress_lock:
                data = renumber(ev.data)
            emit(ev.kind, data)

        def shard_batch(evs) -> None:
            # A coalesced shard burst renumbers under one lock hold and
            # relays as one batch, staying one frame on a v6 client hop.
            if emit is None:
                return
            with progress_lock:
                records = [
                    {"kind": ev.kind, "data": renumber(ev.data)}
                    for ev in evs
                ]
            self.stats.bump("router.batches_relayed")
            emit(protocol.EV_BATCH, {"events": records})

        streaming = wait and emit is not None

        def submit_to(shard: str, names: List[str]) -> Dict:
            payload = {
                "job": job,
                "programs": [by_name[n] for n in names],
            }
            if wait:
                payload["wait"] = True
            return self._forward(
                shard,
                "corpus.submit",
                payload,
                on_event=shard_event if streaming else None,
                on_batch=shard_batch if streaming else None,
            )

        # Partition onto the ring (live shards preferred) and fan out.
        assignment: Dict[str, List[str]] = {}
        for name in by_name:
            shard = self._candidates(name)[0]
            assignment.setdefault(shard, []).append(name)

        lost: Dict[str, Dict] = {}
        merged_programs: Dict[str, str] = {}
        snapshots: List[Dict] = []
        used_shards: Set[str] = set()
        pending = [
            (shard, names, 0) for shard, names in assignment.items()
        ]
        while pending:
            futures = {
                self._fan.submit(submit_to, shard, names): (
                    shard,
                    names,
                    hop,
                )
                for shard, names, hop in pending
            }
            pending = []
            for future, (shard, names, hop) in futures.items():
                try:
                    snapshot = future.result()
                except ServerUnavailableError as exc:
                    # Rehash the whole sub-batch onto each program's
                    # next candidate; programs with nowhere to go are
                    # recorded as shard-lost, not silently dropped.
                    self.stats.bump("router.rehash")
                    regroup: Dict[str, List[str]] = {}
                    for name in names:
                        candidates = [
                            s
                            for s in self._candidates(name)
                            if s != shard
                        ]
                        if hop < len(candidates):
                            regroup.setdefault(
                                candidates[hop], []
                            ).append(name)
                        else:
                            lost[name] = {
                                "program": name,
                                "error": f"shard-lost: {exc.message}",
                                "digest": "",
                            }
                    pending.extend(
                        (s, ns, hop + 1) for s, ns in regroup.items()
                    )
                    continue
                except PedRequestError as exc:
                    raise _BadRequest(
                        f"shard {shard} rejected corpus.submit: "
                        f"{exc.message}"
                    )
                used_shards.add(shard)
                snapshots.append(snapshot)
                merged_programs.update(snapshot.get("programs") or {})
        for name in lost:
            merged_programs[name] = "error"
        with self._jobs_lock:
            self._job_shards.setdefault(job, set()).update(used_shards)
            self._lost.setdefault(job, {}).update(lost)
        done = sum(
            1 for s in merged_programs.values() if s in ("done", "error")
        )
        return {
            "job": job,
            "total": len(merged_programs),
            "done": done,
            "running": sum(
                1 for s in merged_programs.values() if s == "running"
            ),
            "errors": sum(
                1 for s in merged_programs.values() if s == "error"
            ),
            "complete": done == len(merged_programs),
            "programs": merged_programs,
            "started": not wait,
            "shards": sorted(used_shards),
            "lost": sorted(lost),
        }

    def _op_corpus_status(self, req: Dict, emit) -> Dict:
        job = self._corpus_key(req)
        with self._jobs_lock:
            lost = dict(self._lost.get(job, {}))
        merged_programs: Dict[str, str] = {}
        for shard in sorted(self._job_shard_set(job)):
            try:
                snapshot = self._forward(
                    shard, "corpus.status", {"job": job}, timeout=60.0
                )
            except ServerUnavailableError:
                continue
            merged_programs.update(snapshot.get("programs") or {})
        for name in lost:
            merged_programs[name] = "error"
        done = sum(
            1 for s in merged_programs.values() if s in ("done", "error")
        )
        return {
            "job": job,
            "total": len(merged_programs),
            "done": done,
            "running": sum(
                1 for s in merged_programs.values() if s == "running"
            ),
            "errors": sum(
                1 for s in merged_programs.values() if s == "error"
            ),
            "complete": done == len(merged_programs),
            "programs": merged_programs,
        }

    def _shard_records(self, job: str) -> List[Dict]:
        """Every shard's result records plus router-side loss records,
        in deterministic (program-name) order."""

        with self._jobs_lock:
            lost = dict(self._lost.get(job, {}))
        records: Dict[str, Dict] = {}
        for shard in sorted(self._job_shard_set(job)):
            try:
                result = self._forward(
                    shard, "corpus.results", {"job": job}, timeout=120.0
                )
            except ServerUnavailableError:
                continue
            for record in result.get("records") or []:
                records[record.get("program", "")] = record
        for name, record in lost.items():
            records.setdefault(name, record)
        return [records[name] for name in sorted(records)]

    def _op_corpus_results(self, req: Dict, emit) -> Dict:
        job = self._corpus_key(req)
        records = self._shard_records(job)
        return {"job": job, "count": len(records), "records": records}

    def _op_corpus_query(self, req: Dict, emit) -> Dict:
        """One fleet-wide rollup, computed over the union of every
        shard's records with the exact single-host aggregate code."""

        job = self._corpus_key(req)
        aggregate = req.get("aggregate")
        if not isinstance(aggregate, str) or aggregate not in AGGREGATES:
            raise _BadRequest(
                "corpus.query needs an 'aggregate' name "
                f"(one of: {', '.join(sorted(AGGREGATES))})"
            )
        records = self._shard_records(job)
        ok = [r for r in records if not r.get("error")]
        value = run_aggregate(aggregate, ok)
        done = len(records)
        return {
            "job": job,
            "aggregate": aggregate,
            "cached": False,
            "complete": True,
            "done": done,
            "total": done,
            "value": value,
        }
