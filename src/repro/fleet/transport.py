"""The asyncio transport: thousands of connections on one event loop.

The threaded front end (:mod:`repro.service.server`) burns an OS thread
per client, which tops out around the low hundreds of connections.
This transport multiplexes every connection onto one :mod:`asyncio`
loop while *reusing the host unchanged*: request bodies still run on
the host's worker-thread pool (``host.executor``) through the exact
``execute(req, emit)`` entry the threaded transport calls, so the two
front ends cannot drift in behavior — same envelopes, same error types,
same ``seq`` guarantees, byte-identical results.

**Host interface.**  Anything with ``execute(req, emit)``,
``executor``, ``shutdown_event``, ``max_request_bytes``,
``add_listener`` / ``remove_listener``, ``request_cancel`` and a
``connections`` gauge can sit behind this transport — the session host
(:class:`~repro.service.session_host.PedServer`) and the fleet router
(:class:`~repro.fleet.router.FleetRouter`) both do.

**Per-connection machinery.**

* *Reader*: a manual chunked line assembler (no ``readline`` limits to
  trip over).  A line within ``max_request_bytes + slack`` is parsed by
  :func:`~repro.service.protocol.parse_request`, which rejects
  over-limit requests with ``payload-too-large`` and a recovered id; a
  line so large it blows past the slack is answered the same way
  (id ``null``) and discarded as it streams in, without buffering it.
  After a client negotiates v5 binary frames (inline ``frames`` op),
  the reader hands the residual buffer to a
  :class:`~repro.service.protocol.FrameDecoder` and dispatches decoded
  envelopes instead of lines.
* *Writer*: one task draining a bounded outbound queue; it stamps
  ``seq`` (single consumer, so queue order *is* seq order *is* wire
  order), writes everything already queued as one burst and awaits
  ``drain()`` once per burst — TCP backpressure without a syscall and
  a loop round-trip per line.  On connections that negotiated the v6
  ``compress`` rung, a burst longer than one envelope is the queue's
  back-pressure watermark: runs of ``analysis.progress`` events inside
  it coalesce into one multi-record frame, and the adaptive zlib layer
  squeezes whatever frames pay for it (``net.*`` counters land in the
  host's stats either way).
  Worker threads enqueue via ``run_coroutine_threadsafe(...).result()``,
  which blocks the producing handler until the queue has room: a slow
  client throttles its own requests' event streams, never the loop.
* *Lifecycle*: each connection registers a broadcast listener and
  counts itself in the host's connection gauge.  A client disconnecting
  mid-stream just tears down its own queue — in-flight handlers finish
  and their replies are dropped, the server lives on.

**Graceful drain.**  ``shutdown`` (the op, or :meth:`AsyncTransport.
stop_background`) stops the accept loop, lets in-flight requests answer
within ``drain_timeout``, then closes the remaining connections.
"""

from __future__ import annotations

import asyncio
import logging
import sys
import threading
from typing import Dict, Optional, Set

from ..service import protocol
from ..service.protocol import ProtocolError

__all__ = ["AsyncTransport", "serve_async_tcp", "serve_async_stdio"]

log = logging.getLogger(__name__)

#: Slack past ``max_request_bytes`` we still buffer, so slightly-over
#: lines reach :func:`parse_request` whole and keep their recovered id.
OVERSIZE_SLACK = 64 * 1024
#: Bound on the per-connection outbound queue (envelopes, not bytes).
OUTBOUND_QUEUE = 256
#: Reader chunk size.
CHUNK = 64 * 1024
#: Cap on envelopes written per burst before the writer must drain —
#: bounds the bytes buffered in the transport between drains.
BURST_MAX = 64


class _FrameSwitch:
    """Outbound-queue sentinel carrying the ``frames`` ok reply.

    The write loop emits the reply as its *last* JSON line and encodes
    everything after as binary frames — one queue item, so no envelope
    a worker thread enqueues can land between the reply and the switch.
    """

    __slots__ = ("reply",)

    def __init__(self, reply: Dict) -> None:
        self.reply = reply


class _CompressSwitch:
    """Outbound-queue sentinel for the ``compress`` rung: the reply
    ships as a plain frame, everything after it may compress and
    progress-event runs start coalescing into multi-record frames."""

    __slots__ = ("reply",)

    def __init__(self, reply: Dict) -> None:
        self.reply = reply


class _AsyncConnection:
    """One client on the event loop."""

    def __init__(
        self,
        transport: "AsyncTransport",
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        self.transport = transport
        self.host = transport.host
        self.reader = reader
        self.writer = writer
        self._seq = protocol.Sequencer()
        self._outq: "asyncio.Queue[Optional[Dict]]" = asyncio.Queue(
            maxsize=OUTBOUND_QUEUE
        )
        self._loop = asyncio.get_running_loop()
        self._closing = False
        self._torn_down = False
        self._inflight: Set[asyncio.Task] = set()
        self._listener_token = None
        self._writer_task: Optional[asyncio.Task] = None
        #: Reader-side framing flags (the write loop keeps its own
        #: state, flipped by the switch sentinels riding the queue).
        self._binary = False
        self._compress = False
        self._reply_keys: Dict[object, str] = {}
        self._stats = getattr(self.host, "stats", None)
        self._acct = [0, 0, 0, 0]  # wire, raw, compressed, coalesced

    # -- sending -------------------------------------------------------

    async def _send(self, envelope: Dict) -> None:
        if not self._closing:
            await self._outq.put(envelope)

    def _send_threadsafe(self, envelope: Dict) -> None:
        """Enqueue from a worker thread, blocking while the queue is
        full — the backpressure edge between handlers and the wire."""

        if self._closing:
            return
        try:
            asyncio.run_coroutine_threadsafe(
                self._send(envelope), self._loop
            ).result(timeout=60.0)
        except Exception:  # noqa: BLE001 — connection died underneath
            pass

    def _broadcast(self, kind: str, data: Dict) -> None:
        self._send_threadsafe(protocol.event_envelope(None, kind, data))

    def _bump(self, name: str, n: int = 1) -> None:
        if self._stats is not None and n:
            self._stats.bump(name, n)

    def _account_frames(self, encoder) -> None:
        """Bump ``net.*`` by the encoder's movement since last flush."""

        now = [
            encoder.bytes_wire,
            encoder.bytes_raw,
            encoder.frames_compressed,
            encoder.coalesced_events,
        ]
        prev, self._acct = self._acct, now
        self._bump("net.bytes_out", now[0] - prev[0])
        self._bump("net.bytes_out_raw", now[1] - prev[1])
        self._bump("net.frames_compressed", now[2] - prev[2])
        self._bump("net.coalesced_events", now[3] - prev[3])

    def _encode_item(self, item, encoder) -> bytes:
        """One outbound envelope → its wire bytes (seq stamped here)."""

        envelope = item
        envelope["seq"] = self._seq.next()
        if encoder is not None:
            key = None
            if protocol.is_reply(envelope):
                key = self._reply_keys.pop(envelope.get("id"), None)
            return encoder.encode(envelope, key)
        line = protocol.encode(envelope)
        data = line.encode("utf-8") + b"\n"
        self._bump("net.bytes_out", len(data))
        self._bump("net.bytes_out_raw", len(data))
        return data

    def _encode_group(self, envelopes, encoder) -> bytes:
        """A coalesced event run → one multi-record frame."""

        for envelope in envelopes:
            envelope["seq"] = self._seq.next()
        return encoder.encode_multi(envelopes)

    @staticmethod
    def _coalescible(envelope) -> bool:
        return envelope.get("event") == protocol.EV_PROGRESS

    async def _write_loop(self) -> None:
        encoder = None
        compress = False
        try:
            while True:
                item = await self._outq.get()
                # Burst-drain: pull everything already queued and write
                # it in one go, awaiting ``drain()`` once per burst
                # instead of once per envelope — under event-storm load
                # the kernel sees one large write, not N tiny ones.  A
                # burst longer than one item *is* the queue backing up:
                # on compressed connections, runs of progress events
                # inside it coalesce into one multi-record frame.
                burst = [item]
                while len(burst) < BURST_MAX:
                    try:
                        burst.append(self._outq.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                # Trickle aid: when a compressed connection has nothing
                # but progress events in hand, wait out the coalescing
                # window for company — the same grace the threaded
                # server's flush timer gives.  Anything non-coalescible
                # (a reply, a sentinel) aborts the wait immediately, so
                # terminal replies are never held back.
                if compress and all(
                    isinstance(b, dict) and self._coalescible(b)
                    for b in burst
                ):
                    deadline = self._loop.time() + protocol.COALESCE_WINDOW
                    while len(burst) < protocol.COALESCE_MAX:
                        remaining = deadline - self._loop.time()
                        if remaining <= 0:
                            break
                        try:
                            nxt = await asyncio.wait_for(
                                self._outq.get(), remaining
                            )
                        except asyncio.TimeoutError:
                            break
                        burst.append(nxt)
                        if not (
                            isinstance(nxt, dict) and self._coalescible(nxt)
                        ):
                            break
                out = bytearray()
                stop = False
                i, n = 0, len(burst)
                while i < n:
                    item = burst[i]
                    i += 1
                    if item is None:
                        stop = True
                        break
                    if type(item) is _FrameSwitch:
                        envelope = item.reply
                        envelope["seq"] = self._seq.next()
                        line = protocol.encode(envelope)
                        data = line.encode("utf-8") + b"\n"
                        self._bump("net.bytes_out", len(data))
                        self._bump("net.bytes_out_raw", len(data))
                        out += data
                        encoder = protocol.FrameEncoder()
                        continue
                    if type(item) is _CompressSwitch:
                        # The reply itself ships plain; the flag flips
                        # after, so nothing before it compresses.
                        out += self._encode_item(item.reply, encoder)
                        encoder.compress = True
                        compress = True
                        continue
                    batch = protocol.expand_event_batch(item)
                    if batch is not None:
                        # A host-side burst (router relay): keep it one
                        # frame when compressing, else fan it out.
                        if compress and batch:
                            out += self._encode_group(batch, encoder)
                        else:
                            for env in batch:
                                out += self._encode_item(env, encoder)
                        continue
                    if compress and self._coalescible(item):
                        j = i - 1
                        while (
                            j + 1 < n
                            and isinstance(burst[j + 1], dict)
                            and self._coalescible(burst[j + 1])
                        ):
                            j += 1
                        if j >= i:
                            out += self._encode_group(
                                burst[i - 1 : j + 1], encoder
                            )
                            i = j + 1
                            continue
                    out += self._encode_item(item, encoder)
                if out:
                    self.writer.write(bytes(out))
                    await self.writer.drain()
                    self._bump("net.flushes")
                    if encoder is not None:
                        self._account_frames(encoder)
                if stop:
                    break
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass  # client went away; nothing to tell it

    # -- request execution ---------------------------------------------

    def _run_request(self, req: Dict) -> None:
        rid = req.get("id")
        if self._binary:
            key = protocol.reply_delta_key(req)
            if key is not None:
                self._reply_keys[rid] = key
        timed_out = threading.Event()

        def emit(kind: str, data: Dict) -> None:
            if not timed_out.is_set():
                self._send_threadsafe(
                    protocol.event_envelope(rid, kind, data)
                )

        fut = self._loop.run_in_executor(
            self.host.executor, self.host.execute, req, emit
        )

        async def waiter() -> None:
            timeout = req.get("timeout")
            try:
                if timeout is not None:
                    try:
                        reply = await asyncio.wait_for(
                            asyncio.shield(fut), float(timeout)
                        )
                    except asyncio.TimeoutError:
                        timed_out.set()
                        self.host.request_cancel(rid)
                        fut.add_done_callback(
                            lambda f: f.exception()  # retrieve, drop
                        )
                        await self._send(
                            protocol.reply_error(
                                rid,
                                protocol.TIMEOUT,
                                f"no result within {timeout}s",
                            )
                        )
                        return
                else:
                    reply = await fut
            except asyncio.CancelledError:
                raise
            except Exception as exc:  # noqa: BLE001 — must answer
                reply = protocol.reply_error(
                    rid, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
                )
            await self._send(reply)

        task = self._loop.create_task(waiter())
        self._inflight.add(task)
        task.add_done_callback(self._inflight.discard)

    # -- one request line ----------------------------------------------

    async def _handle_line(self, line: str, size: int) -> bool:
        """Process one request line; ``False`` ends the connection."""

        if not line.strip():
            return True
        try:
            req = protocol.parse_request(
                line, max_bytes=self.host.max_request_bytes, size=size
            )
        except ProtocolError as exc:
            await self._send(
                protocol.reply_error(exc.request_id, exc.type, str(exc))
            )
            return True
        return await self._dispatch(req)

    async def _dispatch(self, req: Dict) -> bool:
        """One parsed request; ``False`` ends the connection."""

        if self.host.shutdown_event.is_set():
            await self._send(
                protocol.reply_error(
                    req.get("id"),
                    protocol.SHUTTING_DOWN,
                    "server stopping",
                )
            )
            return False
        if req.get("op") == protocol.FRAMES_OP:
            rid = req.get("id")
            if req.get("mode") != "binary":
                await self._send(
                    protocol.reply_error(
                        rid,
                        protocol.BAD_REQUEST,
                        f"unknown framing mode {req.get('mode')!r}",
                    )
                )
            elif self._binary:
                await self._send(protocol.reply_ok(rid, {"frames": "binary"}))
            else:
                self._binary = True
                await self._send(
                    _FrameSwitch(protocol.reply_ok(rid, {"frames": "binary"}))
                )
            return True
        if req.get("op") == protocol.COMPRESS_OP:
            rid = req.get("id")
            if req.get("mode") != "zlib":
                await self._send(
                    protocol.reply_error(
                        rid,
                        protocol.BAD_REQUEST,
                        f"unknown compression mode {req.get('mode')!r}",
                    )
                )
            elif not self._binary:
                await self._send(
                    protocol.reply_error(
                        rid,
                        protocol.BAD_REQUEST,
                        "compress requires binary frames "
                        "(negotiate frames first)",
                    )
                )
            elif self._compress:
                await self._send(
                    protocol.reply_ok(rid, {"compress": "zlib"})
                )
            else:
                self._compress = True
                await self._send(
                    _CompressSwitch(
                        protocol.reply_ok(rid, {"compress": "zlib"})
                    )
                )
            return True
        if req.get("op") == "cancel":
            self.host.request_cancel(req.get("target"))
            await self._send(
                protocol.reply_ok(
                    req.get("id"), {"cancelled": req.get("target")}
                )
            )
            return True
        if req.get("op") == "shutdown":
            # Inline: the reply must reach the client before this
            # connection (and then the transport) winds down.
            reply = await self._loop.run_in_executor(
                self.host.executor, self.host.execute, req
            )
            await self._send(reply)
            self.transport.begin_shutdown()
            return False
        self._run_request(req)
        return True

    # -- the read loop -------------------------------------------------

    async def run(self) -> None:
        self._listener_token = self.host.add_listener(self._broadcast)
        self.host.connections.enter()
        self._writer_task = self._loop.create_task(self._write_loop())
        hard_cap = self.host.max_request_bytes + OVERSIZE_SLACK
        buf = bytearray()
        discarding = False
        try:
            while True:
                try:
                    chunk = await self.reader.read(CHUNK)
                except (ConnectionError, OSError):
                    break
                if not chunk:
                    break  # EOF: client closed (possibly mid-request)
                self._bump("net.bytes_in", len(chunk))
                buf += chunk
                stop = False
                while True:
                    nl = buf.find(b"\n")
                    if nl < 0:
                        break
                    raw, buf = bytes(buf[:nl]), buf[nl + 1 :]
                    if discarding:
                        # Tail of a line already rejected as oversized.
                        discarding = False
                        continue
                    line = raw.decode("utf-8", errors="replace")
                    if not await self._handle_line(line, len(raw)):
                        stop = True
                        break
                    if self._binary:
                        # Negotiated: whatever the buffer still holds
                        # is the head of the frame stream.
                        await self._run_binary(bytes(buf))
                        stop = True
                        break
                if stop:
                    break
                if not discarding and len(buf) > hard_cap:
                    # A line so large we refuse to buffer it: answer
                    # now (the id is unrecoverable from a partial
                    # line) and discard until its newline arrives.
                    await self._send(
                        protocol.reply_error(
                            None,
                            protocol.PAYLOAD_TOO_LARGE,
                            f"request over the "
                            f"{self.host.max_request_bytes}-byte limit",
                        )
                    )
                    buf.clear()
                    discarding = True
                if self.host.shutdown_event.is_set():
                    break
        finally:
            await self._teardown()

    async def _run_binary(self, head: bytes) -> None:
        """Frame-mode read loop (after ``frames`` negotiation)."""

        decoder = protocol.FrameDecoder(self.host.max_request_bytes)
        if head:
            decoder.feed(head)
        while True:
            while True:
                try:
                    req = decoder.next()
                except ProtocolError as exc:
                    # The decoder already arranged to skip the bad
                    # frame; answer and keep reading.
                    await self._send(
                        protocol.reply_error(
                            exc.request_id, exc.type, str(exc)
                        )
                    )
                    continue
                if req is None:
                    break
                if not await self._dispatch(req):
                    return
            if self.host.shutdown_event.is_set():
                return
            try:
                chunk = await self.reader.read(CHUNK)
            except (ConnectionError, OSError):
                return
            if not chunk:
                return  # EOF: a partial frame just never completes
            self._bump("net.bytes_in", len(chunk))
            decoder.feed(chunk)

    async def _teardown(self) -> None:
        if self._torn_down:
            return
        self._torn_down = True
        self._closing = True
        self.host.remove_listener(self._listener_token)
        self.host.connections.leave()
        # Let queued envelopes flush, then stop the writer.
        try:
            await asyncio.wait_for(self._outq.put(None), timeout=1.0)
        except asyncio.TimeoutError:
            pass
        if self._writer_task is not None:
            try:
                await asyncio.wait_for(self._writer_task, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                self._writer_task.cancel()
        for task in list(self._inflight):
            task.cancel()
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass

    async def finish_requests(self, timeout: float) -> None:
        """Graceful-drain helper: wait for in-flight requests."""

        pending = [t for t in self._inflight if not t.done()]
        if pending:
            await asyncio.wait(pending, timeout=timeout)


class AsyncTransport:
    """The asyncio front end for one host (session server or router)."""

    def __init__(
        self,
        host,
        bind: str = "127.0.0.1",
        port: int = 0,
        drain_timeout: float = 5.0,
    ) -> None:
        self.host = host
        self.bind = bind
        self.port = port
        self.drain_timeout = drain_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_AsyncConnection] = set()
        self._shutdown = None  # asyncio.Event, created on the loop
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    # -- loop-side lifecycle -------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket (``self.port`` gets the real port)."""

        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_client, self.bind, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _on_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        conn = _AsyncConnection(self, reader, writer)
        self._connections.add(conn)
        try:
            await conn.run()
        finally:
            self._connections.discard(conn)
            if self.host.shutdown_event.is_set():
                self.begin_shutdown()

    def begin_shutdown(self) -> None:
        """Flag the transport to drain and stop (loop-side, idempotent)."""

        if self._shutdown is not None:
            self._shutdown.set()

    async def serve_until_shutdown(self) -> None:
        """Serve until the host (or :meth:`begin_shutdown`) stops us."""

        if self._server is None:
            await self.start()

        async def poll_host() -> None:
            # The host's shutdown_event is a *threading* event (set by
            # handler threads); bridge it onto the loop.
            while not self.host.shutdown_event.is_set():
                await asyncio.sleep(0.1)
            self.begin_shutdown()

        poller = asyncio.get_running_loop().create_task(poll_host())
        try:
            await self._shutdown.wait()
        finally:
            poller.cancel()
        await self.drain()

    async def drain(self) -> None:
        """Stop accepting, let in-flight requests answer, then close."""

        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections):
            await conn.finish_requests(self.drain_timeout)
        for conn in list(self._connections):
            await conn._teardown()

    # -- thread-side helpers (tests, embedding) ------------------------

    def start_background(self) -> int:
        """Run the transport on a dedicated thread; returns the port."""

        def runner() -> None:
            async def main() -> None:
                await self.start()
                self._ready.set()
                await self.serve_until_shutdown()

            try:
                asyncio.run(main())
            except Exception:  # noqa: BLE001 — surface in logs, not stderr
                log.exception("async transport died")
                self._ready.set()

        self._thread = threading.Thread(
            target=runner, name="fleet-async", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=10.0):
            raise RuntimeError("async transport failed to start")
        return self.port

    def stop_background(self, timeout: float = 10.0) -> None:
        """Drain and stop a :meth:`start_background` transport."""

        loop = self._loop
        if loop is not None and loop.is_running():
            loop.call_soon_threadsafe(self.begin_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)


def serve_async_tcp(host, bind: str = "127.0.0.1", port: int = 0) -> None:
    """Serve ``host`` over asyncio TCP until shutdown (blocking)."""

    transport = AsyncTransport(host, bind=bind, port=port)

    async def main() -> None:
        await transport.start()
        print(
            f"ped fleet server (asyncio) listening on "
            f"{transport.bind}:{transport.port}",
            file=sys.stderr,
            flush=True,
        )
        await transport.serve_until_shutdown()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass


def serve_async_stdio(host, rpipe=None, wpipe=None) -> None:
    """Serve one client on stdin/stdout through the asyncio machinery.

    The same connection class as TCP — framing, backpressure, seq
    stamping — attached to pipe transports instead of a socket.
    """

    async def main() -> None:
        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader),
            rpipe if rpipe is not None else sys.stdin.buffer,
        )
        w_transport, w_protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin,
            wpipe if wpipe is not None else sys.stdout.buffer,
        )
        writer = asyncio.StreamWriter(w_transport, w_protocol, reader, loop)
        shim = AsyncTransport(host)
        shim._loop = loop
        shim._shutdown = asyncio.Event()
        conn = _AsyncConnection(shim, reader, writer)
        await conn.run()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
