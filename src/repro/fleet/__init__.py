"""The fleet serving tier: many hosts behind one addressable front end.

The session service (:mod:`repro.service`) scales one *process* — a
worker pool per server, lease-coordinated sharing of one cache dir per
machine.  This package scales the *fleet*:

* :mod:`repro.fleet.transport` — an :mod:`asyncio` transport speaking
  the exact :mod:`repro.service.protocol` envelopes over TCP or stdio.
  One event loop multiplexes thousands of connections (the threaded
  front end burns a thread per client); request bodies still run on the
  host's worker threads, so handler code is shared verbatim between the
  two transports.  Per-connection backpressure via a bounded outbound
  queue plus ``drain()``, graceful drain on shutdown, and connection
  gauges feeding the ``metrics`` op.
* :mod:`repro.fleet.ring` — a consistent-hash ring mapping program and
  session keys onto shard nodes, with an ordered preference walk for
  failover rehash.
* :mod:`repro.fleet.router` — a thin router process: hashes each
  request's key onto the ring, forwards requests (and streamed events)
  to the owning shard transparently, fans ``corpus.submit`` out across
  shards and merges the per-shard partials into one aggregate reply,
  and survives shard death with bounded retry + rehash.
* :mod:`repro.fleet.gossip` — cross-shard propagation of the shared
  pair-test memo over the ``memo.pull`` / ``memo.push`` ops, so a
  verdict proved on one shard warms the whole fleet.

``python -m repro serve --async`` serves one host on the asyncio
transport; ``python -m repro fleet shard`` / ``fleet route`` stand up a
routed fleet (see the README quick-start).
"""

from __future__ import annotations

from .ring import HashRing

__all__ = [
    "HashRing",
    "AsyncTransport",
    "serve_async_tcp",
    "serve_async_stdio",
    "FleetRouter",
    "MemoGossip",
]


def __getattr__(name: str):
    if name in ("AsyncTransport", "serve_async_tcp", "serve_async_stdio"):
        from . import transport

        return getattr(transport, name)
    if name == "FleetRouter":
        from .router import FleetRouter

        return FleetRouter
    if name == "MemoGossip":
        from .gossip import MemoGossip

        return MemoGossip
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
