"""Consistent-hash ring: program/session keys onto shard nodes.

Classic Karger-style consistent hashing: every node is hashed onto the
unit circle at ``replicas`` virtual points, a key is owned by the first
node point clockwise from the key's hash, and removing a node moves
only the keys it owned (about ``1/N`` of the space) to the survivors —
the property the router's shard-death rehash depends on.

Hashes are SHA-1 (stable across processes and Python versions —
``hash()`` is salted per process and useless here), truncated to 64
bits.  :meth:`HashRing.preference` yields the *distinct* nodes in ring
order starting at a key's owner: element 0 is the primary, element 1
the first failover target, and so on — a bounded walk the router uses
to retry work a dead shard dropped.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["HashRing"]


def _hash64(text: str) -> int:
    return int.from_bytes(
        hashlib.sha1(text.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """An immutable-feeling ring over mutable node membership.

    Nodes are opaque strings (the router uses ``host:port``).  Not
    thread-safe by itself; the router serializes membership changes.
    """

    def __init__(
        self, nodes: Iterable[str] = (), replicas: int = 64
    ) -> None:
        if replicas < 1:
            raise ValueError("replicas must be >= 1")
        self.replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._hashes: List[int] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------

    @property
    def nodes(self) -> List[str]:
        """Current members, in insertion order."""

        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            return
        self._nodes[node] = True
        for i in range(self.replicas):
            point = (_hash64(f"{node}#{i}"), node)
            idx = bisect.bisect(self._hashes, point[0])
            self._points.insert(idx, point)
            self._hashes.insert(idx, point[0])

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            return
        del self._nodes[node]
        self._points = [p for p in self._points if p[1] != node]
        self._hashes = [h for h, _n in self._points]

    # ------------------------------------------------------------------

    def node_for(self, key: str) -> Optional[str]:
        """The node owning ``key``, or ``None`` on an empty ring."""

        if not self._points:
            return None
        idx = bisect.bisect(self._hashes, _hash64(key))
        if idx == len(self._points):
            idx = 0  # wrap: the circle closes
        return self._points[idx][1]

    def preference(
        self, key: str, n: Optional[int] = None
    ) -> List[str]:
        """Distinct nodes in ring order from ``key``'s owner.

        ``preference(k)[0] == node_for(k)``; subsequent elements are the
        successive failover targets a rehash would land on as nodes die.
        ``n`` caps the list (default: every member).
        """

        if not self._points:
            return []
        want = len(self._nodes) if n is None else min(n, len(self._nodes))
        start = bisect.bisect(self._hashes, _hash64(key))
        out: List[str] = []
        seen = set()
        for i in range(len(self._points)):
            _h, node = self._points[(start + i) % len(self._points)]
            if node not in seen:
                seen.add(node)
                out.append(node)
                if len(out) >= want:
                    break
        return out

    def partition(
        self, keys: Iterable[str]
    ) -> Dict[str, List[str]]:
        """Group ``keys`` by owning node (insertion order preserved)."""

        out: Dict[str, List[str]] = {}
        for key in keys:
            node = self.node_for(key)
            if node is None:
                raise ValueError("cannot partition over an empty ring")
            out.setdefault(node, []).append(key)
        return out
