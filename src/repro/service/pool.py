"""Worker pools: fan per-unit analysis tasks out across processes.

Two interchangeable backends execute :func:`repro.service.tasks.run_task`:

* :class:`SerialPool` — the deterministic in-process fallback (``--jobs
  1`` and most tests).  Tasks run inline, in submission order, on the
  caller's objects (no pickling), so it is byte-for-byte the classic
  serial pipeline.
* :class:`WorkerPool` — a ``ProcessPoolExecutor`` that pickles payloads
  out and results back.  Submission order is preserved (``executor.map``),
  so merges on the main process are deterministic; a broken pool (killed
  worker, unpicklable payload) degrades to inline execution with a
  logged warning rather than failing the analysis.

:class:`ElasticWorkerPool` (``--jobs auto``) extends the process pool
with batch-width-driven sizing: it grows to the observed batch width
immediately (capped deterministically) and shrinks only after several
consecutive narrow batches, so steady workloads keep their workers.

All pools report utilization into
:class:`~repro.incremental.stats.EngineStats` counters when attached:
``pool.tasks`` / ``pool.batches`` (work volume), ``pool.busy_s`` (summed
task seconds across workers) and ``pool.wall_s`` (main-process wait),
from which the stats renderer derives utilization.  The process pool
additionally publishes a ``pool.queue_depth`` gauge (with a
``pool.queue_depth.peak`` high watermark) as each batch drains, and a
``pool.workers`` gauge whenever an executor is (re)created.
"""

from __future__ import annotations

import logging
import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from .tasks import run_task, run_task_timed

log = logging.getLogger(__name__)


class SerialPool:
    """Inline task execution: the ``--jobs 1`` / test fallback."""

    jobs = 1
    parallel = False

    def __init__(self, stats=None) -> None:
        self.stats = stats

    def map(self, kind: str, payloads: Sequence[Dict]) -> List:
        t0 = time.perf_counter()
        results = [run_task(kind, p) for p in payloads]
        if self.stats is not None and payloads:
            dt = time.perf_counter() - t0
            self.stats.bump("pool.batches")
            self.stats.bump("pool.tasks", len(payloads))
            self.stats.bump("pool.busy_s", dt)
            self.stats.bump("pool.wall_s", dt)
        return results

    def close(self) -> None:  # symmetry with WorkerPool
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class WorkerPool:
    """Process-pool execution of analysis tasks, created lazily.

    The executor starts on first use (so constructing an engine with
    ``--jobs N`` costs nothing until a batch is actually dispatched) and
    is shared for the pool's lifetime — across analyses, sessions and
    server clients.  ``map`` may be called from multiple threads.
    """

    parallel = True

    def __init__(self, jobs: int, stats=None) -> None:
        if jobs < 2:
            raise ValueError("WorkerPool needs jobs >= 2; use SerialPool")
        self.jobs = jobs
        self.stats = stats
        self._executor: Optional[ProcessPoolExecutor] = None
        self._inline = SerialPool(stats=None)

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
            if self.stats is not None:
                self.stats.gauge("pool.workers", self.jobs)
        return self._executor

    def map(self, kind: str, payloads: Sequence[Dict]) -> List:
        if len(payloads) < 2:
            # A single task gains nothing from a round-trip; run inline.
            return self._inline.map(kind, payloads)
        t0 = time.perf_counter()
        if self.stats is not None:
            # Queue-depth gauge: how much of the batch is still in flight.
            self.stats.gauge("pool.queue_depth", len(payloads))
        try:
            executor = self._ensure_executor()
            chunk = max(1, len(payloads) // (self.jobs * 4))
            out: List = []
            busy = 0.0
            for result, seconds in executor.map(
                run_task_timed,
                [(kind, p) for p in payloads],
                chunksize=chunk,
            ):
                out.append(result)
                busy += seconds
                if self.stats is not None:
                    self.stats.gauge(
                        "pool.queue_depth", len(payloads) - len(out)
                    )
        except Exception as exc:  # noqa: BLE001 — degrade, never fail
            if _is_analysis_error(exc):
                raise
            log.warning(
                "worker pool failed (%s: %s); falling back to inline "
                "execution for this batch",
                type(exc).__name__,
                exc,
            )
            if self.stats is not None:
                self.stats.bump("pool.broken")
                self.stats.gauge("pool.queue_depth", 0)
            self._shutdown_executor()
            return self._inline.map(kind, payloads)
        if self.stats is not None:
            self.stats.bump("pool.batches")
            self.stats.bump("pool.tasks", len(payloads))
            self.stats.bump("pool.busy_s", busy)
            self.stats.bump("pool.wall_s", time.perf_counter() - t0)
        return out

    def _shutdown_executor(self) -> None:
        if self._executor is not None:
            try:
                self._executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # noqa: BLE001
                pass
            self._executor = None

    def close(self) -> None:
        self._shutdown_executor()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ElasticWorkerPool(WorkerPool):
    """A worker pool that sizes itself to the observed batch width.

    ``--jobs auto``: starts small (2 workers), grows immediately to the
    width of any wider batch (bounded by a deterministic ``cap``), and
    shrinks only after :data:`SHRINK_PATIENCE` consecutive batches at
    half the current size or less — one narrow batch between wide ones
    (a summary level with few dirty units, say) keeps the workers warm.
    Sizing depends only on the batch-width sequence, never on timing, so
    parity tests see the same pool shape on every run; each resize
    recreates the executor lazily and republishes the ``pool.workers``
    gauge.
    """

    #: Upper bound when the machine offers more cores; keeps ``auto``
    #: deterministic across similarly-sized CI machines.
    DEFAULT_CAP = 8
    #: Consecutive narrow batches tolerated before shrinking.
    SHRINK_PATIENCE = 3

    def __init__(self, cap: Optional[int] = None, stats=None) -> None:
        if cap is None:
            cap = min(os.cpu_count() or 1, self.DEFAULT_CAP)
        super().__init__(2, stats=stats)
        self.cap = max(2, cap)
        self._narrow_batches = 0

    def map(self, kind: str, payloads: Sequence[Dict]) -> List:
        if len(payloads) >= 2:
            # Singletons run inline in the base class; they say nothing
            # about the width the pool should hold.
            self._resize(len(payloads))
        return super().map(kind, payloads)

    def _resize(self, width: int) -> None:
        target = max(2, min(self.cap, width))
        if target > self.jobs:
            self._shutdown_executor()
            self.jobs = target
            self._narrow_batches = 0
        elif target <= self.jobs // 2:
            self._narrow_batches += 1
            if self._narrow_batches >= self.SHRINK_PATIENCE:
                self._shutdown_executor()
                self.jobs = target
                self._narrow_batches = 0
        else:
            self._narrow_batches = 0


def _is_analysis_error(exc: Exception) -> bool:
    """Fortran front-end errors are results, not pool failures: the
    session's edit-rollback path depends on seeing them."""

    from ..fortran.errors import FortranError

    return isinstance(exc, FortranError)


def make_pool(jobs, stats=None):
    """``--jobs N`` / ``--jobs auto`` → the right pool backend."""

    if jobs == "auto":
        return ElasticWorkerPool(stats=stats)
    if jobs and jobs > 1:
        return WorkerPool(jobs, stats=stats)
    return SerialPool(stats=stats)
