"""The Ped session host: many named sessions behind one event core.

:class:`PedServer` is the transport-agnostic heart of the service — it
hosts any number of concurrent, named
:class:`~repro.editor.session.PedSession` instances and executes
protocol requests (see :mod:`repro.service.protocol` for the envelope
grammar) against them.  Transports (stdio, TCP — see
:mod:`repro.service.server`) feed it one request dict at a time and
write back whatever envelopes it produces.

**Event core.**  :meth:`PedServer.execute` takes an optional ``emit``
callback; a request carrying ``"stream": true`` has its analysis
progress routed there as ``analysis.progress`` events (one per engine
pipeline phase, one per unit in the dependence stage) before the
terminal reply.  Transports additionally register broadcast listeners
(:meth:`add_listener`): after a mutating operation (edit / transform /
undo / redo) the host diffs the session's unit spans and, when the
change dirties units that *other* sessions also hold, broadcasts an
``invalidation`` event naming the editing session, the changed units
and the sessions holding them — thin front ends re-query instead of
rendering stale analysis.

**Corpus batch.**  Besides per-session editing, the host runs
corpus-scale batch analysis: ``corpus.submit`` registers named programs
with a :class:`~repro.pipeline.corpus.CorpusRunner` that fans their
end-to-end analyses over the server's worker pool (streaming requests
get one ``analysis.progress`` event per finished program),
``corpus.status`` polls a background batch and ``corpus.query`` answers
fleet-wide aggregate rollups (obstacle ranking, dependence-test tiers,
transformation applicability) cached under content keys.  The
``graph.describe`` / ``graph.last`` / ``graph.plan`` ops expose the
pipeline-node graph itself: topology, last-analysis node outcomes
(entry node, per-node hit/recomputed states) and what-if invalidation.

**Event-sourced sessions.**  Every session mutation flows through one
``_apply_mutation`` path and appends a typed record to the session's
mutation journal; on a server with a store, each record is also flushed
to a durable per-session journal file *before* the reply leaves, so the
v7 ops can page the history (``session.log``), rebuild the state at any
record (``session.replay``) and resurrect a killed server's sessions
(``session.restore``) — see :mod:`repro.editor.journal` and
:class:`~repro.service.persist.JournalFile`.

**Concurrency.**  Each request runs on a bounded worker-thread pool;
per-session locks serialize operations on the same session while
different sessions proceed in parallel.  A request may carry ``timeout``
(seconds); ``{"op": "cancel", "target": <id>}`` cancels a queued request
outright and flags a running one.  Every request is timed into the
server's stats as a ``req.<op>`` stage; ``{"op": "stats"}`` returns the
raw server snapshot and ``{"op": "metrics"}`` the merged service
metrics (same key names as the ``stats`` CLI command).  Transports bump
their wire accounting — ``net.bytes_in`` / ``net.bytes_out`` plus the
v6 compression and coalescing counters — into the *server-level* stats,
so ``metrics`` reports transport traffic even for a session-bound
request (the merge overlays ``net.*`` from the host onto the engine's
own counters).

All sessions share the server's worker pool, persistent store and
shared pair-test memo, so a server with ``--jobs``/``--cache-dir``
gives every client parallel analysis and warm starts for free — and N
server *processes* pointed at one ``--cache-dir`` exchange memo deltas
and warm records through the store's lease-coordinated singleton
records (:mod:`repro.service.storelock`).
"""

from __future__ import annotations

import logging
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from ..dependence.hierarchy import SharedPairMemo
from ..editor.journal import JournalError, SessionJournal, replay_journal
from ..editor.session import PedError, PedSession
from ..incremental.stats import EngineStats
from ..interproc.program import FeatureSet
from ..pipeline.aggregate import AGGREGATES
from ..pipeline.corpus import CorpusError, CorpusRunner
from ..pipeline.program import build_program_graph
from . import protocol
from .metrics import ConnectionGauge, merged_metrics
from .persist import PersistentStore
from .pool import make_pool

log = logging.getLogger(__name__)


class _Cancelled(Exception):
    """Raised inside a request body when its cancel flag is set."""


class _BadRequest(Exception):
    pass


class _UnknownSession(Exception):
    pass


class _SessionExists(Exception):
    pass


@dataclass
class _Managed:
    """One hosted session plus the lock serializing its operations."""

    session: PedSession
    lock: threading.Lock
    #: Durable journal sink (servers with a ``--cache-dir`` only): the
    #: session's journal listener streams every mutation record here.
    journal_file: Optional[object] = None


class PedServer:
    """The protocol-independent core: sessions, dispatch, events."""

    def __init__(
        self,
        features: Optional[FeatureSet] = None,
        jobs: int = 1,
        cache_dir=None,
        max_workers: int = 8,
        stats: Optional[EngineStats] = None,
        max_request_bytes: int = protocol.MAX_REQUEST_BYTES,
    ) -> None:
        self.features = features
        self.stats = stats or EngineStats()
        self.pool = make_pool(jobs, stats=self.stats)
        self.store = (
            PersistentStore.at(cache_dir, stats=self.stats)
            if cache_dir
            else None
        )
        #: One pair-test memo for the whole server: every session's
        #: engine reads and extends it, so sessions warm each other
        #: (and, through the store's singleton record, sibling server
        #: processes warm this one).
        self.shared_memo = SharedPairMemo()
        #: Corpus-batch executor: jobs fan their per-program analyses
        #: over the same worker pool the sessions use, and aggregate
        #: queries cache under content keys on the server stats.
        self.corpus = CorpusRunner(
            pool=self.pool, features=self.features, stats=self.stats
        )
        self.max_request_bytes = max_request_bytes
        self.sessions: Dict[str, _Managed] = {}
        self._sessions_lock = threading.Lock()
        from concurrent.futures import ThreadPoolExecutor

        self._work = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="ped-req"
        )
        self._cancelled: Set[object] = set()
        self._cancel_lock = threading.Lock()
        self._listeners: Dict[int, Callable[[str, Dict], None]] = {}
        self._listeners_lock = threading.Lock()
        self._listener_ids = 0
        self._tls = threading.local()
        self.shutdown_event = threading.Event()
        #: Live transport gauges: every front end (threaded stdio/TCP,
        #: asyncio fleet transport) counts its clients here, and
        #: ``metrics`` reports them as ``server.connections.open/.peak``.
        self.connections = ConnectionGauge()
        #: Process start mark for the ``server.uptime_s`` gauge.
        self.started_monotonic = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        self.shutdown_event.set()
        self._work.shutdown(wait=False, cancel_futures=True)
        self.pool.close()

    @property
    def executor(self):
        """The request thread pool transports hand blocking work to
        (the asyncio transport runs ``execute`` on it per request)."""

        return self._work

    # ------------------------------------------------------------------
    # cancellation registry
    # ------------------------------------------------------------------

    def request_cancel(self, target) -> None:
        with self._cancel_lock:
            self._cancelled.add(target)

    def _check_cancel(self, rid) -> None:
        if rid is None:
            return
        with self._cancel_lock:
            if rid in self._cancelled:
                self._cancelled.discard(rid)
                raise _Cancelled()

    def _clear_cancel(self, rid) -> None:
        with self._cancel_lock:
            self._cancelled.discard(rid)

    # ------------------------------------------------------------------
    # broadcast listeners (transports register one sink per connection)
    # ------------------------------------------------------------------

    def add_listener(self, sink: Callable[[str, Dict], None]) -> int:
        """Register a broadcast sink ``sink(event_kind, data)``; returns
        a token for :meth:`remove_listener`."""

        with self._listeners_lock:
            self._listener_ids += 1
            token = self._listener_ids
            self._listeners[token] = sink
        return token

    def remove_listener(self, token: int) -> None:
        with self._listeners_lock:
            self._listeners.pop(token, None)

    def _notify(self, kind: str, data: Dict) -> None:
        with self._listeners_lock:
            sinks = list(self._listeners.values())
        for sink in sinks:
            try:
                sink(kind, data)
            except Exception:  # noqa: BLE001 — one dead sink ≠ all
                log.warning("broadcast sink failed", exc_info=True)

    # ------------------------------------------------------------------
    # session helpers
    # ------------------------------------------------------------------

    def _managed(self, req: Dict) -> _Managed:
        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise _BadRequest("request needs a 'session' name")
        with self._sessions_lock:
            managed = self.sessions.get(name)
        if managed is None:
            raise _UnknownSession(f"no session named {name!r}")
        return managed

    def _locked(self, managed: _Managed, rid):
        """Acquire the session lock, polling the cancel flag meanwhile."""

        while not managed.lock.acquire(timeout=0.05):
            self._check_cancel(rid)
        return managed

    def _session_engine(self):
        """A per-session engine sharing the server's pool and store.

        Each session gets its own :class:`EngineStats` (so per-session
        stage numbers stay meaningful) while pool and disk counters
        accumulate on the shared server stats they were created with.
        """

        from ..incremental.engine import AnalysisEngine

        return AnalysisEngine(
            features=self.features,
            stats=EngineStats(),
            pool=self.pool,
            store=self.store,
            shared_memo=self.shared_memo,
        )

    # ------------------------------------------------------------------
    # streaming plumbing
    # ------------------------------------------------------------------

    def _emit(self) -> Optional[Callable[[str, Dict], None]]:
        """The current request's event sink (set only for streaming
        requests executing on this worker thread)."""

        return getattr(self._tls, "emit", None)

    @contextmanager
    def _progress_stream(self, engine):
        """Route ``engine`` progress to the current request's stream.

        The caller holds the session lock for the hook's whole lifetime,
        so no other request can observe (or overwrite) the listener.
        """

        emit = self._emit()
        if emit is None:
            yield
            return

        def hook(phase: str, detail: Dict) -> None:
            emit(protocol.EV_PROGRESS, {"phase": phase, **detail})

        engine.progress = hook
        try:
            yield
        finally:
            engine.progress = None

    def _invalidation_for(
        self, name: str, managed: _Managed, old_source: str, op: str
    ) -> Optional[Dict]:
        """The ``invalidation`` broadcast for a mutation, or ``None``.

        Emitted only when the changed units are also held by *other*
        sessions — the "an edit in one session dirties records another
        session holds" condition.  Must be called while still holding
        the editing session's lock (the source must be stable).
        """

        new_source = managed.session.source
        if new_source == old_source:
            return None
        changed = managed.session.engine.changed_units(
            old_source, new_source
        )
        if not changed:
            return None
        holders: List[str] = []
        with self._sessions_lock:
            others = [
                (n, m) for n, m in self.sessions.items() if n != name
            ]
        for other_name, other in others:
            held = {u.name for u in other.session.sf.units}
            if held & changed:
                holders.append(other_name)
        if not holders:
            return None
        return {
            "session": name,
            "op": op,
            "units": sorted(changed),
            "holders": sorted(holders),
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def execute(
        self,
        req: Dict,
        emit: Optional[Callable[[str, Dict], None]] = None,
    ) -> Dict:
        """Run one request to a terminal reply envelope.

        ``emit(kind, data)``, when given and the request opted in with
        ``"stream": true``, receives typed events *before* this method
        returns — the transport writes them interleaved with other
        replies, and the terminal reply after.
        """

        rid = req.get("id")
        op = req.get("op")
        self._tls.emit = emit if (emit is not None and req.get("stream")) else None
        try:
            if not isinstance(op, str):
                raise _BadRequest("request needs an 'op' string")
            handler = getattr(
                self,
                f"_op_{op.replace('-', '_').replace('.', '_')}",
                None,
            )
            if handler is None:
                return protocol.reply_error(
                    rid, protocol.UNKNOWN_OP, f"unknown op {op!r}"
                )
            self._check_cancel(rid)
            with self.stats.timer(f"req.{op}"):
                result = handler(req)
            return protocol.reply_ok(rid, result)
        except _BadRequest as exc:
            return protocol.reply_error(rid, protocol.BAD_REQUEST, str(exc))
        except _UnknownSession as exc:
            return protocol.reply_error(
                rid, protocol.UNKNOWN_SESSION, str(exc)
            )
        except _SessionExists as exc:
            return protocol.reply_error(
                rid, protocol.SESSION_EXISTS, str(exc)
            )
        except _Cancelled:
            return protocol.reply_error(
                rid, protocol.CANCELLED, "request cancelled"
            )
        except CorpusError as exc:
            return protocol.reply_error(rid, protocol.BAD_REQUEST, str(exc))
        except (PedError, JournalError) as exc:
            return protocol.reply_error(rid, protocol.PED_ERROR, str(exc))
        except Exception as exc:  # noqa: BLE001 — must answer the client
            log.exception("internal error handling %r", op)
            return protocol.reply_error(
                rid, protocol.INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        finally:
            self._tls.emit = None
            self._clear_cancel(rid)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------

    def _op_ping(self, req: Dict) -> Dict:
        return {
            "pong": True,
            "protocol": protocol.PROTOCOL_VERSION,
            "sessions": len(self.sessions),
        }

    def _op_open(self, req: Dict) -> Dict:
        name = req.get("session")
        source = req.get("source")
        if not isinstance(name, str) or not name:
            raise _BadRequest("open needs a 'session' name")
        if not isinstance(source, str):
            raise _BadRequest("open needs 'source' text")
        with self._sessions_lock:
            if name in self.sessions and not req.get("replace"):
                raise _SessionExists(f"session {name!r} already open")
        # Building the session (a full analysis) happens outside the
        # registry lock so other sessions keep serving; the engine is
        # not yet shared, so streaming its progress needs no lock.
        engine = self._session_engine()
        with self._progress_stream(engine):
            session = PedSession(source, engine=engine)
        journal_file = self._attach_journal(name, session, fresh=True)
        with self._sessions_lock:
            previous = self.sessions.get(name)
            self.sessions[name] = _Managed(
                session, threading.Lock(), journal_file
            )
        if previous is not None and previous.journal_file is not None:
            previous.journal_file.close()
        return {
            "session": name,
            "units": [u.name for u in session.sf.units],
        }

    def _attach_journal(self, name: str, session: PedSession, fresh: bool):
        """Hook the session's journal to its durable file (store-backed
        servers only).  ``fresh`` starts a new file; otherwise the file
        already holds the session's records (the restore path) and is
        merely reopened for appends.  Durability is best-effort: an
        unwritable store degrades to in-memory journaling, logged."""

        if self.store is None:
            return None
        journal_file = self.store.journal(name)
        try:
            if fresh:
                journal_file.reset(session.journal.base_source)
            else:
                journal_file.open_append()
        except OSError as exc:
            log.warning(
                "cannot persist journal for session %r (%s); "
                "journaling in memory only",
                name,
                exc,
            )
            return None
        session.journal.listener = lambda record: journal_file.append(
            record.to_wire()
        )
        return journal_file

    def _op_close(self, req: Dict) -> Dict:
        name = req.get("session")
        with self._sessions_lock:
            managed = self.sessions.pop(name, None)
        if managed is None:
            raise _UnknownSession(f"no session named {name!r}")
        # The engine shares the server's pool/store: nothing to release —
        # but the durable journal handle closes (the file itself stays,
        # so ``session.restore`` can resurrect the session later).
        if managed.journal_file is not None:
            managed.journal_file.close()
        return {"closed": name}

    def _op_list(self, req: Dict) -> Dict:
        with self._sessions_lock:
            names = sorted(self.sessions)
        return {"sessions": names}

    def _apply_mutation(
        self,
        req: Dict,
        op: str,
        mutate: Callable[[PedSession], Optional[str]],
        select: bool = False,
    ) -> Dict:
        """The single path every session mutation takes.

        Under the session lock: optionally move the selection from the
        request (``unit``/``loop``), run ``mutate`` with analysis
        progress routed to a streaming request, then compute the
        cross-session ``invalidation`` broadcast.  Journaling and
        durability need no code here — the session appends each record
        itself, and its journal listener streams the record to the
        per-session file while the lock is still held.
        """

        managed = self._managed(req)
        rid = req.get("id")
        name = req["session"]
        invalidation = None
        self._locked(managed, rid)
        try:
            self._check_cancel(rid)
            if select:
                if req.get("unit"):
                    managed.session.select_unit(req["unit"])
                if req.get("loop") is not None:
                    managed.session.select_loop(int(req["loop"]))
            old_source = managed.session.source
            with self._progress_stream(managed.session.engine):
                message = mutate(managed.session)
            invalidation = self._invalidation_for(
                name, managed, old_source, op
            )
        except KeyError as exc:
            raise _BadRequest(f"{op} needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        if invalidation:
            self._notify(protocol.EV_INVALIDATION, invalidation)
        return {"message": message}

    def _op_edit(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req,
            "edit",
            lambda s: s.edit(
                int(req["start"]), int(req["end"]), req.get("text", "")
            ),
        )

    def _op_assert(self, req: Dict) -> Dict:
        text = req.get("text")
        if not isinstance(text, str):
            raise _BadRequest("assert needs assertion 'text'")
        return self._apply_mutation(
            req, "assert", lambda s: s.add_assertion(text), select=True
        )

    def _op_mark(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req,
            "mark",
            lambda s: s.mark_dependence(int(req["dep"]), req["marking"]),
            select=True,
        )

    def _op_reclassify(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req,
            "reclassify",
            lambda s: s.reclassify(req["var"], req["as"]),
            select=True,
        )

    def _op_select(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
        finally:
            managed.lock.release()
        return {
            "unit": managed.session.current_unit,
            "loop": managed.session.loop_index,
        }

    def _op_loops(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            ua = managed.session.unit_analysis
            loops = []
            for idx, nest in enumerate(ua.loops):
                info = ua.info_for(nest.loop)
                loops.append(
                    {
                        "index": idx,
                        "var": nest.loop.var,
                        "line": nest.loop.line,
                        "depth": nest.depth,
                        "parallelizable": info.parallelizable,
                        "obstacles": list(info.obstacles),
                    }
                )
        finally:
            managed.lock.release()
        return {"unit": managed.session.current_unit, "loops": loops}

    def _op_deps(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            deps = [
                {
                    "id": d.id,
                    "kind": d.kind,
                    "var": d.var,
                    "vector": d.vector_str(),
                    "level": d.level,
                    "marking": d.marking,
                    "src_line": d.src_line,
                    "dst_line": d.dst_line,
                }
                for d in managed.session.dependences(
                    unfiltered=bool(req.get("unfiltered"))
                )
            ]
        finally:
            managed.lock.release()
        return {"unit": managed.session.current_unit, "deps": deps}

    def _op_source(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            return {"source": managed.session.source}
        finally:
            managed.lock.release()

    def _op_fingerprint(self, req: Dict) -> Dict:
        """Digest of the session's current analysis fingerprint — the
        parity suite's cross-mode (serial / streamed / multi-process)
        comparison key."""

        from ..incremental.fingerprint import fingerprint_digest

        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            digest = fingerprint_digest(managed.session.analysis)
        finally:
            managed.lock.release()
        return {"fingerprint": digest}

    def _op_diagnose(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            if req.get("unit"):
                managed.session.select_unit(req["unit"])
            if req.get("loop") is not None:
                managed.session.select_loop(int(req["loop"]))
            advice = managed.session.diagnose(
                req["transform"], **(req.get("args") or {})
            )
        except KeyError as exc:
            raise _BadRequest(f"diagnose needs {exc.args[0]!r}")
        finally:
            managed.lock.release()
        return {
            "applicable": advice.applicable,
            "safe": advice.safe,
            "profitable": advice.profitable,
            "reasons": list(advice.reasons),
        }

    def _op_apply(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req,
            "apply",
            lambda s: s.apply(req["transform"], **(req.get("args") or {})),
            select=True,
        )

    def _op_undo(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req, "undo", lambda s: (s.undo(), "undone")[1]
        )

    def _op_redo(self, req: Dict) -> Dict:
        return self._apply_mutation(
            req, "redo", lambda s: (s.redo(), "redone")[1]
        )

    # ------------------------------------------------------------------
    # event-sourced session ops (protocol v7)
    # ------------------------------------------------------------------

    def _session_journal(self, req: Dict):
        """``(journal, origin)`` for the request's session: a copy of
        the live session's journal when the session is open, else the
        persisted one (``origin`` is ``"live"``/``"disk"``)."""

        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise _BadRequest("request needs a 'session' name")
        with self._sessions_lock:
            managed = self.sessions.get(name)
        if managed is not None:
            self._locked(managed, req.get("id"))
            try:
                live = managed.session.journal
                journal = SessionJournal(
                    base_source=live.base_source,
                    records=list(live.records),
                )
            finally:
                managed.lock.release()
            return journal, "live"
        if self.store is not None:
            payload = self.store.journal(name).load()
            if payload is not None:
                return SessionJournal.from_wire(payload), "disk"
        raise _UnknownSession(
            f"no session named {name!r} (live or persisted)"
        )

    def _op_session_log(self, req: Dict) -> Dict:
        """Paged read of a session's mutation journal (live or persisted)."""

        journal, origin = self._session_journal(req)
        total = len(journal)
        start = req.get("start", 0)
        count = req.get("count")
        if not isinstance(start, int) or start < 0:
            raise _BadRequest("session.log 'start' must be a non-negative int")
        if count is not None and (not isinstance(count, int) or count < 0):
            raise _BadRequest("session.log 'count' must be a non-negative int")
        page = journal.records[start:]
        if count is not None:
            page = page[:count]
        return {
            "session": req["session"],
            "origin": origin,
            "total": total,
            "start": start,
            "count": len(page),
            "records": [r.to_wire() for r in page],
        }

    def _replay(self, journal, upto, progress_phase: str):
        """Replay a journal prefix on a scratch engine (sharing the
        server's pool/store/memo, so previously seen states are warm),
        streaming one progress event per record."""

        emit = self._emit()
        total = len(journal) if upto is None else upto

        def progress(i, record):
            if emit is not None:
                emit(
                    protocol.EV_PROGRESS,
                    {
                        "phase": progress_phase,
                        "record": i,
                        "total": total,
                        "op": record.op,
                    },
                )

        engine = self._session_engine()
        with self._progress_stream(engine):
            return replay_journal(
                journal, upto, engine=engine, progress=progress
            )

    def _op_session_replay(self, req: Dict) -> Dict:
        """Rebuild the session's state at journal record ``upto`` (all
        records when omitted) and report its analysis fingerprint — the
        deterministic time-travel op the parity suite leans on."""

        from ..incremental.fingerprint import fingerprint_digest

        journal, origin = self._session_journal(req)
        upto = req.get("upto")
        if upto is not None:
            if not isinstance(upto, int) or not 0 <= upto <= len(journal):
                raise _BadRequest(
                    f"session.replay 'upto' must be an int in "
                    f"0..{len(journal)}"
                )
        session = self._replay(journal, upto, "journal.replay")
        self.stats.bump("journal.replays")
        return {
            "session": req["session"],
            "origin": origin,
            "records": len(session.journal),
            "total": len(journal),
            "fingerprint": fingerprint_digest(session.analysis),
            "units": [u.name for u in session.sf.units],
            "unit": session.current_unit,
            "loop": session.loop_index,
            "undo_depth": session.undo_depth,
        }

    def _op_session_restore(self, req: Dict) -> Dict:
        """Resurrect a session from its persisted journal (the
        crash-recovery path: a killed server reopens with every
        acknowledged mutation intact)."""

        from ..incremental.fingerprint import fingerprint_digest

        name = req.get("session")
        if not isinstance(name, str) or not name:
            raise _BadRequest("session.restore needs a 'session' name")
        if self.store is None:
            raise _BadRequest(
                "session.restore needs a server with a --cache-dir"
            )
        with self._sessions_lock:
            if name in self.sessions and not req.get("replace"):
                raise _SessionExists(f"session {name!r} already open")
        payload = self.store.journal(name).load()
        if payload is None:
            raise _UnknownSession(
                f"no persisted journal for session {name!r}"
            )
        journal = SessionJournal.from_wire(payload)
        session = self._replay(journal, None, "journal.restore")
        # The file already holds every replayed record: reopen it for
        # appends and hook the listener only now, after the replay.
        journal_file = self._attach_journal(name, session, fresh=False)
        with self._sessions_lock:
            previous = self.sessions.get(name)
            self.sessions[name] = _Managed(
                session, threading.Lock(), journal_file
            )
        if previous is not None and previous.journal_file is not None:
            previous.journal_file.close()
        self.stats.bump("journal.restores")
        return {
            "session": name,
            "records": len(journal),
            "fingerprint": fingerprint_digest(session.analysis),
            "units": [u.name for u in session.sf.units],
            "undo_depth": session.undo_depth,
            "redo_depth": session.redo_depth,
        }

    def _op_parallel_summary(self, req: Dict) -> Dict:
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            rows = managed.session.parallel_summary()
        finally:
            managed.lock.release()
        return {
            "units": [
                {"unit": name, "parallel": par, "loops": total}
                for name, par, total in rows
            ]
        }

    def _op_stats(self, req: Dict) -> Dict:
        if req.get("session"):
            managed = self._managed(req)
            return managed.session.engine.stats.snapshot()
        # Server-wide memo totals live on the shared memo itself (each
        # session engine publishes only into its own stats).
        self.stats.counters["memo.shared_hits"] = self.shared_memo.hits
        self.stats.counters["memo.shared_misses"] = self.shared_memo.misses
        self.stats.counters["memo.entries"] = len(self.shared_memo.entries)
        return self.stats.snapshot()

    def _op_metrics(self, req: Dict) -> Dict:
        """One merged service-metrics snapshot: pool gauges, disk and
        lease counters, shared-memo totals and delta-exchange counts —
        the same key set (and values) the ``stats`` CLI command renders.
        """

        if req.get("session"):
            managed = self._managed(req)
            engine = managed.session.engine
            return {
                "metrics": merged_metrics(
                    engine.stats,
                    pool=self.pool,
                    memo=self.shared_memo,
                    server=self,
                    net_stats=self.stats,
                )
            }
        return {
            "metrics": merged_metrics(
                self.stats,
                pool=self.pool,
                memo=self.shared_memo,
                server=self,
            )
        }

    # ------------------------------------------------------------------
    # memo gossip ops (the cross-shard exchange channel)
    # ------------------------------------------------------------------

    def _op_memo_pull(self, req: Dict) -> Dict:
        """Export the shared pair-test memo for a gossip peer.

        Entries are fully content-addressed (oracle digest + canonical
        pair form + PARAMETER slice), so a peer can absorb any subset
        without coordination — the same invariant the on-disk singleton
        record relies on.  ``known`` (optional) is a list of encoded
        keys the peer already holds; only the complement ships back.
        """

        entries = dict(self.shared_memo.entries)
        known = req.get("known")
        if known is not None:
            if not isinstance(known, list):
                raise _BadRequest("memo.pull 'known' must be a key list")
            have = {protocol._from_wire(k) for k in known}
            entries = {k: v for k, v in entries.items() if k not in have}
        return {
            "count": len(entries),
            "total": len(self.shared_memo.entries),
            "entries": protocol.encode_memo_entries(entries),
        }

    def _op_memo_push(self, req: Dict) -> Dict:
        """Absorb memo entries a gossip peer proved — idempotent."""

        try:
            entries = protocol.decode_memo_entries(req.get("entries"))
        except protocol.ProtocolError as exc:
            raise _BadRequest(str(exc))
        before = len(self.shared_memo.entries)
        self.shared_memo.absorb({"entries": entries})
        absorbed = len(self.shared_memo.entries) - before
        if absorbed:
            self.stats.bump("memo.gossip_absorbed", absorbed)
        return {
            "absorbed": absorbed,
            "entries": len(self.shared_memo.entries),
        }

    # ------------------------------------------------------------------
    # pipeline-graph ops
    # ------------------------------------------------------------------

    def _op_graph_describe(self, req: Dict) -> Dict:
        """The analysis graph's topology (+ the aggregate node set)."""

        graph = build_program_graph()
        return {
            "graph": graph.describe(self.features),
            "aggregates": [
                node.describe() for node, _fn in AGGREGATES.values()
            ],
        }

    def _op_graph_last(self, req: Dict) -> Dict:
        """Node outcomes of the session's last analysis: entry node plus
        one ``{node, key, state}`` row per scheduled node."""

        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            return managed.session.engine.node_report()
        finally:
            managed.lock.release()

    def _op_graph_plan(self, req: Dict) -> Dict:
        """What would re-run if the named inputs changed (pure topology)."""

        changed = req.get("changed")
        if not isinstance(changed, list) or not all(
            isinstance(c, str) for c in changed
        ):
            raise _BadRequest(
                "graph.plan needs 'changed': a list of input/node names"
            )
        managed = self._managed(req)
        self._locked(managed, req.get("id"))
        try:
            from ..pipeline.graph import GraphError

            try:
                return managed.session.engine.plan(changed)
            except GraphError as exc:
                raise _BadRequest(str(exc))
        finally:
            managed.lock.release()

    # ------------------------------------------------------------------
    # corpus batch ops
    # ------------------------------------------------------------------

    def _corpus_programs(self, req: Dict):
        programs = req.get("programs")
        if not isinstance(programs, list):
            raise _BadRequest(
                "corpus.submit needs 'programs': a list of "
                "{'name', 'source'} objects"
            )
        out = []
        for item in programs:
            if not isinstance(item, dict):
                raise _BadRequest("each corpus program must be an object")
            out.append((item.get("name"), item.get("source")))
        return out

    def _op_corpus_submit(self, req: Dict) -> Dict:
        """Create or extend a corpus job and analyze its programs.

        A streaming request (``"stream": true``) — or one carrying
        ``"wait": true`` — runs the batch synchronously, emitting one
        ``analysis.progress`` event (phase ``corpus.program``) per
        finished program before the terminal reply.  Otherwise the batch
        runs in the background and ``corpus.status`` polls it.
        """

        job = self.corpus.submit(
            self._corpus_programs(req), job=req.get("job")
        )
        emit = self._emit()
        if emit is not None or req.get("wait"):
            progress = None
            if emit is not None:

                def progress(record: Dict) -> None:
                    emit(protocol.EV_PROGRESS, record)

            snapshot = self.corpus.run(job, progress=progress)
            return {**snapshot, "started": False}
        self._work.submit(self.corpus.run, job)
        return {**job.snapshot(), "started": True}

    def _op_corpus_status(self, req: Dict) -> Dict:
        job = req.get("job")
        if not isinstance(job, str) or not job:
            raise _BadRequest("corpus.status needs a 'job' id")
        return self.corpus.get(job).snapshot()

    def _op_corpus_results(self, req: Dict) -> Dict:
        """The raw per-program result records of one corpus job — the
        fleet router concatenates these across shards, and the parity
        bench compares their fingerprints against a single-host run."""

        name = req.get("job")
        if not isinstance(name, str) or not name:
            raise _BadRequest("corpus.results needs a 'job' id")
        job = self.corpus.get(name)
        records = job.result_records()
        return {
            "job": name,
            "count": len(records),
            "records": records,
        }

    def _op_corpus_query(self, req: Dict) -> Dict:
        """One aggregate rollup over a job's finished results."""

        name = req.get("job")
        aggregate = req.get("aggregate")
        if not isinstance(name, str) or not name:
            raise _BadRequest("corpus.query needs a 'job' id")
        if not isinstance(aggregate, str) or not aggregate:
            raise _BadRequest(
                "corpus.query needs an 'aggregate' name "
                f"(one of: {', '.join(sorted(AGGREGATES))})"
            )
        job = self.corpus.get(name)
        value, cached = self.corpus.query(job, aggregate)
        snapshot = job.snapshot()
        return {
            "job": name,
            "aggregate": aggregate,
            "cached": cached,
            "complete": snapshot["complete"],
            "done": snapshot["done"],
            "total": snapshot["total"],
            "value": value,
        }

    def _op_sleep(self, req: Dict) -> Dict:
        """Test/diagnostic op: a long, cooperatively-cancellable wait."""

        deadline = time.monotonic() + float(req.get("seconds", 1.0))
        rid = req.get("id")
        while time.monotonic() < deadline:
            self._check_cancel(rid)
            time.sleep(0.02)
        return {"slept": float(req.get("seconds", 1.0))}

    def _op_shutdown(self, req: Dict) -> Dict:
        self.shutdown_event.set()
        return {"shutting_down": True}
