"""A thin Python client for the Ped session server.

Speaks the JSON-lines protocol of :mod:`repro.service.server` over any
line-oriented transport: a TCP connection (:meth:`PedClient.connect`), a
spawned ``python -m repro serve --stdio`` subprocess
(:meth:`PedClient.spawn`) or an in-process pipe pair (tests).  A reader
thread matches replies to requests by id, so many requests may be in
flight at once; :meth:`request` is the blocking convenience wrapper and
:meth:`submit` the asynchronous one.

>>> client = PedClient.connect(port=7077)
>>> client.request("open", session="w", source=fortran_text)
>>> client.request("loops", session="w", unit="main")
>>> client.close()

Failed requests raise :class:`PedRequestError`, carrying the server's
structured error ``type`` (``ped-error``, ``timeout``, ``cancelled``…)
and message.
"""

from __future__ import annotations

import itertools
import json
import socket
import subprocess
import sys
import threading
from concurrent.futures import Future
from typing import Dict, Optional


class PedRequestError(Exception):
    """A structured error reply from the server."""

    def __init__(self, etype: str, message: str) -> None:
        super().__init__(f"{etype}: {message}")
        self.type = etype
        self.message = message


class PedClient:
    """One protocol connection; safe to use from multiple threads."""

    def __init__(self, rfile, wfile, *, on_close=None) -> None:
        self._rfile = rfile
        self._wfile = wfile
        self._on_close = on_close
        self._write_lock = threading.Lock()
        self._pending: Dict[object, Future] = {}
        self._pending_lock = threading.Lock()
        self._ids = itertools.count(1)
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="ped-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def connect(cls, host: str = "127.0.0.1", port: int = 0) -> "PedClient":
        """Connect to a ``ped serve --port`` server."""

        sock = socket.create_connection((host, port))
        rfile = sock.makefile("r", encoding="utf-8")
        wfile = sock.makefile("w", encoding="utf-8")

        def _close():
            try:
                sock.close()
            except OSError:
                pass

        return cls(rfile, wfile, on_close=_close)

    @classmethod
    def spawn(cls, argv=None, **popen_kwargs) -> "PedClient":
        """Spawn ``python -m repro serve --stdio`` and attach to it."""

        argv = argv or [sys.executable, "-m", "repro", "serve", "--stdio"]
        proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            **popen_kwargs,
        )

        def _close():
            try:
                proc.stdin.close()
            except OSError:
                pass
            proc.wait(timeout=10)

        client = cls(proc.stdout, proc.stdin, on_close=_close)
        client.process = proc
        return client

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            for line in self._rfile:
                line = line.strip()
                if not line:
                    continue
                try:
                    reply = json.loads(line)
                except ValueError:
                    continue
                future = None
                with self._pending_lock:
                    future = self._pending.pop(reply.get("id"), None)
                if future is None or future.done():
                    continue
                if reply.get("ok"):
                    future.set_result(reply.get("result"))
                else:
                    err = reply.get("error") or {}
                    future.set_exception(
                        PedRequestError(
                            err.get("type", "unknown"),
                            err.get("message", "unknown error"),
                        )
                    )
        finally:
            self._fail_pending("connection closed")

    def _fail_pending(self, why: str) -> None:
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
        for future in pending.values():
            if not future.done():
                future.set_exception(PedRequestError("connection", why))

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    def submit(self, op: str, **params) -> "PendingReply":
        """Send one request; returns a handle resolving to its result."""

        rid = params.pop("id", None)
        if rid is None:
            rid = next(self._ids)
        req = {"id": rid, "op": op, **params}
        future: Future = Future()
        with self._pending_lock:
            self._pending[rid] = future
        line = json.dumps(req)
        try:
            with self._write_lock:
                self._wfile.write(line + "\n")
                self._wfile.flush()
        except (BrokenPipeError, ValueError, OSError) as exc:
            with self._pending_lock:
                self._pending.pop(rid, None)
            raise PedRequestError("connection", f"send failed: {exc}")
        return PendingReply(self, rid, future)

    def request(self, op: str, *, wait: Optional[float] = 30.0, **params):
        """Send one request and wait for its result (or raise)."""

        return self.submit(op, **params).result(wait)

    def cancel(self, target) -> None:
        """Ask the server to cancel request ``target`` (fire and forget)."""

        self.submit("cancel", target=target)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            with self._write_lock:
                self._wfile.close()
        except (OSError, ValueError):
            pass
        if self._on_close is not None:
            self._on_close()
        self._fail_pending("client closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PendingReply:
    """Handle for one in-flight request."""

    def __init__(self, client: PedClient, rid, future: Future) -> None:
        self.client = client
        self.id = rid
        self._future = future

    def result(self, timeout: Optional[float] = 30.0):
        return self._future.result(timeout=timeout)

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> None:
        """Request server-side cancellation of this call."""

        self.client.cancel(self.id)
