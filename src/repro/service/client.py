"""A thin Python client for the Ped session server.

Speaks the JSON-lines envelope protocol of
:mod:`repro.service.protocol` over any line-oriented transport: a TCP
connection (:meth:`PedClient.connect`), a spawned ``python -m repro
serve --stdio`` subprocess (:meth:`PedClient.spawn`) or an in-process
pipe pair (tests).  A reader thread matches replies to requests by id,
so many requests may be in flight at once; :meth:`request` is the
blocking convenience wrapper and :meth:`submit` the asynchronous one.

On a byte-level transport (``connect`` and ``spawn`` both provide one)
:meth:`negotiate_frames` upgrades the connection to the v5 binary frame
format — length-prefixed envelopes with delta-encoded repeats, so a
pane refresh or a progress stream costs bytes proportional to what
*changed* — and :meth:`negotiate_compression` climbs the second rung:
v6 adaptive zlib frames (dictionary-seeded from the delta baselines)
plus server-side coalescing of progress-event bursts into multi-record
frames, which this client transparently unpacks back into individual
:class:`ServerEvent`\\ s, so ``stream()``/``on_event`` callers see the
exact same sequence either way.  Both calls degrade gracefully: an
older server answers ``unknown-op`` (or refuses the rung) and the
connection stays at whatever level it reached.  ``bytes_sent`` /
``bytes_received`` count wire traffic in every mode.

>>> client = PedClient.connect(port=7077)
>>> client.request("open", session="w", source=fortran_text)
>>> client.request("loops", session="w", unit="main")
>>> client.close()

**Streaming.**  A request sent with ``stream=True`` receives typed
server-push events before its terminal reply.  Two consumption styles:

* *Iterator* — :meth:`stream` yields each :class:`ServerEvent` as it
  arrives and finally a synthetic ``result`` event carrying the terminal
  reply (and its ``seq``), so ordering is assertable end to end::

      for ev in client.stream("open", session="w", source=src):
          if ev.kind == "analysis.progress":
              print(ev.data["phase"], ev.seq)
          elif ev.kind == "result":
              units = ev.data["units"]

* *Callback* — ``submit(..., stream=True, on_event=fn)`` invokes ``fn``
  with each event on the reader thread while the returned handle
  resolves as usual.

Connection-wide broadcasts (``invalidation`` events with a ``null``
id — another session's edit dirtied units this client may hold) go to
listeners registered with :meth:`add_event_listener`.

Failed requests raise :class:`PedRequestError`, carrying the server's
structured error ``type`` (``ped-error``, ``timeout``, ``cancelled``…)
and message.  An ``unknown-op`` reply raises the sharper
:class:`UnsupportedOpError`, whose ``op`` attribute names the operation
the server does not speak — feature-detection against older servers
catches that one type instead of string-matching messages.

**Transport failures.**  A connect refusal, a reset socket or a broken
pipe raises :class:`ServerUnavailableError` (type ``connection``) — a
typed signal callers can branch on instead of catching raw ``OSError``.
:meth:`PedClient.connect` takes ``retries``/``backoff``/``jitter``:
transient connect errors are retried with exponential backoff plus
jitter up to the bound.  Retries default *off* so tests (and anything
asserting fail-fast behavior) see the first error immediately; the
fleet router turns them on.
"""

from __future__ import annotations

import itertools
import json
import queue
import random
import socket
import subprocess
import sys
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, Optional

from . import protocol

#: Frame size cap on the *client's* receive side.  Server replies (whole
#: panes, corpus rollups) dwarf requests, so the client accepts far more
#: than the server's request cap.
MAX_REPLY_FRAME_BYTES = 256 * 1024 * 1024


class PedRequestError(Exception):
    """A structured error reply from the server."""

    def __init__(self, etype: str, message: str) -> None:
        super().__init__(f"{etype}: {message}")
        self.type = etype
        self.message = message


class ServerUnavailableError(PedRequestError):
    """The server cannot be reached (connect refused/reset, send on a
    dead socket, or the retry budget exhausted).  Carries the underlying
    OS error text; ``attempts`` counts how many connects were tried."""

    def __init__(self, message: str, attempts: int = 1) -> None:
        super().__init__("connection", message)
        self.attempts = attempts


class UnsupportedOpError(PedRequestError):
    """The server answered ``unknown-op``: it does not speak this
    operation (an older server, or a typo).  ``op`` names the operation
    the client asked for, so feature-detection code can branch on it."""

    def __init__(self, op: str, message: str) -> None:
        super().__init__("unknown-op", message)
        self.op = op


def _error_from(op: Optional[str], err: Dict) -> PedRequestError:
    """The typed exception for one structured error reply."""

    etype = err.get("type", "unknown")
    message = err.get("message", "unknown error")
    if etype == "unknown-op":
        return UnsupportedOpError(op or "", message)
    return PedRequestError(etype, message)


@dataclass
class ServerEvent:
    """One server-push event (or the synthetic terminal ``result``)."""

    kind: str
    data: Dict = field(default_factory=dict)
    seq: Optional[int] = None
    request_id: object = None


#: Sentinel pushed into a stream queue when the terminal reply lands.
_DONE = object()


def _is_binary(f) -> bool:
    """True when ``f`` reads/writes bytes rather than text."""

    mode = getattr(f, "mode", None)
    if isinstance(mode, str) and mode:
        return "b" in mode
    # Pipes and wrappers without a mode: a zero-length read tells the
    # truth without consuming anything (writers have no cheap probe;
    # transports always pair like with like).
    try:
        probe = f.read(0)
    except (AttributeError, OSError, ValueError):
        return False
    return isinstance(probe, bytes)


class PedClient:
    """One protocol connection; safe to use from multiple threads."""

    def __init__(self, rfile, wfile, *, on_close=None) -> None:
        self._rfile = rfile
        self._wfile = wfile
        self._on_close = on_close
        # Byte-level streams (socket/pipe makefiles in "b" mode) enable
        # exact wire accounting and binary-frame negotiation; text
        # streams (tests hand in StringIO pairs) stay JSON-lines only.
        self._rbinary = _is_binary(rfile)
        self._wbinary = _is_binary(wfile)
        #: Wire traffic counters, framing-independent (binary streams
        #: count exact bytes; text streams count characters, close
        #: enough for the ASCII-dominated envelopes).
        self.bytes_sent = 0
        self.bytes_received = 0
        #: Non-None once binary framing is negotiated (the write side).
        self._encoder: Optional[protocol.FrameEncoder] = None
        self._frames_rid: object = None
        self._switch_to_frames = False
        self._compress = False
        self._write_lock = threading.Lock()
        self._pending: Dict[object, Future] = {}
        self._ops: Dict[object, str] = {}
        self._pending_lock = threading.Lock()
        self._event_sinks: Dict[object, Callable[[ServerEvent], None]] = {}
        self._batch_sinks: Dict[object, Callable[[list], None]] = {}
        self._reply_seq: Dict[object, Optional[int]] = {}
        self._listeners: Dict[int, Callable[[ServerEvent], None]] = {}
        self._listener_ids = itertools.count(1)
        self._ids = itertools.count(1)
        self._closed = False
        self._reader = threading.Thread(
            target=self._read_loop, name="ped-client-reader", daemon=True
        )
        self._reader.start()

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def connect(
        cls,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        retries: int = 0,
        backoff: float = 0.05,
        jitter: float = 0.25,
        timeout: Optional[float] = None,
    ) -> "PedClient":
        """Connect to a ``ped serve --port`` server.

        ``retries`` bounds how many *additional* connect attempts follow
        a transient failure (refused/reset/unreachable); attempt ``i``
        sleeps ``backoff * 2**i`` seconds first, stretched by up to
        ``jitter`` fraction of random extra so a fleet of reconnecting
        clients does not thunder in lockstep.  Exhausting the budget
        raises :class:`ServerUnavailableError` (never a raw ``OSError``).
        """

        attempts = max(0, int(retries)) + 1
        last: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                delay = backoff * (2 ** (attempt - 1))
                delay *= 1.0 + random.random() * max(0.0, jitter)
                time.sleep(delay)
            try:
                sock = socket.create_connection(
                    (host, port), timeout=timeout
                )
                sock.settimeout(None)
                break
            except OSError as exc:
                last = exc
        else:
            raise ServerUnavailableError(
                f"cannot connect to {host}:{port} after {attempts} "
                f"attempt(s): {last}",
                attempts=attempts,
            ) from last
        rfile = sock.makefile("rb")
        wfile = sock.makefile("wb")

        def _close():
            # ``makefile`` objects hold io-refs on the fd, and the
            # reader thread keeps ``rfile`` open — a bare ``close()``
            # would leave the TCP connection half-alive (no FIN) and
            # the reader blocked forever.  ``shutdown`` tears the
            # stream down for real and wakes the reader with EOF.
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

        return cls(rfile, wfile, on_close=_close)

    @classmethod
    def spawn(cls, argv=None, **popen_kwargs) -> "PedClient":
        """Spawn ``python -m repro serve --stdio`` and attach to it."""

        argv = argv or [sys.executable, "-m", "repro", "serve", "--stdio"]
        proc = subprocess.Popen(
            argv,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            **popen_kwargs,
        )

        def _close():
            try:
                proc.stdin.close()
            except OSError:
                pass
            proc.wait(timeout=10)

        client = cls(proc.stdout, proc.stdin, on_close=_close)
        client.process = proc
        return client

    # ------------------------------------------------------------------
    # broadcast listeners
    # ------------------------------------------------------------------

    def add_event_listener(
        self, fn: Callable[[ServerEvent], None]
    ) -> int:
        """Register ``fn`` for connection-wide broadcast events
        (``invalidation``); returns a token for
        :meth:`remove_event_listener`.  Called on the reader thread."""

        token = next(self._listener_ids)
        with self._pending_lock:
            self._listeners[token] = fn
        return token

    def remove_event_listener(self, token: int) -> None:
        with self._pending_lock:
            self._listeners.pop(token, None)

    # ------------------------------------------------------------------
    # the wire
    # ------------------------------------------------------------------

    def _read_loop(self) -> None:
        try:
            if self._rbinary:
                self._read_lines_binary()
            else:
                for line in self._rfile:
                    self.bytes_received += len(line)
                    self._handle_line(line.strip())
        except (OSError, ValueError):
            pass  # stream torn down under the reader
        finally:
            self._fail_pending("connection closed")

    def _read_lines_binary(self) -> None:
        """JSON-lines over a byte stream; hands off to the frame loop
        once a ``frames`` negotiation reply lands (the reply is the last
        JSON line of the connection, so no readahead can straddle the
        switch — ``readline`` stops at the newline and the buffered
        remainder feeds the frame decoder through the same stream)."""

        rfile = self._rfile
        while True:
            line = rfile.readline()
            if not line:
                return
            self.bytes_received += len(line)
            self._handle_line(
                line.decode("utf-8", errors="replace").strip()
            )
            if self._switch_to_frames:
                self._read_frames()
                return

    def _handle_line(self, text: str) -> None:
        if not text:
            return
        try:
            env = json.loads(text)
        except ValueError:
            return
        if not isinstance(env, dict):
            return
        if "event" in env:
            self._handle_event(env)
        else:
            self._handle_reply(env)

    def _read_frames(self) -> None:
        """Binary-frame read loop (after ``frames`` negotiation)."""

        rfile = self._rfile
        read1 = getattr(rfile, "read1", rfile.read)
        decoder = protocol.FrameDecoder(MAX_REPLY_FRAME_BYTES)
        while True:
            try:
                batch = decoder.next_batch()
            except protocol.ProtocolError:
                # A frame the client cannot decode (a server bug or a
                # corrupted stream); skip it — the affected request
                # times out rather than poisoning the connection.
                continue
            if batch is not None:
                if len(batch) > 1:
                    self._handle_batch(batch)
                else:
                    env = batch[0]
                    if "event" in env:
                        self._handle_event(env)
                    else:
                        self._handle_reply(env)
                continue
            data = read1(65536)
            if not data:
                return
            self.bytes_received += len(data)
            decoder.feed(data)

    def _handle_batch(self, envs: list) -> None:
        """A multi-record frame: delivered whole to the owning request's
        ``on_batch`` sink when one is registered (the fleet router uses
        this to relay a coalesced burst as one frame), otherwise fanned
        out envelope by envelope — indistinguishable from uncoalesced
        delivery."""

        rid = envs[0].get("id")
        if rid is not None and all(
            "event" in e and e.get("id") == rid for e in envs
        ):
            with self._pending_lock:
                sink = self._batch_sinks.get(rid)
            if sink is not None:
                try:
                    sink(
                        [
                            ServerEvent(
                                kind=e.get("event", ""),
                                data=e.get("data") or {},
                                seq=e.get("seq"),
                                request_id=rid,
                            )
                            for e in envs
                        ]
                    )
                except Exception:  # noqa: BLE001 — sink bug ≠ reader death
                    pass
                return
        for env in envs:
            if "event" in env:
                self._handle_event(env)
            else:
                self._handle_reply(env)

    def _handle_event(self, env: Dict) -> None:
        ev = ServerEvent(
            kind=env.get("event", ""),
            data=env.get("data") or {},
            seq=env.get("seq"),
            request_id=env.get("id"),
        )
        if ev.request_id is None:
            with self._pending_lock:
                sinks = list(self._listeners.values())
            for fn in sinks:
                try:
                    fn(ev)
                except Exception:  # noqa: BLE001 — listener bug ≠ reader death
                    pass
            return
        with self._pending_lock:
            sink = self._event_sinks.get(ev.request_id)
        if sink is not None:
            try:
                sink(ev)
            except Exception:  # noqa: BLE001
                pass

    def _handle_reply(self, reply: Dict) -> None:
        rid = reply.get("id")
        if (
            rid is not None
            and rid == self._frames_rid
            and reply.get("ok")
            and (reply.get("result") or {}).get("frames") == "binary"
        ):
            # Reader side of the negotiation: this reply is the last
            # JSON line; everything after it arrives framed.
            self._switch_to_frames = True
        with self._pending_lock:
            future = self._pending.pop(rid, None)
            op = self._ops.pop(rid, None)
            self._batch_sinks.pop(rid, None)
            had_sink = self._event_sinks.pop(rid, None) is not None
            if had_sink:
                # Only streaming requests read the terminal seq back;
                # recording it for every reply would leak the map.
                self._reply_seq[rid] = reply.get("seq")
        if future is None or future.done():
            return
        if reply.get("ok"):
            future.set_result(reply.get("result"))
        else:
            future.set_exception(
                _error_from(op, reply.get("error") or {})
            )

    def _fail_pending(self, why: str) -> None:
        with self._pending_lock:
            pending, self._pending = dict(self._pending), {}
            self._ops.clear()
            self._event_sinks.clear()
            self._batch_sinks.clear()
        for future in pending.values():
            if not future.done():
                future.set_exception(PedRequestError("connection", why))

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------

    def submit(
        self,
        op: str,
        *,
        stream: bool = False,
        on_event: Optional[Callable[[ServerEvent], None]] = None,
        on_batch: Optional[Callable[[list], None]] = None,
        **params,
    ) -> "PendingReply":
        """Send one request; returns a handle resolving to its result.

        ``stream=True`` (implied by ``on_event``/``on_batch``) opts the
        request into server-push events; ``on_event`` receives each
        :class:`ServerEvent` on the reader thread.  ``on_batch``, when
        given, receives a coalesced multi-record frame's events as one
        list instead of event-by-event (uncoalesced events still go to
        ``on_event``) — relays use it to forward a burst as a burst.
        """

        rid = params.pop("id", None)
        if rid is None:
            rid = next(self._ids)
        if on_event is not None or on_batch is not None:
            stream = True
        req = {"id": rid, "op": op, **params}
        if stream:
            req["stream"] = True
        future: Future = Future()
        with self._pending_lock:
            self._pending[rid] = future
            self._ops[rid] = op
            if on_event is not None:
                self._event_sinks[rid] = on_event
            if on_batch is not None:
                self._batch_sinks[rid] = on_batch
        try:
            with self._write_lock:
                self._write_envelope(req)
        except (BrokenPipeError, ValueError, OSError) as exc:
            with self._pending_lock:
                self._pending.pop(rid, None)
                self._ops.pop(rid, None)
                self._event_sinks.pop(rid, None)
                self._batch_sinks.pop(rid, None)
            raise ServerUnavailableError(f"send failed: {exc}")
        return PendingReply(self, rid, future)

    def _write_envelope(self, req: Dict) -> None:
        """Send one request under the held write lock."""

        if self._encoder is not None:
            data = self._encoder.encode(req)
            self._wfile.write(data)
            self._wfile.flush()
            self.bytes_sent += len(data)
            return
        line = json.dumps(req) + "\n"
        if self._wbinary:
            data = line.encode("utf-8")
            self._wfile.write(data)
            self.bytes_sent += len(data)
        else:
            self._wfile.write(line)
            self.bytes_sent += len(line)
        self._wfile.flush()

    def request(self, op: str, *, wait: Optional[float] = 30.0, **params):
        """Send one request and wait for its result (or raise)."""

        return self.submit(op, **params).result(wait)

    def negotiate_frames(self, wait: Optional[float] = 30.0) -> bool:
        """Upgrade the connection to v5 binary frames; True on success.

        Returns False — and the connection stays on JSON lines, fully
        usable — when the transport is text-level, the server predates
        v5 (``unknown-op``) or refuses (``bad-request``).  The write
        lock is held across the exchange: the negotiation request must
        be the last JSON this side sends, so concurrent submitters
        block for one round trip and then come out framed.
        """

        if self._encoder is not None:
            return True
        if not (self._rbinary and self._wbinary):
            return False
        rid = next(self._ids)
        future: Future = Future()
        with self._pending_lock:
            self._pending[rid] = future
            self._ops[rid] = protocol.FRAMES_OP
            self._frames_rid = rid
        req = {"id": rid, "op": protocol.FRAMES_OP, "mode": "binary"}
        with self._write_lock:
            try:
                self._write_envelope(req)
            except (BrokenPipeError, ValueError, OSError) as exc:
                with self._pending_lock:
                    self._pending.pop(rid, None)
                    self._ops.pop(rid, None)
                raise ServerUnavailableError(f"send failed: {exc}")
            try:
                result = future.result(wait)
            except PedRequestError:
                self._frames_rid = None
                return False
            if (result or {}).get("frames") == "binary":
                self._encoder = protocol.FrameEncoder()
                return True
            self._frames_rid = None
            return False

    def negotiate_compression(self, wait: Optional[float] = 30.0) -> bool:
        """Climb to v6 adaptive compression; True on success.

        Negotiates binary frames first when needed — the ladder is
        strictly ``frames`` → ``compress``.  Returns False (connection
        fully usable at whatever rung it reached) when the transport is
        text-level or the server predates v6 (``unknown-op``) or
        refuses (``bad-request``).  On success the server compresses
        and coalesces its side, and this client's requests compress
        adaptively too.
        """

        if self._compress:
            return True
        if not self.negotiate_frames(wait):
            return False
        try:
            result = self.request(
                protocol.COMPRESS_OP, wait=wait, mode="zlib"
            )
        except PedRequestError:
            return False
        if (result or {}).get("compress") == "zlib":
            with self._write_lock:
                if self._encoder is not None:
                    self._encoder.compress = True
                    self._compress = True
            return self._compress
        return False

    def stream(
        self, op: str, *, wait: Optional[float] = 60.0, **params
    ) -> Iterator[ServerEvent]:
        """Send a streaming request; yield its events as they arrive.

        The final yielded item is a synthetic ``result`` event whose
        ``data`` is the terminal reply's result and whose ``seq`` is the
        reply's sequence id (always greater than every event's — the
        protocol guarantee).  A structured error reply raises
        :class:`PedRequestError` instead of yielding ``result``.
        """

        events: "queue.Queue" = queue.Queue()
        pending = self.submit(
            op, stream=True, on_event=events.put, **params
        )
        pending._future.add_done_callback(lambda _f: events.put(_DONE))
        while True:
            item = events.get(timeout=wait)
            if item is _DONE:
                # Drain events that raced the terminal reply.
                while True:
                    try:
                        late = events.get_nowait()
                    except queue.Empty:
                        break
                    if late is not _DONE:
                        yield late
                result = pending.result(0)
                with self._pending_lock:
                    seq = self._reply_seq.pop(pending.id, None)
                yield ServerEvent(
                    kind="result",
                    data=result,
                    seq=seq,
                    request_id=pending.id,
                )
                return
            yield item

    # ------------------------------------------------------------------
    # corpus batch convenience wrappers
    # ------------------------------------------------------------------

    def corpus_submit(
        self,
        programs,
        *,
        job: Optional[str] = None,
        wait: bool = False,
        timeout: Optional[float] = 300.0,
        **params,
    ):
        """Submit ``{name: source}`` (or ``[(name, source), ...]``)
        programs as one corpus batch; ``wait=True`` blocks until the
        whole batch is analyzed."""

        if isinstance(programs, dict):
            programs = sorted(programs.items())
        payload = [
            {"name": name, "source": source} for name, source in programs
        ]
        if job is not None:
            params["job"] = job
        if wait:
            params["wait"] = True
        return self.submit(
            "corpus.submit", programs=payload, **params
        ).result(timeout)

    def corpus_status(self, job: str):
        return self.request("corpus.status", job=job)

    def corpus_query(self, job: str, aggregate: str):
        """One fleet-wide rollup (``summary``, ``obstacles``, ``tiers``
        or ``transforms``) over a corpus job's finished results."""

        return self.request("corpus.query", job=job, aggregate=aggregate)

    def corpus_results(self, job: str):
        """The raw per-program result records of one corpus job."""

        return self.request("corpus.results", job=job)

    # -- event-sourced session ops (protocol v7) ------------------------

    def session_log(
        self,
        session: str,
        start: int = 0,
        count: Optional[int] = None,
        wait: Optional[float] = 30.0,
    ):
        """A page of the session's mutation journal (live or persisted)."""

        req = {"session": session, "start": start}
        if count is not None:
            req["count"] = count
        return self.request("session.log", wait=wait, **req)

    def session_replay(
        self,
        session: str,
        upto: Optional[int] = None,
        wait: Optional[float] = 120.0,
    ):
        """Rebuild the session's state at journal record ``upto`` (all
        records when omitted) and return its analysis fingerprint."""

        req = {"session": session}
        if upto is not None:
            req["upto"] = upto
        return self.request("session.replay", wait=wait, **req)

    def session_restore(
        self,
        session: str,
        replace: bool = False,
        wait: Optional[float] = 120.0,
    ):
        """Resurrect a session from its journal persisted on the server."""

        req = {"session": session}
        if replace:
            req["replace"] = True
        return self.request("session.restore", wait=wait, **req)

    def cancel(self, target) -> None:
        """Ask the server to cancel request ``target`` (fire and forget)."""

        self.submit("cancel", target=target)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            with self._write_lock:
                self._wfile.close()
        except (OSError, ValueError):
            pass
        if self._on_close is not None:
            self._on_close()
        self._fail_pending("client closed")

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PendingReply:
    """Handle for one in-flight request."""

    def __init__(self, client: PedClient, rid, future: Future) -> None:
        self.client = client
        self.id = rid
        self._future = future

    def result(self, timeout: Optional[float] = 30.0):
        return self._future.result(timeout=timeout)

    def done(self) -> bool:
        return self._future.done()

    def cancel(self) -> None:
        """Request server-side cancellation of this call."""

        self.client.cancel(self.id)
