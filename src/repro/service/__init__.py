"""The analysis service layer: parallel workers, persistence, serving.

Three cooperating subsystems on top of the incremental engine:

* :mod:`repro.service.pool` / :mod:`repro.service.tasks` — fan
  independent per-unit work (parse, summary steps, dependence) out
  across worker processes, with a deterministic inline fallback;
* :mod:`repro.service.diskcache` / :mod:`repro.service.persist` — a
  content-addressed on-disk store that lets a reopened session start
  warm;
* :mod:`repro.service.protocol` / :mod:`repro.service.session_host` /
  :mod:`repro.service.server` / :mod:`repro.service.client` — a
  JSON-lines envelope protocol (requests, replies, server-push events
  with per-connection sequence ids), the transport-agnostic session
  host, the stdio/TCP transports (``python -m repro serve``) and a thin
  client with a streaming iterator/callback API;
* :mod:`repro.service.storelock` — lease-based coordination so N server
  processes can share one ``--cache-dir`` (and exchange pair-test memo
  deltas through it);
* :mod:`repro.service.metrics` — the one merged service-metrics
  snapshot the server's ``metrics`` op and the ``stats`` CLI both
  report.

``build_engine`` is the one-stop factory the CLI and sessions use to
turn ``--jobs`` / ``--cache-dir`` into a configured engine.

The server/client pair is imported lazily: they depend on the editor
package, which itself builds on the engine this package supplies.
"""

from __future__ import annotations

from typing import Optional

from .diskcache import DiskCache, FORMAT_VERSION
from .metrics import merged_metrics, render_metrics
from .persist import PersistentStore
from .pool import ElasticWorkerPool, SerialPool, WorkerPool, make_pool
from .protocol import MAX_REQUEST_BYTES, PROTOCOL_VERSION
from .storelock import StoreLease

__all__ = [
    "DiskCache",
    "FORMAT_VERSION",
    "PersistentStore",
    "StoreLease",
    "SerialPool",
    "WorkerPool",
    "ElasticWorkerPool",
    "make_pool",
    "merged_metrics",
    "render_metrics",
    "build_engine",
    "MAX_REQUEST_BYTES",
    "PROTOCOL_VERSION",
    "PedServer",
    "PedClient",
    "PedRequestError",
    "ServerUnavailableError",
    "UnsupportedOpError",
    "ServerEvent",
    "serve_stdio",
    "serve_tcp",
]


def build_engine(
    features=None,
    jobs=1,
    cache_dir: Optional[str] = None,
    stats=None,
    pool=None,
    store=None,
    shared_memo=None,
):
    """An :class:`~repro.incremental.AnalysisEngine` wired for service.

    ``jobs > 1`` attaches a process pool (``"auto"`` an elastic one),
    ``cache_dir`` a persistent store; the defaults reproduce the classic
    serial, in-memory engine.  Explicit ``pool`` / ``store`` /
    ``shared_memo`` arguments (e.g. the server's shared instances) win
    over the convenience flags.
    """

    from ..incremental.engine import AnalysisEngine
    from ..incremental.stats import EngineStats

    stats = stats or EngineStats()
    if pool is None:
        pool = make_pool(jobs, stats=stats)
    if store is None and cache_dir:
        store = PersistentStore.at(cache_dir, stats=stats)
    return AnalysisEngine(
        features=features,
        stats=stats,
        pool=pool,
        store=store,
        shared_memo=shared_memo,
    )


def __getattr__(name: str):
    if name in ("PedServer", "serve_stdio", "serve_tcp"):
        from . import server

        return getattr(server, name)
    if name in (
        "PedClient",
        "PedRequestError",
        "ServerUnavailableError",
        "UnsupportedOpError",
        "ServerEvent",
    ):
        from . import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
