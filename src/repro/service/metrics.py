"""One merged service-metrics snapshot, shared by server and CLI.

The satellite rule this module enforces: the server's ``metrics`` op and
the editor's ``stats`` command must report the *same keys with the same
meanings*, so a dashboard scraping the server and a user eyeballing the
CLI never argue about names.  :func:`merged_metrics` is the single
producer — both callers hand it their stats object, worker pool and
shared memo and get one flat ``{key: number}`` dict:

* ``pool.workers`` / ``pool.queue_depth`` (+ ``.peak``) — live gauges
  re-read from the pool itself, so the snapshot reflects *now*, not the
  last time a batch happened to publish.
* ``pool.tasks`` / ``pool.batches`` / ``pool.busy_s`` / ``pool.wall_s``
  / ``pool.utilization`` — cumulative work volume and the derived
  busy-over-wall speedup.
* ``memo.shared_hits`` / ``memo.shared_misses`` / ``memo.shared_hit_rate``
  / ``memo.entries`` — shared pair-test memo totals, read from the memo
  object (the authoritative source) rather than whichever engine last
  copied them.
* ``memo.delta_absorbed`` / ``memo.delta_exported`` /
  ``memo.delta_skipped`` / ``memo.persisted_entries`` — cross-process
  memo-delta exchange counters.
* ``disk.*`` and ``lease.*`` — persistent-store and store-lease
  counters, passed through from the stats counters verbatim.
* ``server.connections.open`` / ``server.connections.peak`` /
  ``server.uptime_s`` — live transport gauges (how many clients are
  connected right now, the high-water mark, and how long this server
  process has been up), read from the server when one is attached.
* ``net.bytes_in`` / ``net.bytes_out`` — wire bytes both transports
  actually read and wrote (JSON lines and binary frames alike).
  ``net.bytes_out_raw`` is what the same traffic would have cost
  uncompressed, so ``net.compress_ratio = bytes_out / bytes_out_raw``
  (1.0 when nothing was written, lower is better).
  ``net.frames_compressed`` / ``net.coalesced_events`` /
  ``net.flushes`` count v6 compressed frames shipped, progress events
  folded into multi-record frames, and writer flushes.  Transport
  counters are server-scoped, so a session-bound ``metrics`` request
  overlays them from the server stats rather than the engine's.
* ``analyses`` — how many engine analysis cycles fed these numbers.

Keys with a zero value are still present (a dashboard wants stable
columns); keys for absent subsystems (no pool, no memo, no store) are
simply whatever the counters already recorded.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional


#: Counter keys always present in a merged snapshot, even at zero —
#: scrapers get a stable schema regardless of which subsystems ran.
STABLE_KEYS = (
    "pool.workers",
    "pool.queue_depth",
    "pool.tasks",
    "pool.batches",
    "memo.shared_hits",
    "memo.shared_misses",
    "memo.entries",
    "memo.delta_absorbed",
    "memo.delta_exported",
    "memo.delta_skipped",
    "memo.persisted_entries",
    "corpus.jobs",
    "corpus.programs",
    "corpus.errors",
    "server.connections.open",
    "server.connections.peak",
    "server.uptime_s",
    "net.bytes_in",
    "net.bytes_out",
    "net.bytes_out_raw",
    "net.frames_compressed",
    "net.coalesced_events",
    "net.flushes",
    "journal.records",
    "journal.bytes",
    "journal.replays",
    "journal.restores",
)


class ConnectionGauge:
    """Open/peak connection counts, updated by every transport.

    Both the thread-per-connection transport and the asyncio fleet
    transport call :meth:`enter` / :meth:`leave` around each client, so
    the ``metrics`` op reports one truthful pair of gauges regardless of
    which front end accepted the connection.
    """

    def __init__(self) -> None:
        self.open = 0
        self.peak = 0
        self._lock = threading.Lock()

    def enter(self) -> None:
        with self._lock:
            self.open += 1
            if self.open > self.peak:
                self.peak = self.open

    def leave(self) -> None:
        with self._lock:
            self.open = max(0, self.open - 1)


def merged_metrics(
    stats, pool=None, memo=None, server=None, net_stats=None
) -> Dict[str, float]:
    """The one service-metrics dict (see module docstring for keys).

    ``net_stats`` lets a session-bound snapshot overlay the server-scoped
    transport counters (``net.*``) on top of the engine's own stats.
    """

    out: Dict[str, float] = {}
    for key in STABLE_KEYS:
        out[key] = 0
    # Pass through every recorded counter: disk.*, lease.*, pool.*,
    # memo.delta_*, plus anything a future subsystem adds.
    for key, value in stats.counters.items():
        out[key] = value
    if net_stats is not None and net_stats is not stats:
        # Transport traffic and journal durability are server-scoped
        # counters; overlay them so a session-bound snapshot still
        # reports them truthfully.
        for key, value in net_stats.counters.items():
            if key.startswith(("net.", "journal.")):
                out[key] = value
    out["analyses"] = stats.analyses
    if pool is not None:
        # Live gauges beat the last-published counter values.
        out["pool.workers"] = getattr(pool, "jobs", 1)
    if memo is not None:
        out["memo.shared_hits"] = memo.hits
        out["memo.shared_misses"] = memo.misses
        out["memo.entries"] = len(memo.entries)
    if server is not None:
        gauge = getattr(server, "connections", None)
        if gauge is not None:
            out["server.connections.open"] = gauge.open
            out["server.connections.peak"] = gauge.peak
        started = getattr(server, "started_monotonic", None)
        if started is not None:
            out["server.uptime_s"] = time.monotonic() - started
    hits = out.get("memo.shared_hits", 0)
    misses = out.get("memo.shared_misses", 0)
    looked = hits + misses
    out["memo.shared_hit_rate"] = hits / looked if looked else 0.0
    wall = out.get("pool.wall_s", 0.0)
    busy = out.get("pool.busy_s", 0.0)
    out["pool.utilization"] = busy / wall if wall else 0.0
    raw = out.get("net.bytes_out_raw", 0)
    out["net.compress_ratio"] = out.get("net.bytes_out", 0) / raw if raw else 1.0
    return out


def render_metrics(metrics: Dict[str, float]) -> str:
    """Human-readable table of a merged snapshot (the ``stats`` CLI's
    service-metrics section — same keys the server's ``metrics`` op
    returns)."""

    rows = ["service metrics"]
    rows.append("-" * 30)
    for key in sorted(metrics):
        value = metrics[key]
        if key.endswith(("_s", "_rate", "utilization")):
            shown = f"{value:.4f}"
        else:
            shown = f"{value:g}"
        rows.append(f"{key:<24} {shown:>12}")
    return "\n".join(rows)
