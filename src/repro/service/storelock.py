"""Lease-based coordination for stores shared by multiple processes.

The content-addressed half of the disk cache needs no coordination:
records are immutable (a key fully determines its payload) and written
via atomic rename, so concurrent writers of the *same* key produce the
same bytes and concurrent readers never observe a torn record.  What
does need coordination is the one mutable singleton — the shared
pair-test memo, updated by read-merge-write — and that is what
:class:`StoreLease` guards.

**Lease state machine.**  A lease is a small JSON file next to the
store (``<root>/locks/<name>.lease``) recording ``{holder, pid,
expires}``:

* ``free`` — no lease file.  ``acquire`` creates it with
  ``O_CREAT | O_EXCL`` (the atomic arbiter: exactly one creator wins)
  and verifies by reading its own record back.
* ``held`` — file exists, ``expires`` in the future.  Waiters poll with
  a small sleep until the deadline; an ``acquire`` timeout returns
  ``False`` (callers skip the guarded work — it is an optimization,
  never a correctness requirement).
* ``stale`` — file exists but ``expires`` passed, i.e. the holder
  crashed or hung past its TTL.  The next waiter *takes over*: it logs
  the dead holder, unlinks the stale file and loops back to the
  ``O_CREAT | O_EXCL`` race.  Crashed-holder recovery is therefore a
  logged warning (with the takeover reason), not a fatal condition.  A
  corrupt/unreadable record is treated exactly like a stale one, and so
  is a record carrying *our own* holder token — the lease is not
  reentrant, so finding our token means a previous incarnation of this
  process orphaned it (staleness compares holder tokens, never bare
  pids, which the OS reuses across restarts).

**Takeover race.**  Two waiters can both observe the same stale lease
and race the takeover; ``O_EXCL`` plus the post-create read-back
verification resolve the common interleavings, but a millisecond-scale
window remains in which both believe they hold the lease.  That is
acceptable *by design*: every guarded writer in this codebase performs
idempotent monotone merges of content-addressed entries through atomic
renames, so the worst outcome of a double-holder is one lost delta
(re-exported on the next sync), never a corrupt record.

Counters (on an attached stats object): ``lease.acquired``,
``lease.contended`` (had to wait at least once), ``lease.takeover``
(stale lease broken), ``lease.timeout`` (gave up waiting).
"""

from __future__ import annotations

import json
import logging
import os
import socket
import threading
import time
from pathlib import Path
from typing import Optional

log = logging.getLogger(__name__)

#: How long a lease lives without renewal; generous next to the
#: sub-second critical sections it guards, small enough that a crashed
#: holder stalls siblings only briefly.
DEFAULT_TTL = 10.0
#: Poll interval while waiting on a held lease.
POLL_S = 0.02
#: Settle delay before the post-create read-back verification.
VERIFY_DELAY_S = 0.002


def default_holder_id() -> str:
    """A holder id unique across the processes sharing one store."""

    return (
        f"{socket.gethostname()}:{os.getpid()}:{threading.get_ident():x}"
    )


class StoreLease:
    """One named lease over a shared store; reusable but not reentrant."""

    def __init__(
        self,
        path,
        holder: Optional[str] = None,
        ttl: float = DEFAULT_TTL,
        stats=None,
    ) -> None:
        self.path = Path(path)
        self.holder = holder or default_holder_id()
        self.ttl = ttl
        self.stats = stats
        self.held = False

    # ------------------------------------------------------------------

    def _bump(self, name: str) -> None:
        if self.stats is not None:
            self.stats.bump(name)

    def _record(self) -> bytes:
        return json.dumps(
            {
                "holder": self.holder,
                "pid": os.getpid(),
                "expires": time.time() + self.ttl,
            }
        ).encode()

    def _read(self) -> Optional[dict]:
        """The current lease record, or ``None`` for free/corrupt.

        A corrupt record returns ``{"holder": None, "expires": 0}`` —
        indistinguishable from stale, which is exactly the treatment it
        deserves (the writer died mid-write or predates this format).
        """

        try:
            blob = self.path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            return {"holder": None, "pid": None, "expires": 0.0}
        try:
            rec = json.loads(blob)
            if not isinstance(rec, dict) or "expires" not in rec:
                raise ValueError("not a lease record")
            return rec
        except ValueError:
            return {"holder": None, "pid": None, "expires": 0.0}

    def _try_create(self) -> bool:
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            fd = os.open(
                self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        except OSError as exc:
            # Unwritable lock dir: behave like a timeout (the caller
            # skips the guarded optimization), never crash the analysis.
            log.warning("cannot create lease %s: %s", self.path, exc)
            return False
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(self._record())
        except OSError:
            return False
        # Read-back verification: shrinks the takeover race window — a
        # concurrent stale-takeover may have unlinked and recreated the
        # file between our create and now.
        time.sleep(VERIFY_DELAY_S)
        rec = self._read()
        return bool(rec) and rec.get("holder") == self.holder

    # ------------------------------------------------------------------

    def _takeover_reason(self, rec: dict) -> Optional[str]:
        """Why a found lease record may be broken, or ``None`` if it is
        legitimately held.

        Staleness is decided on the *holder token* (hostname + pid +
        thread id), never on the pid alone: after a host restart the OS
        happily hands a new process the pid a dead lease records, and a
        pid-based check would treat the orphan as alive forever (or,
        worse, let the unrelated new process "renew" it).  Three broken
        states, each with its own logged reason:

        * the TTL expired — the holder crashed or hung past its lease;
        * the record is corrupt/unreadable — the writer died mid-write;
        * the record carries *our own* holder token — this exact
          host/pid/thread wrote it in a previous incarnation (the lease
          is not reentrant, so a live self-wait is impossible), i.e.
          the process restarted and inherited its own orphan.
        """

        expires = rec.get("expires", 0)
        holder = rec.get("holder")
        if holder is None and not expires:
            return "corrupt or unreadable lease record"
        if expires <= time.time():
            return (
                f"holder missed its {self.ttl:g}s TTL — crashed or hung"
            )
        if holder == self.holder:
            return (
                "lease carries our own holder token — orphaned by a "
                "previous incarnation of this process (pid reuse after "
                "restart)"
            )
        return None

    def acquire(self, timeout: float = 5.0) -> bool:
        """Take the lease, waiting up to ``timeout`` seconds.

        Returns ``False`` on timeout (the caller should skip the
        guarded work); stale leases are taken over with a logged
        warning.
        """

        deadline = time.monotonic() + timeout
        contended = False
        while True:
            if self._try_create():
                self.held = True
                self._bump("lease.acquired")
                if contended:
                    self._bump("lease.contended")
                return True
            rec = self._read()
            if rec is None:
                continue  # vanished between create and read: retry
            reason = self._takeover_reason(rec)
            if reason is not None:
                log.warning(
                    "taking over lease %s (holder %r, pid %r): %s",
                    self.path,
                    rec.get("holder"),
                    rec.get("pid"),
                    reason,
                )
                self._bump("lease.takeover")
                try:
                    self.path.unlink()
                except FileNotFoundError:
                    pass
                except OSError:
                    pass
                continue
            contended = True
            if time.monotonic() >= deadline:
                self._bump("lease.timeout")
                return False
            time.sleep(POLL_S)

    def renew(self) -> bool:
        """Push the expiry out by one TTL; only valid while held *and*
        unexpired (an expired lease must be re-acquired — renewing it
        could stomp a sibling's legitimate takeover)."""

        if not self.held:
            return False
        rec = self._read()
        if (
            not rec
            or rec.get("holder") != self.holder
            or rec.get("expires", 0) <= time.time()
        ):
            self.held = False
            return False
        tmp = self.path.with_suffix(".lease-renew")
        try:
            tmp.write_bytes(self._record())
            os.replace(tmp, self.path)
        except OSError:
            return False
        return True

    def release(self) -> None:
        """Give the lease up (only if we still hold it)."""

        if not self.held:
            return
        self.held = False
        rec = self._read()
        if rec and rec.get("holder") == self.holder:
            try:
                self.path.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------

    def __enter__(self) -> "StoreLease":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()
