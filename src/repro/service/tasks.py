"""The unit tasks the analysis service fans out.

Each task is a pure function of a picklable payload — no references into
the calling engine's object graph — so the same function runs unchanged
inline (:class:`~repro.service.pool.SerialPool`) or in a worker process
(:class:`~repro.service.pool.WorkerPool`).  Three task kinds cover the
per-unit work of one analysis pass:

* ``parse`` — parse one source span (padded to its absolute start line)
  into unbound procedure units; binding stays on the main process since
  it needs the whole unit set.
* ``summary`` — one bottom-up summary step (MOD/REF, kill or sections)
  for one unit, given its call sites and its callees' current summaries.
  Used for batches of same-level, non-recursive units, where a single
  step call *is* the unit's fixpoint.
* ``dep`` — the full per-unit dependence analysis.  The payload carries
  the unit, its direct callee units and the summary dictionaries; the
  task rebuilds the providers over a minimal call graph that answers
  exactly the same queries the whole-program graph would.
* ``corpus`` — one whole corpus program end to end (the coarsest grain):
  a fresh serial engine analyzes the payload's source and projects the
  result onto the corpus record (:func:`repro.pipeline.corpus.
  analyze_program_result`).  Errors come back as records, not raises.

Determinism: every task output is a pure function of its payload, and
the pool preserves submission order, so serial and parallel runs are
structurally identical (the parity tests assert it fingerprint-for-
fingerprint).
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

from ..assertions.engine import AssertionDB
from ..dependence.driver import HOT_PATH, UnitAnalysis, analyze_unit
from ..fortran.ast_nodes import ProcedureUnit
from ..fortran.parser import parse_source
from ..interproc.callgraph import CallGraph, CallSite
from ..interproc.ipkill import unit_kills
from ..interproc.modref import local_summary
from ..interproc.program import FeatureSet, build_providers, unit_config
from ..interproc.sections import unit_sections

_SUMMARY_STEPS = {
    "modref": local_summary,
    "kill": unit_kills,
    "sections": unit_sections,
}


def task_parse(payload: Dict) -> List[ProcedureUnit]:
    """Parse one span, pre-padded so line numbers stay absolute."""

    padded = "\n" * (payload["start_line"] - 1) + payload["text"]
    return list(parse_source(padded).units)


def _mini_callgraph(
    unit: ProcedureUnit,
    callee_units: Dict[str, ProcedureUnit],
    sites: Sequence[CallSite],
) -> CallGraph:
    """A call graph restricted to one caller and its direct callees.

    The summary steps and the dependence providers only ever ask for
    ``sites_in(unit)``, membership of ``units`` for this unit's callees,
    and the callee ASTs — all of which this graph answers identically to
    the whole-program graph it was cut from.
    """

    cg = CallGraph()
    cg.units[unit.name] = unit
    cg.callees[unit.name] = set(callee_units)
    cg.callers.setdefault(unit.name, set())
    for name, callee in callee_units.items():
        cg.units.setdefault(name, callee)
        cg.callees.setdefault(name, set())
        cg.callers.setdefault(name, set()).add(unit.name)
    cg.sites = list(sites)
    return cg


def task_summary(payload: Dict):
    """One summary-step evaluation: the unit's fixpoint at its level."""

    unit: ProcedureUnit = payload["unit"]
    cg = _mini_callgraph(unit, payload["callee_units"], payload["sites"])
    step = _SUMMARY_STEPS[payload["phase"]]
    return step(unit, cg, payload["summaries"])


def task_dependence(payload: Dict) -> UnitAnalysis:
    """Full per-unit dependence analysis from a self-contained payload."""

    unit: ProcedureUnit = payload["unit"]
    features: FeatureSet = payload["features"]
    cg = _mini_callgraph(unit, payload["callee_units"], payload["sites"])
    providers = build_providers(
        cg,
        features,
        payload["modref"],
        payload["sections"],
        payload["kills"],
    )
    oracle = None
    if payload["asserts"]:
        oracle = AssertionDB()
        for text in payload["asserts"]:
            oracle.add(text)
    # Worker processes have their own HOT_PATH defaults; the payload
    # carries the engine's ``--profile`` choice so per-tier timings are
    # recorded wherever the unit actually runs.
    HOT_PATH.profile_tiers = bool(payload.get("profile", False))
    memo = payload.get("memo")
    config = unit_config(
        unit.name,
        features,
        providers,
        {unit.name: payload["constants"]},
        oracle,
        shared_memo=memo,
    )
    ua = analyze_unit(unit, config)
    if memo is not None:
        # Ship fresh entries and counter deltas back with the result;
        # the engine absorbs them into the live program-scoped memo.
        # (With SerialPool ``memo`` is the live object itself — export
        # drains its pending state, so absorb still counts once.)
        ua.memo_export = memo.export()
    return ua


def task_corpus(payload: Dict) -> Dict:
    """One corpus program → its result record (never raises)."""

    from ..pipeline.corpus import analyze_program_result

    return analyze_program_result(payload)


_TASKS = {
    "parse": task_parse,
    "summary": task_summary,
    "dep": task_dependence,
    "corpus": task_corpus,
}


def run_task(kind: str, payload: Dict):
    """Dispatch one task; the only function worker processes execute."""

    return _TASKS[kind](payload)


def run_task_timed(item):
    """Pool entry point: ``(kind, payload) -> (result, busy_seconds)``."""

    kind, payload = item
    t0 = time.perf_counter()
    result = run_task(kind, payload)
    return result, time.perf_counter() - t0
