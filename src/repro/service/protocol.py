"""The Ped wire protocol: framing, envelopes, sequence ids.

Transport-agnostic half of the session server.  Everything that crosses
a connection is one JSON object per line — an *envelope* — in one of
three shapes:

* **Request** (client → server)::

      {"id": ..., "op": ..., "session": ..., "stream": true?, ...params}

  ``id`` is the client's correlation key (any JSON scalar).  A request
  carrying ``"stream": true`` opts into server-push events before its
  terminal reply.

* **Reply** (server → client, terminal — exactly one per request)::

      {"id": ..., "ok": true,  "seq": N, "result": {...}}
      {"id": ..., "ok": false, "seq": N, "error": {"type": ..., "message": ...}}

* **Event** (server → client, zero or more, only for streaming requests
  and broadcasts)::

      {"id": ..., "event": "analysis.progress", "seq": N, "data": {...}}

  ``id`` names the originating request, or is ``null`` for connection-
  wide broadcasts (``invalidation``).  Event kinds: ``analysis.progress``
  (one per pipeline phase / per analyzed unit, and — for a streaming
  ``corpus.submit`` — one ``corpus.program`` record per finished corpus
  program) and ``invalidation`` (an edit in one session dirtied records
  another session holds).

**Ordering.**  Every outbound envelope carries ``seq``, a per-connection
monotonic sequence id assigned at write time: within one connection,
``seq`` strictly increases in wire order, and all events of a request
precede its terminal reply (events are written synchronously by the
request's handler; the reply is written after the handler returns).
Replies to *different* requests may interleave freely — ``id`` is the
correlation key, ``seq`` the total order.

**Framing errors.**  :func:`parse_request` turns a raw line into a
request dict or raises :class:`ProtocolError` with a structured error
type the transport can answer with directly: ``bad-request`` (malformed
JSON, non-object payload) or ``payload-too-large`` (line over the
server's byte limit; the request id is recovered when possible so the
error still correlates).  Error types emitted across the protocol:
``bad-request``, ``payload-too-large``, ``unknown-op``,
``unknown-session``, ``session-exists``, ``ped-error``, ``timeout``,
``cancelled``, ``shutting-down``, ``shard-lost`` (a fleet router lost
the shard holding the request's key mid-flight and ran out of retries)
and ``internal``.

**Memo gossip payloads.**  The cross-shard memo exchange (``memo.pull``
/ ``memo.push``) moves shared pair-test memo entries — nested tuples of
JSON scalars — over the wire; :func:`encode_memo_entries` /
:func:`decode_memo_entries` are the canonical tuple↔list codecs, so a
pulled entry pushed to a sibling shard round-trips to the exact key the
memo indexes on.
"""

from __future__ import annotations

import json
import threading
from typing import Dict, Optional

#: Protocol/feature revision, echoed by ``ping``.  v2: streaming events,
#: ``seq`` stamps, ``metrics``/``fingerprint`` ops, structured framing
#: errors (``payload-too-large``).  v3: pipeline-graph ops
#: (``graph.describe``, ``graph.last``, ``graph.plan``) and corpus batch
#: ops (``corpus.submit``, ``corpus.status``, ``corpus.query``) with
#: per-program ``analysis.progress`` events.  v4: fleet serving —
#: ``corpus.results``, memo gossip ops (``memo.pull``, ``memo.push``),
#: ``server.connections.*``/``server.uptime_s`` gauges in ``metrics``
#: and the ``shard-lost`` error type.  The envelope grammar itself is
#: unchanged since v2, so v3 clients interoperate with v4 servers.
PROTOCOL_VERSION = 4

#: Default cap on one request line; oversized requests get a structured
#: ``payload-too-large`` error instead of an ad-hoc disconnect.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

# Error types (the closed set the protocol may emit).
BAD_REQUEST = "bad-request"
PAYLOAD_TOO_LARGE = "payload-too-large"
UNKNOWN_OP = "unknown-op"
UNKNOWN_SESSION = "unknown-session"
SESSION_EXISTS = "session-exists"
PED_ERROR = "ped-error"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
SHUTTING_DOWN = "shutting-down"
SHARD_LOST = "shard-lost"
INTERNAL = "internal"

# Event kinds.
EV_PROGRESS = "analysis.progress"
EV_INVALIDATION = "invalidation"


class ProtocolError(Exception):
    """A framing-level error with a structured ``type`` and, when it
    could be recovered from the offending line, the request ``id``."""

    def __init__(self, etype: str, message: str, request_id=None) -> None:
        super().__init__(message)
        self.type = etype
        self.request_id = request_id


class Sequencer:
    """Thread-safe monotonic counter: one per connection, stamping every
    outbound envelope so clients can assert total wire order."""

    def __init__(self) -> None:
        self._n = 0
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            self._n += 1
            return self._n


def parse_request(line: str, max_bytes: int = MAX_REQUEST_BYTES) -> Dict:
    """One raw line → a request dict, or :class:`ProtocolError`.

    Oversized lines are rejected *after* a best-effort id recovery so
    the structured error still correlates with the client's request.
    """

    if len(line.encode("utf-8", errors="replace")) > max_bytes:
        raise ProtocolError(
            PAYLOAD_TOO_LARGE,
            f"request over the {max_bytes}-byte limit",
            request_id=_recover_id(line),
        )
    try:
        req = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(BAD_REQUEST, f"bad JSON: {exc}")
    if not isinstance(req, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    return req


def _recover_id(line: str):
    """The ``id`` of a request we are about to reject, if parseable."""

    try:
        req = json.loads(line)
        if isinstance(req, dict):
            rid = req.get("id")
            if isinstance(rid, (str, int, float)) or rid is None:
                return rid
    except ValueError:
        pass
    return None


# ----------------------------------------------------------------------
# envelope builders (the transport stamps ``seq`` at write time)
# ----------------------------------------------------------------------


def reply_ok(rid, result) -> Dict:
    return {"id": rid, "ok": True, "result": result}


def reply_error(rid, etype: str, message: str) -> Dict:
    return {
        "id": rid,
        "ok": False,
        "error": {"type": etype, "message": message},
    }


def event_envelope(rid, kind: str, data: Optional[Dict] = None) -> Dict:
    return {"id": rid, "event": kind, "data": data or {}}


def encode(envelope: Dict) -> str:
    """One envelope → its wire line (no trailing newline)."""

    return json.dumps(envelope, sort_keys=True)


def is_event(envelope: Dict) -> bool:
    return "event" in envelope


def is_reply(envelope: Dict) -> bool:
    return "ok" in envelope and "event" not in envelope


# ----------------------------------------------------------------------
# memo gossip payloads (tuple-keyed memo entries over JSON)
# ----------------------------------------------------------------------


def _to_wire(value):
    if isinstance(value, tuple):
        return [_to_wire(v) for v in value]
    return value


def _from_wire(value):
    if isinstance(value, list):
        return tuple(_from_wire(v) for v in value)
    return value


def encode_memo_entries(entries: Dict) -> list:
    """Memo entries (tuple keys and values) → a JSON-safe pair list."""

    return [[_to_wire(k), _to_wire(v)] for k, v in entries.items()]


def decode_memo_entries(payload) -> Dict:
    """The inverse of :func:`encode_memo_entries`; raises
    :class:`ProtocolError` on a malformed payload."""

    if not isinstance(payload, list):
        raise ProtocolError(BAD_REQUEST, "memo entries must be a list")
    out: Dict = {}
    for item in payload:
        if not isinstance(item, list) or len(item) != 2:
            raise ProtocolError(
                BAD_REQUEST, "each memo entry must be a [key, value] pair"
            )
        out[_from_wire(item[0])] = _from_wire(item[1])
    return out
