"""The Ped wire protocol: framing, envelopes, sequence ids.

Transport-agnostic half of the session server.  Everything that crosses
a connection is an *envelope* — a JSON object — carried either as one
JSON line (the default framing every peer speaks) or, after per-
connection negotiation, inside length-prefixed binary frames with
delta-encoded repeats (see *Binary frames* below).  An envelope is one
of three shapes:

* **Request** (client → server)::

      {"id": ..., "op": ..., "session": ..., "stream": true?, ...params}

  ``id`` is the client's correlation key (any JSON scalar).  A request
  carrying ``"stream": true`` opts into server-push events before its
  terminal reply.

* **Reply** (server → client, terminal — exactly one per request)::

      {"id": ..., "ok": true,  "seq": N, "result": {...}}
      {"id": ..., "ok": false, "seq": N, "error": {"type": ..., "message": ...}}

* **Event** (server → client, zero or more, only for streaming requests
  and broadcasts)::

      {"id": ..., "event": "analysis.progress", "seq": N, "data": {...}}

  ``id`` names the originating request, or is ``null`` for connection-
  wide broadcasts (``invalidation``).  Event kinds: ``analysis.progress``
  (one per pipeline phase / per analyzed unit, and — for a streaming
  ``corpus.submit`` — one ``corpus.program`` record per finished corpus
  program) and ``invalidation`` (an edit in one session dirtied records
  another session holds).

**Ordering.**  Every outbound envelope carries ``seq``, a per-connection
monotonic sequence id assigned at write time: within one connection,
``seq`` strictly increases in wire order, and all events of a request
precede its terminal reply (events are written synchronously by the
request's handler; the reply is written after the handler returns).
Replies to *different* requests may interleave freely — ``id`` is the
correlation key, ``seq`` the total order.

**Framing errors.**  :func:`parse_request` turns a raw line into a
request dict or raises :class:`ProtocolError` with a structured error
type the transport can answer with directly: ``bad-request`` (malformed
JSON, non-object payload) or ``payload-too-large`` (line over the
server's byte limit; the request id is recovered when possible so the
error still correlates).  Error types emitted across the protocol:
``bad-request``, ``payload-too-large``, ``unknown-op``,
``unknown-session``, ``session-exists``, ``ped-error``, ``timeout``,
``cancelled``, ``shutting-down``, ``shard-lost`` (a fleet router lost
the shard holding the request's key mid-flight and ran out of retries)
and ``internal``.

**Memo gossip payloads.**  The cross-shard memo exchange (``memo.pull``
/ ``memo.push``) moves shared pair-test memo entries — nested tuples of
JSON scalars — over the wire; :func:`encode_memo_entries` /
:func:`decode_memo_entries` are the canonical tuple↔list codecs, so a
pulled entry pushed to a sibling shard round-trips to the exact key the
memo indexes on.

**Binary frames (v5).**  A connection starts in JSON-lines.  A client
may send ``{"op": "frames", "mode": "binary"}``; a v5 transport answers
it *inline* (a JSON-line ``ok`` reply carrying ``{"frames": "binary"}``)
and both directions switch to binary framing immediately after — the
request's bytes are the last JSON the server reads, the reply's the last
JSON the client reads.  An older server routes the unknown op to its
handler table and answers ``unknown-op``; the client stays on JSON-lines
(:class:`~repro.service.client.PedClient` does this fallback
automatically), so JSON-only peers interoperate unchanged.

One frame is a 4-byte big-endian payload length followed by the
payload; the payload's first byte is the frame *kind*:

* ``0`` **raw** — the envelope's JSON bytes follow; no delta state.
* ``1`` **baseline** — ``u16`` key length, the UTF-8 *delta key*, then
  the envelope's JSON bytes.  Installs the body as the key's baseline.
* ``2`` **delta** — key as above, then the ``crc32`` (u32) of the new
  body, then copy/insert ops replaying it from the key's baseline:
  ``0x01 off:u32 len:u32`` copies from the baseline, ``0x02 len:u32
  bytes`` inserts literals.  The reconstructed body (checksum-verified)
  becomes the key's new baseline.

Delta keys name an evolving stream: pane updates and progress events
key on ``(event kind, request id)``, requests on ``(op, session)``, and
replies on the originating request's ``(op, session)`` — successive
editor pane refreshes differ by a few lines of JSON, so frames carry
the edit, not the pane.  The key travels in the frame, so either side
may choose keys freely; :class:`FrameEncoder` falls back to a baseline
frame whenever the delta would not pay for itself, and to raw frames
for unkeyed envelopes.  :class:`FrameDecoder` raises
:class:`ProtocolError` on oversized, malformed, unknown-key or
checksum-failing frames; a frame truncated by disconnect simply never
completes.

**Compression + coalescing (v6).**  Two more frame kinds ride the same
length-prefixed stream, produced only after a second negotiation rung —
``{"op": "compress", "mode": "zlib"}``, answered inline like ``frames``
(and refused with ``bad-request`` until frames are negotiated, so the
ladder is strictly ``frames`` → ``compress``):

* ``3`` **compressed** — ``u16`` dictionary-key length, the key's UTF-8
  bytes (empty = no dictionary), then a zlib stream inflating to one
  complete payload of kind 0, 1 or 2 (or 4; never another 3).  The
  dictionary named by a non-empty key is the key's *current baseline on
  the receiving side* — the encoder compresses against the baseline it
  just replaced, which by construction is exactly what the decoder
  still holds, so no dictionary bytes ever cross the wire.
* ``4`` **multi** — repeated ``u32`` length + payload records, each of
  kind 0–2, decoded in order as if they were separate frames.  Bursts
  of ``analysis.progress`` / ``corpus.program`` events coalesce into
  one multi frame: mostly one repeated JSON shape, so wrapping the
  block in a kind-3 frame squeezes it far below per-record deltas.

Compression is *adaptive* per frame: payloads under
:data:`COMPRESS_MIN_BYTES`, and payloads whose trial compression fails
to beat :data:`COMPRESS_MAX_RATIO` × the plain encoding, ship in their
v5 form — the kind byte tells the decoder which it got, so the decoder
accepts all five kinds at any time and only the *encoder* is gated on
negotiation.  JSON-only and v5 peers are untouched: they never send
``compress``, so they never see a kind-3/4 frame.
"""

from __future__ import annotations

import json
import struct
import threading
import zlib
from collections import deque
from difflib import SequenceMatcher
from typing import Dict, List, Optional

#: Protocol/feature revision, echoed by ``ping``.  v2: streaming events,
#: ``seq`` stamps, ``metrics``/``fingerprint`` ops, structured framing
#: errors (``payload-too-large``).  v3: pipeline-graph ops
#: (``graph.describe``, ``graph.last``, ``graph.plan``) and corpus batch
#: ops (``corpus.submit``, ``corpus.status``, ``corpus.query``) with
#: per-program ``analysis.progress`` events.  v4: fleet serving —
#: ``corpus.results``, memo gossip ops (``memo.pull``, ``memo.push``),
#: ``server.connections.*``/``server.uptime_s`` gauges in ``metrics``
#: and the ``shard-lost`` error type.  v5: the ``frames`` negotiation op
#: and the length-prefixed binary framing with delta-encoded repeats.
#: v6: the ``compress`` negotiation op, adaptive per-frame zlib
#: compression with baseline-seeded dictionaries (frame kind 3) and
#: multi-record event coalescing (frame kind 4).  v7: event-sourced
#: sessions — ``session.log`` (paged journal read), ``session.replay``
#: (rebuild the session at record N with streamed ``journal.replay``
#: progress) and ``session.restore`` (resurrect a killed server's
#: session from its persisted journal), plus the ``journal.*`` counters
#: in ``metrics``.  The envelope grammar itself is unchanged since v2,
#: so v3 clients interoperate with v7 servers (binary framing,
#: compression and journal ops are strictly opt-in).
PROTOCOL_VERSION = 7

#: Default cap on one request line; oversized requests get a structured
#: ``payload-too-large`` error instead of an ad-hoc disconnect.
MAX_REQUEST_BYTES = 4 * 1024 * 1024

# Error types (the closed set the protocol may emit).
BAD_REQUEST = "bad-request"
PAYLOAD_TOO_LARGE = "payload-too-large"
UNKNOWN_OP = "unknown-op"
UNKNOWN_SESSION = "unknown-session"
SESSION_EXISTS = "session-exists"
PED_ERROR = "ped-error"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
SHUTTING_DOWN = "shutting-down"
SHARD_LOST = "shard-lost"
INTERNAL = "internal"

# Event kinds.
EV_PROGRESS = "analysis.progress"
EV_INVALIDATION = "invalidation"

#: Transport-internal pseudo-event: a host that already holds a burst
#: of events (the fleet router relaying a coalesced frame from a shard)
#: hands the whole burst to the transport in one ``emit`` call as
#: ``event_envelope(rid, EV_BATCH, {"events": [{"kind": …, "data": …},
#: …]})``.  Transports expand it at write time — one multi-record frame
#: when the peer negotiated compression, individual envelopes otherwise
#: — so the batch shape itself never reaches a client.
EV_BATCH = "events.batch"


class ProtocolError(Exception):
    """A framing-level error with a structured ``type`` and, when it
    could be recovered from the offending line, the request ``id``."""

    def __init__(self, etype: str, message: str, request_id=None) -> None:
        super().__init__(message)
        self.type = etype
        self.request_id = request_id


class Sequencer:
    """Thread-safe monotonic counter: one per connection, stamping every
    outbound envelope so clients can assert total wire order."""

    def __init__(self) -> None:
        self._n = 0
        self._lock = threading.Lock()

    def next(self) -> int:
        with self._lock:
            self._n += 1
            return self._n


def parse_request(
    line: str,
    max_bytes: int = MAX_REQUEST_BYTES,
    size: Optional[int] = None,
) -> Dict:
    """One raw line → a request dict, or :class:`ProtocolError`.

    ``size`` is the line's wire byte length when the transport already
    knows it (every byte-oriented transport does — it decoded the line
    from those bytes).  Without it the cap is enforced from the
    character count: a line of ``n`` characters occupies at most ``4n``
    UTF-8 bytes, so only lines within a factor 4 of the cap pay for a
    measuring re-encode — the old unconditional per-request copy was
    the service hot path's single biggest allocation.

    Oversized lines are rejected *after* a best-effort id recovery so
    the structured error still correlates with the client's request.
    """

    if size is None:
        n = len(line)
        if n * 4 <= max_bytes:
            size = n
        else:
            size = len(line.encode("utf-8", errors="replace"))
    if size > max_bytes:
        raise ProtocolError(
            PAYLOAD_TOO_LARGE,
            f"request over the {max_bytes}-byte limit",
            request_id=_recover_id(line),
        )
    try:
        req = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(BAD_REQUEST, f"bad JSON: {exc}")
    if not isinstance(req, dict):
        raise ProtocolError(BAD_REQUEST, "request must be a JSON object")
    return req


def _recover_id(line: str):
    """The ``id`` of a request we are about to reject, if parseable."""

    try:
        req = json.loads(line)
        if isinstance(req, dict):
            rid = req.get("id")
            if isinstance(rid, (str, int, float)) or rid is None:
                return rid
    except ValueError:
        pass
    return None


# ----------------------------------------------------------------------
# envelope builders (the transport stamps ``seq`` at write time)
# ----------------------------------------------------------------------


def reply_ok(rid, result) -> Dict:
    return {"id": rid, "ok": True, "result": result}


def reply_error(rid, etype: str, message: str) -> Dict:
    return {
        "id": rid,
        "ok": False,
        "error": {"type": etype, "message": message},
    }


def event_envelope(rid, kind: str, data: Optional[Dict] = None) -> Dict:
    return {"id": rid, "event": kind, "data": data or {}}


def encode(envelope: Dict) -> str:
    """One envelope → its wire line (no trailing newline)."""

    return json.dumps(envelope, sort_keys=True)


def is_event(envelope: Dict) -> bool:
    return "event" in envelope


def is_reply(envelope: Dict) -> bool:
    return "ok" in envelope and "event" not in envelope


def expand_event_batch(envelope: Dict) -> Optional[List[Dict]]:
    """The per-event envelopes of one :data:`EV_BATCH` envelope, or
    ``None`` when ``envelope`` is not a batch.  Transports call this at
    write time; the order of the records is the wire order."""

    if envelope.get("event") != EV_BATCH:
        return None
    rid = envelope.get("id")
    out: List[Dict] = []
    for rec in (envelope.get("data") or {}).get("events") or []:
        if isinstance(rec, dict):
            out.append(
                event_envelope(rid, rec.get("kind") or "", rec.get("data"))
            )
    return out


# ----------------------------------------------------------------------
# binary frames: length-prefixed envelopes with delta-encoded repeats
# ----------------------------------------------------------------------

#: The negotiation op a transport answers inline (never routed to the
#: session host) to switch a connection's framing.
FRAMES_OP = "frames"

#: The second negotiation rung: adaptive zlib compression + event
#: coalescing, valid only after ``frames`` (also answered inline).
COMPRESS_OP = "compress"

FRAME_RAW = 0
FRAME_BASELINE = 1
FRAME_DELTA = 2
FRAME_COMPRESSED = 3
FRAME_MULTI = 4

#: Payloads under this size never trial-compress — zlib's stream header
#: plus the dictionary adler32 eat any win on tiny frames.
COMPRESS_MIN_BYTES = 192
#: A trial compression must reach this fraction of the plain encoding
#: or the frame ships in its v5 form.
COMPRESS_MAX_RATIO = 0.9
#: zlib level for wire compression (6 = zlib's own default trade-off).
COMPRESS_LEVEL = 6

#: Event-coalescing knobs shared by both transports: a buffered burst
#: flushes when it reaches COALESCE_MAX events, when any non-coalescible
#: envelope (a reply, a broadcast) must go out behind it, or when the
#: flush window expires — progress events trade at most this much
#: latency for riding a shared frame, and only on connections that
#: negotiated compression.
COALESCE_MAX = 32
COALESCE_WINDOW = 0.005

_OP_COPY = 1
_OP_INSERT = 2

#: Bodies past this size skip the SequenceMatcher middle-diff (the
#: prefix/suffix trim still applies) — delta encoding stays O(pane),
#: never O(corpus payload).
_DELTA_DIFF_CAP = 256 * 1024

_U32 = struct.Struct(">I")
_U16 = struct.Struct(">H")


def delta_key(envelope: Dict) -> Optional[str]:
    """The default delta-stream key of one envelope, or None for raw.

    Events key on (kind, owning request id): every ``analysis.progress``
    of one streamed request deltas against its predecessor.  Requests
    key on (op, session): an editor resubmitting a whole source after
    each keystroke sends the keystroke.  Replies carry nothing stable —
    transports that know the originating request pass an explicit key to
    :meth:`FrameEncoder.encode` instead (pane refreshes of one session
    delta beautifully).
    """

    if "event" in envelope:
        kind = envelope.get("event")
        if kind:
            return "e\x00%s\x00%r" % (kind, envelope.get("id"))
        return None
    op = envelope.get("op")
    if op and envelope.get("session") is not None:
        return "q\x00%s\x00%r" % (op, envelope.get("session"))
    return None


def reply_delta_key(req: Dict) -> Optional[str]:
    """The delta key a transport should use for ``req``'s reply."""

    op = req.get("op")
    if op and req.get("session") is not None:
        return "p\x00%s\x00%r" % (op, req.get("session"))
    return None


def _delta_ops(old: bytes, new: bytes) -> Optional[bytes]:
    """Copy/insert ops rebuilding ``new`` from ``old``, or None when a
    baseline frame would be no larger than the delta."""

    # Prefix/suffix trim: JSON envelopes of one stream differ in a
    # narrow middle (a few pane rows, one progress counter).
    lo = 0
    n_old, n_new = len(old), len(new)
    cap = min(n_old, n_new)
    while lo < cap and old[lo] == new[lo]:
        lo += 1
    hi = 0
    while hi < cap - lo and old[n_old - 1 - hi] == new[n_new - 1 - hi]:
        hi += 1
    mid_old = old[lo : n_old - hi]
    mid_new = new[lo : n_new - hi]
    ops: List[bytes] = []
    if lo:
        ops.append(struct.pack(">BII", _OP_COPY, 0, lo))
    if mid_new:
        if mid_old and len(mid_old) + len(mid_new) <= _DELTA_DIFF_CAP:
            sm = SequenceMatcher(None, mid_old, mid_new, autojunk=False)
            for tag, i1, i2, j1, j2 in sm.get_opcodes():
                if tag == "equal":
                    ops.append(
                        struct.pack(">BII", _OP_COPY, lo + i1, i2 - i1)
                    )
                elif j2 > j1:
                    ops.append(
                        struct.pack(">BI", _OP_INSERT, j2 - j1)
                        + mid_new[j1:j2]
                    )
        else:
            ops.append(
                struct.pack(">BI", _OP_INSERT, len(mid_new)) + mid_new
            )
    if hi:
        ops.append(struct.pack(">BII", _OP_COPY, n_old - hi, hi))
    blob = b"".join(ops)
    # 4 bytes of crc ride every delta frame; beyond that the framing
    # overhead is identical, so this is the exact break-even test.
    if len(blob) + 4 >= n_new:
        return None
    return blob


def _apply_delta(baseline: bytes, blob: bytes) -> bytes:
    parts: List[bytes] = []
    pos = 0
    end = len(blob)
    n_base = len(baseline)
    while pos < end:
        op = blob[pos]
        if op == _OP_COPY:
            if pos + 9 > end:
                raise ProtocolError(BAD_REQUEST, "truncated delta copy op")
            off, length = struct.unpack_from(">II", blob, pos + 1)
            if off + length > n_base:
                raise ProtocolError(
                    BAD_REQUEST, "delta copy outside baseline"
                )
            parts.append(baseline[off : off + length])
            pos += 9
        elif op == _OP_INSERT:
            if pos + 5 > end:
                raise ProtocolError(
                    BAD_REQUEST, "truncated delta insert op"
                )
            (length,) = struct.unpack_from(">I", blob, pos + 1)
            pos += 5
            if pos + length > end:
                raise ProtocolError(
                    BAD_REQUEST, "truncated delta insert bytes"
                )
            parts.append(blob[pos : pos + length])
            pos += length
        else:
            raise ProtocolError(BAD_REQUEST, f"unknown delta op {op}")
    return b"".join(parts)


class FrameEncoder:
    """Envelope → one binary frame, tracking per-key delta baselines.

    Single direction of one connection; serialize calls externally (the
    transports already write under a lock / from one writer task).

    Setting :attr:`compress` (after the ``compress`` negotiation)
    enables the adaptive v6 path: payloads at least
    :data:`COMPRESS_MIN_BYTES` long are trial-compressed — the *full
    body* in baseline form, zlib-dictionary-seeded from the key's
    previous baseline, so zlib's back-references subsume the copy/insert
    delta and entropy-code the rest — and ship compressed only when the
    result beats :data:`COMPRESS_MAX_RATIO` × the plain v5 encoding.
    ``bytes_raw`` / ``bytes_wire`` count what the plain encoding would
    have cost vs what actually shipped (length prefixes included).
    """

    def __init__(self) -> None:
        self._baselines: Dict[str, bytes] = {}
        #: Flipped by the transport when ``compress`` is negotiated.
        self.compress = False
        self.bytes_raw = 0
        self.bytes_wire = 0
        self.frames = 0
        self.frames_compressed = 0
        self.coalesced_events = 0

    # -- payload assembly ----------------------------------------------

    def _body(self, envelope: Dict, key: Optional[str]):
        """Serialize; update the key's baseline.  → (body, kb, old)."""

        body = json.dumps(envelope, sort_keys=True).encode("utf-8")
        if key is None:
            key = delta_key(envelope)
        if key is None:
            return body, None, None
        kb = key.encode("utf-8")
        old = self._baselines.get(key)
        self._baselines[key] = body
        return body, kb, old

    @staticmethod
    def _plain_payload(
        body: bytes, kb: Optional[bytes], old: Optional[bytes]
    ) -> bytes:
        """The v5 payload (kind 0/1/2) for one serialized envelope."""

        if kb is None:
            return b"\x00" + body
        if old is not None:
            blob = _delta_ops(old, body)
            if blob is not None:
                return (
                    b"\x02"
                    + _U16.pack(len(kb))
                    + kb
                    + _U32.pack(zlib.crc32(body))
                    + blob
                )
        return b"\x01" + _U16.pack(len(kb)) + kb + body

    @staticmethod
    def _baseline_payload(body: bytes, kb: Optional[bytes]) -> bytes:
        """The no-delta payload (kind 0/1) — what compression wraps."""

        if kb is None:
            return b"\x00" + body
        return b"\x01" + _U16.pack(len(kb)) + kb + body

    @staticmethod
    def _deflate(payload: bytes, zdict: Optional[bytes]) -> bytes:
        if zdict:
            co = zlib.compressobj(COMPRESS_LEVEL, zdict=zdict)
        else:
            co = zlib.compressobj(COMPRESS_LEVEL)
        return co.compress(payload) + co.flush()

    def _wrap(
        self,
        inner: bytes,
        dict_kb: Optional[bytes],
        zdict: Optional[bytes],
        plain_len: int,
    ) -> Optional[bytes]:
        """Trial-compress ``inner``; None when plain should ship."""

        if dict_kb is None or zdict is None:
            dict_kb, zdict = b"", None
        blob = self._deflate(inner, zdict)
        wrapped = b"\x03" + _U16.pack(len(dict_kb)) + dict_kb + blob
        if len(wrapped) <= COMPRESS_MAX_RATIO * plain_len:
            return wrapped
        return None

    def _ship(self, plain: bytes, wrapped: Optional[bytes]) -> bytes:
        self.frames += 1
        self.bytes_raw += 4 + len(plain)
        payload = plain if wrapped is None else wrapped
        if wrapped is not None:
            self.frames_compressed += 1
        self.bytes_wire += 4 + len(payload)
        return _U32.pack(len(payload)) + payload

    # -- public entry points -------------------------------------------

    def encode(self, envelope: Dict, key: Optional[str] = None) -> bytes:
        body, kb, old = self._body(envelope, key)
        plain = self._plain_payload(body, kb, old)
        wrapped = None
        if self.compress and len(plain) >= COMPRESS_MIN_BYTES:
            wrapped = self._wrap(
                self._baseline_payload(body, kb), kb, old, len(plain)
            )
        return self._ship(plain, wrapped)

    def encode_multi(
        self,
        envelopes: List[Dict],
        keys: Optional[List[Optional[str]]] = None,
    ) -> bytes:
        """Several envelopes → one multi-record frame (kind 4).

        In compress mode the whole record block is trial-compressed as
        one unit, dictionary-seeded from the first record whose key had
        a baseline *before this frame* (a within-frame predecessor is
        useless — the decoder inflates before it applies any record).
        """

        if len(envelopes) == 1:
            return self.encode(envelopes[0], keys[0] if keys else None)
        plain_parts = [b"\x04"]
        flat_parts = [b"\x04"]
        dict_kb = zdict = None
        seen = set()
        for i, envelope in enumerate(envelopes):
            body, kb, old = self._body(
                envelope, keys[i] if keys else None
            )
            sub = self._plain_payload(body, kb, old)
            plain_parts.append(_U32.pack(len(sub)) + sub)
            flat = self._baseline_payload(body, kb)
            flat_parts.append(_U32.pack(len(flat)) + flat)
            if kb is not None:
                if dict_kb is None and old is not None and kb not in seen:
                    dict_kb, zdict = kb, old
                seen.add(kb)
        plain = b"".join(plain_parts)
        wrapped = None
        if self.compress and len(plain) >= COMPRESS_MIN_BYTES:
            wrapped = self._wrap(
                b"".join(flat_parts), dict_kb, zdict, len(plain)
            )
        self.coalesced_events += len(envelopes)
        return self._ship(plain, wrapped)


class FrameDecoder:
    """Incremental frame parser: feed bytes, pull envelopes.

    ``feed`` only buffers; :meth:`next` yields one envelope, ``None``
    when the buffer holds no complete frame, or raises
    :class:`ProtocolError` — after which the decoder has already
    advanced past (or arranged to skip) the offending frame, so the
    transport can answer the error and keep reading.  A frame an
    in-flight disconnect truncates simply never completes.

    All five kinds decode at any time — negotiation gates only the
    *encoder* — so a peer that has not asked for compression still
    decodes a compressed stream correctly.  A multi-record frame yields
    its first envelope from :meth:`next` and queues the rest;
    :meth:`next_batch` returns a whole frame's worth at once, which is
    how the client keeps a coalesced burst together for relaying.
    """

    def __init__(self, max_frame_bytes: int = MAX_REQUEST_BYTES) -> None:
        self.max_frame_bytes = max_frame_bytes
        self._buf = bytearray()
        self._baselines: Dict[str, bytes] = {}
        self._skip = 0
        self._ready: "deque[Dict]" = deque()

    def feed(self, data: bytes) -> None:
        if self._skip:
            if len(data) <= self._skip:
                self._skip -= len(data)
                return
            data = data[self._skip :]
            self._skip = 0
        self._buf += data

    def pending(self) -> int:
        """Buffered bytes not yet consumed (0 ⇔ clean frame boundary)."""

        return len(self._buf)

    def next(self) -> Optional[Dict]:
        if self._ready:
            return self._ready.popleft()
        buf = self._buf
        if len(buf) < 4:
            return None
        (length,) = _U32.unpack_from(buf)
        # Payload = kind byte + frame body; the cap bounds the body so a
        # maximal JSON-lines request still fits its binary frame.
        if length > self.max_frame_bytes + 1:
            have = len(buf) - 4
            if have >= length:
                # The whole bad frame is already buffered: drop exactly
                # it, keeping whatever follows.
                del buf[: 4 + length]
                self._skip = 0
            else:
                del self._buf[:]
                self._skip = length - have
            raise ProtocolError(
                PAYLOAD_TOO_LARGE,
                f"frame over the {self.max_frame_bytes}-byte limit",
            )
        if len(buf) < 4 + length:
            return None
        payload = bytes(buf[4 : 4 + length])
        del buf[: 4 + length]
        return self._decode(payload)

    def next_batch(self) -> Optional[List[Dict]]:
        """One frame's envelopes — a list of 1 for plain frames, the
        whole record list for a multi frame — or ``None``."""

        env = self.next()
        if env is None:
            return None
        batch = [env]
        while self._ready:
            batch.append(self._ready.popleft())
        return batch

    def _decode(self, payload: bytes) -> Dict:
        if not payload:
            raise ProtocolError(BAD_REQUEST, "empty frame")
        if payload[0] == FRAME_COMPRESSED:
            payload = self._inflate(payload)
            if not payload:
                raise ProtocolError(BAD_REQUEST, "empty compressed frame")
            if payload[0] == FRAME_COMPRESSED:
                raise ProtocolError(BAD_REQUEST, "nested compressed frame")
        if payload[0] == FRAME_MULTI:
            return self._decode_multi(payload)
        return self._decode_one(payload)

    def _inflate(self, payload: bytes) -> bytes:
        """Kind-3 payload → the plain payload it wraps."""

        if len(payload) < 3:
            raise ProtocolError(BAD_REQUEST, "truncated compressed frame")
        (klen,) = _U16.unpack_from(payload, 1)
        blob_at = 3 + klen
        if len(payload) < blob_at:
            raise ProtocolError(BAD_REQUEST, "truncated compressed frame")
        zdict = None
        if klen:
            key = payload[3:blob_at].decode("utf-8", errors="replace")
            zdict = self._baselines.get(key)
            if zdict is None:
                raise ProtocolError(
                    BAD_REQUEST,
                    f"compressed frame names unknown dictionary {key!r}",
                )
        do = (
            zlib.decompressobj(zdict=zdict)
            if zdict is not None
            else zlib.decompressobj()
        )
        try:
            inner = do.decompress(
                payload[blob_at:], self.max_frame_bytes + 1
            )
        except zlib.error as exc:
            raise ProtocolError(
                BAD_REQUEST, f"bad compressed frame: {exc}"
            )
        if do.unconsumed_tail:
            raise ProtocolError(
                PAYLOAD_TOO_LARGE,
                f"compressed frame inflates over the "
                f"{self.max_frame_bytes}-byte limit",
            )
        if not do.eof:
            raise ProtocolError(
                BAD_REQUEST, "truncated compressed frame"
            )
        return inner

    def _decode_multi(self, payload: bytes) -> Dict:
        envs: List[Dict] = []
        pos, end = 1, len(payload)
        while pos < end:
            if pos + 4 > end:
                raise ProtocolError(
                    BAD_REQUEST, "truncated multi-frame record"
                )
            (length,) = _U32.unpack_from(payload, pos)
            pos += 4
            if pos + length > end:
                raise ProtocolError(
                    BAD_REQUEST, "truncated multi-frame record"
                )
            sub = payload[pos : pos + length]
            pos += length
            if sub[:1] and sub[0] in (FRAME_COMPRESSED, FRAME_MULTI):
                raise ProtocolError(
                    BAD_REQUEST, "nested multi-frame record"
                )
            envs.append(self._decode_one(sub))
        if not envs:
            raise ProtocolError(BAD_REQUEST, "empty multi frame")
        self._ready.extend(envs[1:])
        return envs[0]

    def _decode_one(self, payload: bytes) -> Dict:
        if not payload:
            raise ProtocolError(BAD_REQUEST, "empty frame")
        kind = payload[0]
        if kind == FRAME_RAW:
            return self._json(payload[1:])
        if kind not in (FRAME_BASELINE, FRAME_DELTA):
            raise ProtocolError(BAD_REQUEST, f"unknown frame kind {kind}")
        if len(payload) < 3:
            raise ProtocolError(BAD_REQUEST, "truncated frame key")
        (klen,) = _U16.unpack_from(payload, 1)
        body_at = 3 + klen
        if len(payload) < body_at:
            raise ProtocolError(BAD_REQUEST, "truncated frame key")
        key = payload[3:body_at].decode("utf-8", errors="replace")
        if kind == FRAME_BASELINE:
            body = payload[body_at:]
            self._baselines[key] = body
            return self._json(body)
        if len(payload) < body_at + 4:
            raise ProtocolError(BAD_REQUEST, "truncated delta checksum")
        baseline = self._baselines.get(key)
        if baseline is None:
            raise ProtocolError(
                BAD_REQUEST, f"delta against unknown key {key!r}"
            )
        (crc,) = _U32.unpack_from(payload, body_at)
        body = _apply_delta(baseline, payload[body_at + 4 :])
        if zlib.crc32(body) != crc:
            raise ProtocolError(
                BAD_REQUEST, f"delta checksum mismatch for key {key!r}"
            )
        self._baselines[key] = body
        return self._json(body)

    @staticmethod
    def _json(body: bytes) -> Dict:
        try:
            env = json.loads(body.decode("utf-8", errors="replace"))
        except ValueError as exc:
            raise ProtocolError(BAD_REQUEST, f"bad JSON in frame: {exc}")
        if not isinstance(env, dict):
            raise ProtocolError(
                BAD_REQUEST, "frame body must be a JSON object"
            )
        return env


# ----------------------------------------------------------------------
# memo gossip payloads (tuple-keyed memo entries over JSON)
# ----------------------------------------------------------------------


def _to_wire(value):
    if isinstance(value, tuple):
        return [_to_wire(v) for v in value]
    return value


def _from_wire(value):
    if isinstance(value, list):
        return tuple(_from_wire(v) for v in value)
    return value


def encode_memo_entries(entries: Dict) -> list:
    """Memo entries (tuple keys and values) → a JSON-safe pair list."""

    return [[_to_wire(k), _to_wire(v)] for k, v in entries.items()]


def decode_memo_entries(payload) -> Dict:
    """The inverse of :func:`encode_memo_entries`; raises
    :class:`ProtocolError` on a malformed payload."""

    if not isinstance(payload, list):
        raise ProtocolError(BAD_REQUEST, "memo entries must be a list")
    out: Dict = {}
    for item in payload:
        if not isinstance(item, list) or len(item) != 2:
            raise ProtocolError(
                BAD_REQUEST, "each memo entry must be a [key, value] pair"
            )
        out[_from_wire(item[0])] = _from_wire(item[1])
    return out
