"""Content-addressed on-disk cache with LRU eviction.

The persistent half of the analysis service: engines spill their parse /
summary / dependence caches here (via
:class:`~repro.service.persist.PersistentStore`) so a reopened session
starts warm.  Design points, each load-bearing:

* **Content addressing** — keys are content digests (span digests,
  program digests), so entries are valid forever: a stale entry can
  never be *returned* for current content, only missed.
* **Format-version stamp** — every record embeds
  :data:`FORMAT_VERSION` plus its own kind and key; a version bump, a
  truncated write or a record filed under the wrong digest all fail
  validation and read as a miss.
* **Atomic writes** — records are written to a temp file in the target
  directory and ``os.replace``d into place, so readers never observe a
  half-written record even mid-crash.
* **Graceful degradation** — *any* failure to read, validate or
  unpickle logs a warning, deletes the offending file where possible,
  and returns a miss; persistence problems degrade to a cold analysis,
  never to a crash or a stale result.
* **Size-bounded LRU** — when a running size estimate says the store
  outgrew ``max_bytes``, a full walk evicts least-recently-used records
  (file mtime, refreshed on every hit) until the total fits again; the
  estimate keeps the common under-budget write O(1) instead of
  O(store).

Counters (``disk.hit`` / ``disk.miss`` / ``disk.write`` / ``disk.evict``
/ ``disk.error``) feed the attached engine stats.
"""

from __future__ import annotations

import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from .storelock import StoreLease

log = logging.getLogger(__name__)

#: Bump when any pickled payload's schema changes; old records then
#: read as misses instead of poisoning newer code.
#: v2: hot-path overhaul — UnitAnalysis gained stmt_index, the tester
#: gained memo counters, the graph gained secondary indices.
#: v3: warm-reuse overhaul — span records carry a binding guard instead
#: of a whole-program kinds map, new ``usum`` (per-unit summary) and
#: ``memo`` (shared pair-test memo) record kinds, UnitAnalysis gained
#: memo_export and the tester gained shared-memo counters.
FORMAT_VERSION = 3

_MAGIC = "repro-cache"


class DiskCache:
    """A directory of pickled records addressed by ``(kind, key)``."""

    def __init__(
        self,
        root,
        max_bytes: int = 256 * 1024 * 1024,
        stats=None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.stats = stats
        #: Running size estimate (None until the first write walks the
        #: store once); keeps the per-write eviction check O(1).
        self._approx_bytes: Optional[int] = None
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / key[:2] / f"{key}.pkl"

    def _bump(self, name: str, n: float = 1) -> None:
        if self.stats is not None:
            self.stats.bump(name, n)

    # ------------------------------------------------------------------

    def get(self, kind: str, key: str) -> Optional[object]:
        """The payload stored under ``(kind, key)``, or ``None``.

        Every failure mode — missing file, truncation, unpickling error,
        version or address mismatch — is a logged miss, never an
        exception.
        """

        path = self._path(kind, key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self._bump("disk.miss")
            return None
        except OSError as exc:
            self._bump("disk.error")
            log.warning("cache read failed for %s: %s", path, exc)
            return None
        try:
            record = pickle.loads(blob)
            if not isinstance(record, dict) or record.get("magic") != _MAGIC:
                raise ValueError("not a cache record")
            if record.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"format version {record.get('format')!r}, "
                    f"expected {FORMAT_VERSION}"
                )
            if record.get("kind") != kind or record.get("key") != key:
                raise ValueError(
                    f"record addressed {record.get('kind')!r}/"
                    f"{record.get('key')!r}, expected {kind!r}/{key!r}"
                )
            payload = record["payload"]
        except Exception as exc:  # noqa: BLE001 — corrupt entry = miss
            self._bump("disk.error")
            self._bump("disk.miss")
            log.warning(
                "discarding invalid cache entry %s (%s); analysis "
                "falls back to cold",
                path,
                exc,
            )
            self._discard(path)
            return None
        self._bump("disk.hit")
        self._touch(path)
        return payload

    def put(self, kind: str, key: str, payload: object) -> bool:
        """Atomically store ``payload``; returns False on any failure."""

        path = self._path(kind, key)
        record = {
            "magic": _MAGIC,
            "format": FORMAT_VERSION,
            "kind": kind,
            "key": key,
            "payload": payload,
        }
        try:
            blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".tmp-{key[:8]}-"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception as exc:  # noqa: BLE001 — persistence is optional
            self._bump("disk.error")
            log.warning("cache write failed for %s: %s", path, exc)
            return False
        self._bump("disk.write")
        self._maybe_evict(len(blob))
        return True

    def contains(self, kind: str, key: str) -> bool:
        return self._path(kind, key).exists()

    def lease(
        self, name: str, holder: Optional[str] = None, ttl: float = 10.0
    ) -> StoreLease:
        """A named :class:`StoreLease` scoped to this store.

        Lease files live under ``<root>/locks/`` (outside the ``.pkl``
        namespace the LRU eviction walks) so N server processes sharing
        one ``--cache-dir`` coordinate through the store itself.
        """

        return StoreLease(
            self.root / "locks" / f"{name}.lease",
            holder=holder,
            ttl=ttl,
            stats=self.stats,
        )

    # ------------------------------------------------------------------

    def _touch(self, path: Path) -> None:
        try:
            os.utime(path)
        except OSError:
            pass

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _records(self):
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".pkl"):
                    path = Path(dirpath) / name
                    try:
                        st = path.stat()
                    except OSError:
                        continue
                    yield path, st.st_size, st.st_mtime

    def _maybe_evict(self, added_bytes: int) -> None:
        """Approximate-size gate in front of :meth:`_evict`.

        Walking and stat-ing every record on *every* write is O(store)
        — it dominated per-mutation latency once session journaling made
        small writes frequent.  Instead, a running byte counter (seeded
        by one walk on the first write, advanced by each write's blob
        size) decides when the real walk is worth it.  Sibling
        processes' writes aren't counted, so a shared store can
        transiently overshoot ``max_bytes`` until this process's own
        writes accumulate — the budget is best-effort either way.
        """

        if self._approx_bytes is None:
            self._approx_bytes = sum(
                size for _, size, _ in self._records()
            )
        else:
            self._approx_bytes += added_bytes
        if self._approx_bytes > self.max_bytes:
            self._evict()

    def _evict(self) -> None:
        entries = list(self._records())
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            self._approx_bytes = total
            return
        entries.sort(key=lambda e: e[2])  # oldest mtime first
        for path, size, _mtime in entries:
            if total <= self.max_bytes:
                break
            self._discard(path)
            total -= size
            self._bump("disk.evict")
        self._approx_bytes = total
