"""Warm-start persistence for the incremental analysis engine.

Two record families, both content-addressed into a :class:`DiskCache`:

* **Span records** (``span:<digest>``) — the bound units of one source
  span, stored with the program's ``{unit: kind}`` map at bind time.
  Name resolution inside a unit depends on which *other* names are
  program units (array reference vs function call), so a span record is
  only admissible when its recorded kinds map equals the current one;
  the engine validates that after assembling the whole unit set and
  reparses any span that fails.  Within that guard a span digest fully
  determines the parse, so records survive across sessions and across
  unrelated edits elsewhere in the file.
* **Program records** (``prog:<digest of (features, source,
  assertions)>``) — the engine's complete cache state for one analyzed
  program: span entries, the four summary families with their revision
  counters, the per-unit dependence entries with their pristine marking
  snapshots, and the change-detection baseline.  Everything is pickled
  in one stream, so the aliasing invariant (a cached ``UnitAnalysis``
  references the same AST objects as the cached spans) survives the
  round trip.  Loading one on a cold engine makes the next ``analyze``
  a pure cache walk — the warm start the benchmarks measure.

The digests mirror the engine's own content keys, so a record can never
be served for content it was not computed from; anything else (format
drift, truncation, corruption) is the :class:`DiskCache`'s problem and
degrades to a cold analysis.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from .diskcache import DiskCache

SPAN_KIND = "span"
PROG_KIND = "prog"


def features_digest(features) -> str:
    payload = repr(sorted(asdict(features).items()))
    return hashlib.sha1(payload.encode()).hexdigest()


class PersistentStore:
    """The engine's view of the on-disk cache."""

    def __init__(self, cache: DiskCache) -> None:
        self.cache = cache

    @classmethod
    def at(cls, path, max_bytes: int = 256 * 1024 * 1024, stats=None):
        return cls(DiskCache(path, max_bytes=max_bytes, stats=stats))

    @property
    def stats(self):
        return self.cache.stats

    @stats.setter
    def stats(self, value) -> None:
        self.cache.stats = value

    # -- span records ---------------------------------------------------

    def load_span(
        self, digest: str
    ) -> Optional[Tuple[Dict[str, str], List[object]]]:
        """``(recorded_kinds, bound_units)`` for one span, or ``None``."""

        payload = self.cache.get(SPAN_KIND, digest)
        if not isinstance(payload, dict):
            return None
        kinds = payload.get("kinds")
        units = payload.get("units")
        if not isinstance(kinds, dict) or not isinstance(units, list):
            return None
        return kinds, units

    def save_span(
        self, digest: str, kinds: Dict[str, str], units: List[object]
    ) -> bool:
        return self.cache.put(
            SPAN_KIND, digest, {"kinds": dict(kinds), "units": units}
        )

    # -- program records ------------------------------------------------

    def program_key(
        self,
        features,
        source: str,
        assertions: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> str:
        h = hashlib.sha1()
        h.update(features_digest(features).encode())
        h.update(b"\x00")
        h.update(source.encode())
        h.update(b"\x00")
        for name in sorted(assertions or {}):
            h.update(name.encode())
            for text in assertions[name]:
                h.update(b"\x01")
                h.update(text.encode())
            h.update(b"\x02")
        return h.hexdigest()

    def load_program(self, key: str) -> Optional[dict]:
        payload = self.cache.get(PROG_KIND, key)
        return payload if isinstance(payload, dict) else None

    def save_program(self, key: str, state: dict) -> bool:
        return self.cache.put(PROG_KIND, key, state)

    def has_program(self, key: str) -> bool:
        return self.cache.contains(PROG_KIND, key)
