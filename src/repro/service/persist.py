"""Warm-start persistence for the incremental analysis engine.

Two record families, both content-addressed into a :class:`DiskCache`:

* **Span records** (``span:<digest>``) — the bound units of one source
  span, stored with a *binding guard*: the set of names the span's
  units reference plus the subset of those that were program-level
  functions at bind time.  Name resolution consults the global unit set
  only to ask "is this name a function unit?", so a record is
  admissible in *any* program that answers that question identically
  for every recorded name — including programs never seen before that
  merely share the procedure body.  The engine validates the guard
  after assembling the whole unit set and reparses any span that
  fails.  Within that guard a span digest fully determines the parse,
  so records survive across sessions, across unrelated edits elsewhere
  in the file, and across sibling programs.
* **Unit-summary records** (``usum:<digest of (features, name, span,
  callee keys)>``) — one unit's bottom-up summary values (MOD/REF,
  kill, sections), keyed recursively on the unit's span digest and its
  callees' keys, so a cold open of a never-seen program still reuses
  summaries for any call subtree it shares with a prior session.
* **Shared-memo record** (``memo:shared-pair-memo``) — the program-
  scoped pair-test memo (:class:`~repro.dependence.hierarchy.
  SharedPairMemo` entries).  Keys embed the oracle digest, nest depth
  and PARAMETER slice, so one global record safely warms *different*
  programs that repeat the same canonical subscript shapes.
* **Program records** (``prog:<digest of (features, source,
  assertions)>``) — the engine's complete cache state for one analyzed
  program: span entries, the four summary families with their revision
  counters, the per-unit dependence entries with their pristine marking
  snapshots, and the change-detection baseline.  Everything is pickled
  in one stream, so the aliasing invariant (a cached ``UnitAnalysis``
  references the same AST objects as the cached spans) survives the
  round trip.  Loading one on a cold engine makes the next ``analyze``
  a pure cache walk — the warm start the benchmarks measure.

The digests mirror the engine's own content keys, so a record can never
be served for content it was not computed from; anything else (format
drift, truncation, corruption) is the :class:`DiskCache`'s problem and
degrades to a cold analysis.
"""

from __future__ import annotations

import hashlib
from dataclasses import asdict
from typing import Dict, List, Optional, Tuple

from .diskcache import DiskCache

SPAN_KIND = "span"
PROG_KIND = "prog"
USUM_KIND = "usum"
MEMO_KIND = "memo"
#: The shared pair-test memo is one global record: its keys are fully
#: content-addressed (oracle digest + canonical pair form + PARAMETER
#: slice), so every program reads and extends the same table.
MEMO_KEY = "shared-pair-memo"


def features_digest(features) -> str:
    payload = repr(sorted(asdict(features).items()))
    return hashlib.sha1(payload.encode()).hexdigest()


class PersistentStore:
    """The engine's view of the on-disk cache."""

    def __init__(self, cache: DiskCache) -> None:
        self.cache = cache

    @classmethod
    def at(cls, path, max_bytes: int = 256 * 1024 * 1024, stats=None):
        return cls(DiskCache(path, max_bytes=max_bytes, stats=stats))

    @property
    def stats(self):
        return self.cache.stats

    @stats.setter
    def stats(self, value) -> None:
        self.cache.stats = value

    # -- span records ---------------------------------------------------

    def load_span(
        self, digest: str
    ) -> Optional[Tuple[Tuple[frozenset, frozenset], List[object]]]:
        """``(binding_guard, bound_units)`` for one span, or ``None``.

        The guard is ``(referenced_names, function_names)``: the record
        is admissible in any program where exactly the names in
        ``function_names`` (and no other referenced name) are function
        units.
        """

        payload = self.cache.get(SPAN_KIND, digest)
        if not isinstance(payload, dict):
            return None
        names = payload.get("names")
        funcs = payload.get("functions")
        units = payload.get("units")
        if (
            not isinstance(names, frozenset)
            or not isinstance(funcs, frozenset)
            or not isinstance(units, list)
        ):
            return None
        return (names, funcs), units

    def save_span(
        self,
        digest: str,
        guard: Tuple[frozenset, frozenset],
        units: List[object],
    ) -> bool:
        names, funcs = guard
        return self.cache.put(
            SPAN_KIND,
            digest,
            {
                "names": frozenset(names),
                "functions": frozenset(funcs),
                "units": units,
            },
        )

    # -- per-unit summary records ---------------------------------------

    def load_unit_summary(self, key: str) -> Optional[Dict[str, object]]:
        """``{phase: summary}`` for one content-keyed unit, or ``None``."""

        payload = self.cache.get(USUM_KIND, key)
        return payload if isinstance(payload, dict) else None

    def save_unit_summary(self, key: str, values: Dict[str, object]) -> bool:
        if self.cache.contains(USUM_KIND, key):
            return False
        return self.cache.put(USUM_KIND, key, dict(values))

    # -- shared pair-test memo ------------------------------------------

    def load_memo(self) -> Optional[Dict[tuple, tuple]]:
        """The persisted shared-memo entries, or ``None``."""

        payload = self.cache.get(MEMO_KIND, MEMO_KEY)
        return payload if isinstance(payload, dict) else None

    def save_memo(self, entries: Dict[tuple, tuple]) -> bool:
        return self.cache.put(MEMO_KIND, MEMO_KEY, dict(entries))

    def memo_lease(self, holder=None, ttl: float = 10.0):
        """The lease guarding read-merge-write on the singleton memo
        record — the one mutable object N processes sharing this store
        all update (see :mod:`repro.service.storelock`)."""

        return self.cache.lease("memo", holder=holder, ttl=ttl)

    # -- program records ------------------------------------------------

    def program_key(
        self,
        features,
        source: str,
        assertions: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> str:
        h = hashlib.sha1()
        h.update(features_digest(features).encode())
        h.update(b"\x00")
        h.update(source.encode())
        h.update(b"\x00")
        for name in sorted(assertions or {}):
            h.update(name.encode())
            for text in assertions[name]:
                h.update(b"\x01")
                h.update(text.encode())
            h.update(b"\x02")
        return h.hexdigest()

    def load_program(self, key: str) -> Optional[dict]:
        payload = self.cache.get(PROG_KIND, key)
        return payload if isinstance(payload, dict) else None

    def save_program(self, key: str, state: dict) -> bool:
        return self.cache.put(PROG_KIND, key, state)

    def has_program(self, key: str) -> bool:
        return self.cache.contains(PROG_KIND, key)
