"""Warm-start persistence for the incremental analysis engine.

Two record families, both content-addressed into a :class:`DiskCache`:

* **Span records** (``span:<digest>``) — the bound units of one source
  span, stored with a *binding guard*: the set of names the span's
  units reference plus the subset of those that were program-level
  functions at bind time.  Name resolution consults the global unit set
  only to ask "is this name a function unit?", so a record is
  admissible in *any* program that answers that question identically
  for every recorded name — including programs never seen before that
  merely share the procedure body.  The engine validates the guard
  after assembling the whole unit set and reparses any span that
  fails.  Within that guard a span digest fully determines the parse,
  so records survive across sessions, across unrelated edits elsewhere
  in the file, and across sibling programs.
* **Unit-summary records** (``usum:<digest of (features, name, span,
  callee keys)>``) — one unit's bottom-up summary values (MOD/REF,
  kill, sections), keyed recursively on the unit's span digest and its
  callees' keys, so a cold open of a never-seen program still reuses
  summaries for any call subtree it shares with a prior session.
* **Shared-memo record** (``memo:shared-pair-memo``) — the program-
  scoped pair-test memo (:class:`~repro.dependence.hierarchy.
  SharedPairMemo` entries).  Keys embed the oracle digest, nest depth
  and PARAMETER slice, so one global record safely warms *different*
  programs that repeat the same canonical subscript shapes.
* **Program records** (``prog:<digest of (features, source,
  assertions)>``) — the engine's complete cache state for one analyzed
  program: span entries, the four summary families with their revision
  counters, the per-unit dependence entries with their pristine marking
  snapshots, and the change-detection baseline.  Everything is pickled
  in one stream, so the aliasing invariant (a cached ``UnitAnalysis``
  references the same AST objects as the cached spans) survives the
  round trip.  Loading one on a cold engine makes the next ``analyze``
  a pure cache walk — the warm start the benchmarks measure.

The digests mirror the engine's own content keys, so a record can never
be served for content it was not computed from; anything else (format
drift, truncation, corruption) is the :class:`DiskCache`'s problem and
degrades to a cold analysis.

Next to the content-addressed records, the store also keeps one
**session journal file** per named session (``<root>/journal/``, outside
the ``.pkl`` eviction walk like ``locks/``): an append-only JSON-lines
log — a format-stamped header line followed by one mutation record per
line — that a :class:`~repro.service.session_host.PedServer` streams
every session mutation into.  Appends flush to the kernel page cache,
so the log survives a SIGKILL of the server process, and
``session.restore`` rebuilds the live session by replaying it.  The
loader follows the cache's degradation philosophy: a truncated trailing
line (the append the crash interrupted) is dropped with a warning, and
any other corruption or format drift logs and falls back cold
(``None`` — the session just isn't restorable).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from .diskcache import DiskCache

log = logging.getLogger(__name__)

SPAN_KIND = "span"
PROG_KIND = "prog"
USUM_KIND = "usum"
MEMO_KIND = "memo"
#: The shared pair-test memo is one global record: its keys are fully
#: content-addressed (oracle digest + canonical pair form + PARAMETER
#: slice), so every program reads and extends the same table.
MEMO_KEY = "shared-pair-memo"


#: Bump when the journal file layout (header/line grammar) changes
#: incompatibly; the loader refuses mismatched files and falls back cold.
JOURNAL_FORMAT_VERSION = 1
JOURNAL_MAGIC = "ped-journal"


def features_digest(features) -> str:
    payload = repr(sorted(asdict(features).items()))
    return hashlib.sha1(payload.encode()).hexdigest()


class JournalFile:
    """One session's durable, append-only mutation journal.

    Layout: a header line ``{"magic", "format", "session", "base"}``
    followed by one JSON mutation record (wire form, see
    :mod:`repro.editor.journal`) per line.  :meth:`append` writes and
    flushes one line, so every acknowledged mutation is in the kernel
    page cache before the reply leaves the server — a SIGKILL loses at
    most the record being written, which :meth:`load` then drops as a
    truncated tail.
    """

    def __init__(self, path: Path, session: str, stats=None) -> None:
        self.path = Path(path)
        self.session = session
        self.stats = stats
        self._fh = None

    # -- writing --------------------------------------------------------

    def reset(self, base_source: str) -> None:
        """Start a fresh journal (atomic header swap), ready to append."""

        self.close()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        header = json.dumps(
            {
                "magic": JOURNAL_MAGIC,
                "format": JOURNAL_FORMAT_VERSION,
                "session": self.session,
                "base": base_source,
            },
            separators=(",", ":"),
            sort_keys=True,
        )
        tmp = self.path.with_suffix(f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(header + "\n")
        os.replace(tmp, self.path)
        self._fh = open(self.path, "a", encoding="utf-8")

    def open_append(self) -> None:
        """Attach to an existing journal without rewriting it (the
        restore path: the file already holds the replayed records)."""

        self.close()
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, record_wire: Dict) -> None:
        if self._fh is None:  # pragma: no cover - misuse guard
            raise RuntimeError("journal file is not open for appends")
        line = json.dumps(record_wire, separators=(",", ":"), sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        if self.stats is not None:
            self.stats.bump("journal.records")
            self.stats.bump("journal.bytes", len(line) + 1)

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            finally:
                self._fh = None

    # -- reading --------------------------------------------------------

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Optional[Dict]:
        """The persisted journal in wire form (``{"version", "base",
        "records"}``), or ``None`` (missing/corrupt — logged, cold)."""

        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                lines = fh.read().split("\n")
        except FileNotFoundError:
            return None
        except OSError as exc:
            log.warning(
                "journal for %r unreadable (%s); falling back cold",
                self.session,
                exc,
            )
            return None
        if lines and lines[-1] == "":
            lines.pop()
        if not lines:
            log.warning(
                "journal for %r is empty; falling back cold", self.session
            )
            return None
        try:
            header = json.loads(lines[0])
        except ValueError:
            header = None
        if (
            not isinstance(header, dict)
            or header.get("magic") != JOURNAL_MAGIC
            or not isinstance(header.get("base"), str)
        ):
            log.warning(
                "journal for %r has a corrupt header; falling back cold",
                self.session,
            )
            return None
        if header.get("format") != JOURNAL_FORMAT_VERSION:
            log.warning(
                "journal for %r is format v%r (this build reads v%d); "
                "falling back cold",
                self.session,
                header.get("format"),
                JOURNAL_FORMAT_VERSION,
            )
            return None
        records: List[Dict] = []
        for i, line in enumerate(lines[1:], start=2):
            try:
                record = json.loads(line)
            except ValueError:
                if i == len(lines):
                    # The append a crash interrupted: drop it, keep the rest.
                    log.warning(
                        "journal for %r has a truncated trailing record "
                        "(line %d); dropping it",
                        self.session,
                        i,
                    )
                    break
                log.warning(
                    "journal for %r is corrupt at line %d; "
                    "falling back cold",
                    self.session,
                    i,
                )
                return None
            if not isinstance(record, dict):
                log.warning(
                    "journal for %r line %d is not a record object; "
                    "falling back cold",
                    self.session,
                    i,
                )
                return None
            records.append(record)
        return {"version": 1, "base": header["base"], "records": records}


class PersistentStore:
    """The engine's view of the on-disk cache."""

    def __init__(self, cache: DiskCache) -> None:
        self.cache = cache

    @classmethod
    def at(cls, path, max_bytes: int = 256 * 1024 * 1024, stats=None):
        return cls(DiskCache(path, max_bytes=max_bytes, stats=stats))

    @property
    def stats(self):
        return self.cache.stats

    @stats.setter
    def stats(self, value) -> None:
        self.cache.stats = value

    # -- span records ---------------------------------------------------

    def load_span(
        self, digest: str
    ) -> Optional[Tuple[Tuple[frozenset, frozenset], List[object]]]:
        """``(binding_guard, bound_units)`` for one span, or ``None``.

        The guard is ``(referenced_names, function_names)``: the record
        is admissible in any program where exactly the names in
        ``function_names`` (and no other referenced name) are function
        units.
        """

        payload = self.cache.get(SPAN_KIND, digest)
        if not isinstance(payload, dict):
            return None
        names = payload.get("names")
        funcs = payload.get("functions")
        units = payload.get("units")
        if (
            not isinstance(names, frozenset)
            or not isinstance(funcs, frozenset)
            or not isinstance(units, list)
        ):
            return None
        return (names, funcs), units

    def save_span(
        self,
        digest: str,
        guard: Tuple[frozenset, frozenset],
        units: List[object],
    ) -> bool:
        names, funcs = guard
        return self.cache.put(
            SPAN_KIND,
            digest,
            {
                "names": frozenset(names),
                "functions": frozenset(funcs),
                "units": units,
            },
        )

    # -- per-unit summary records ---------------------------------------

    def load_unit_summary(self, key: str) -> Optional[Dict[str, object]]:
        """``{phase: summary}`` for one content-keyed unit, or ``None``."""

        payload = self.cache.get(USUM_KIND, key)
        return payload if isinstance(payload, dict) else None

    def save_unit_summary(self, key: str, values: Dict[str, object]) -> bool:
        if self.cache.contains(USUM_KIND, key):
            return False
        return self.cache.put(USUM_KIND, key, dict(values))

    # -- shared pair-test memo ------------------------------------------

    def load_memo(self) -> Optional[Dict[tuple, tuple]]:
        """The persisted shared-memo entries, or ``None``."""

        payload = self.cache.get(MEMO_KIND, MEMO_KEY)
        return payload if isinstance(payload, dict) else None

    def save_memo(self, entries: Dict[tuple, tuple]) -> bool:
        return self.cache.put(MEMO_KIND, MEMO_KEY, dict(entries))

    # -- session journals ----------------------------------------------

    def journal(self, session: str) -> JournalFile:
        """The durable journal file for one named session.

        Files live under ``<root>/journal/`` — like ``locks/``, outside
        the ``.pkl`` eviction walk, so the LRU sweep never reaps a
        session's history — and are named by the session-name digest
        (client-chosen names are not filesystem-safe).
        """

        digest = hashlib.sha1(session.encode()).hexdigest()
        path = self.cache.root / "journal" / f"{digest}.jsonl"
        return JournalFile(path, session, stats=self.stats)

    def memo_lease(self, holder=None, ttl: float = 10.0):
        """The lease guarding read-merge-write on the singleton memo
        record — the one mutable object N processes sharing this store
        all update (see :mod:`repro.service.storelock`)."""

        return self.cache.lease("memo", holder=holder, ttl=ttl)

    # -- program records ------------------------------------------------

    def program_key(
        self,
        features,
        source: str,
        assertions: Optional[Dict[str, Tuple[str, ...]]] = None,
    ) -> str:
        h = hashlib.sha1()
        h.update(features_digest(features).encode())
        h.update(b"\x00")
        h.update(source.encode())
        h.update(b"\x00")
        for name in sorted(assertions or {}):
            h.update(name.encode())
            for text in assertions[name]:
                h.update(b"\x01")
                h.update(text.encode())
            h.update(b"\x02")
        return h.hexdigest()

    def load_program(self, key: str) -> Optional[dict]:
        payload = self.cache.get(PROG_KIND, key)
        return payload if isinstance(payload, dict) else None

    def save_program(self, key: str, state: dict) -> bool:
        return self.cache.put(PROG_KIND, key, state)

    def has_program(self, key: str) -> bool:
        return self.cache.contains(PROG_KIND, key)
